#include "hepnos/datastore_impl.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <optional>

#include "replica/bootstrap.hpp"
#include "symbio/buffers.hpp"
#include "yokan/backend.hpp"

namespace hep::hepnos {

std::string_view to_string(Role role) noexcept {
    switch (role) {
        case Role::kDatasets: return "datasets";
        case Role::kRuns: return "runs";
        case Role::kSubRuns: return "subruns";
        case Role::kEvents: return "events";
        case Role::kProducts: return "products";
    }
    return "?";
}

Result<Role> parse_role(std::string_view name) noexcept {
    if (name == "datasets") return Role::kDatasets;
    if (name == "runs") return Role::kRuns;
    if (name == "subruns") return Role::kSubRuns;
    if (name == "events") return Role::kEvents;
    if (name == "products") return Role::kProducts;
    return Status::InvalidArgument("unknown database role: " + std::string(name));
}

Result<std::shared_ptr<DataStoreImpl>> DataStoreImpl::connect(rpc::Fabric& network,
                                                              const json::Value& config,
                                                              const std::string& client_address) {
    auto impl = std::shared_ptr<DataStoreImpl>(new DataStoreImpl());
    try {
        impl->engine_ =
            std::make_unique<margo::Engine>(network, client_address, margo::EngineConfig{1});
    } catch (const std::exception& e) {
        return Status::AlreadyExists(e.what());
    }

    const json::Value& dbs = config["databases"];
    if (!dbs.is_array() || dbs.size() == 0) {
        return Status::InvalidArgument("connection config has no \"databases\"");
    }
    struct ParsedDb {
        std::size_t role;
        std::size_t index_in_role;
        std::string address;
        rpc::ProviderId provider;
        std::string name;
        std::string type;
    };
    std::vector<ParsedDb> parsed;
    for (std::size_t i = 0; i < dbs.size(); ++i) {
        const json::Value& entry = dbs.at(i);
        auto role = parse_role(entry["role"].as_string());
        if (!role.ok()) return role.status();
        const std::string address = entry["address"].as_string();
        const auto provider = static_cast<rpc::ProviderId>(entry["provider_id"].as_int());
        const std::string name = entry["name"].as_string();
        if (address.empty() || name.empty()) {
            return Status::InvalidArgument("database entry needs address and name");
        }
        std::string type = entry["type"].as_string();
        if (type.empty()) type = "map";
        const auto idx = static_cast<std::size_t>(*role);
        impl->dbs_[idx].emplace_back(*impl->engine_, address, provider, name);
        impl->active_[idx].push_back(true);
        parsed.push_back(
            ParsedDb{idx, impl->dbs_[idx].size() - 1, address, provider, name, type});
    }

    for (std::size_t r = 0; r < kNumRoles; ++r) {
        if (impl->dbs_[r].empty()) {
            return Status::InvalidArgument(std::string("no databases with role \"") +
                                           std::string(to_string(static_cast<Role>(r))) + '"');
        }
        impl->rings_[r] = HashRing(impl->dbs_[r].size());
    }

    impl->metrics_ = std::make_shared<symbio::MetricsRegistry>();
    symbio::add_buffer_source(*impl->metrics_);
    impl->failover_counters_ = std::make_shared<replica::FailoverCounters>();
    impl->query_enabled_ = config["query"].as_bool(false);

    // Columnar layout: the merged descriptor carries the service's "columnar"
    // section only when every process enabled the knob, so write batches of
    // this connection shred with exactly the deployment's chunk/compression
    // settings (and not at all against a service that cannot serve chunks).
    impl->columnar_opts_ = columnar::WriterOptions::from_json(config["columnar"]);
    impl->columnar_counters_ = std::make_shared<columnar::WriterCounters>();
    if (impl->columnar_opts_.enabled) {
        auto cc = impl->columnar_counters_;
        impl->metrics_->add_source("columnar/client", [cc]() { return cc->snapshot(); });
    }

    // Client QoS: one shared policy + circuit breaker for the connection.
    // Always on — an untagged-by-policy server simply ignores the stamp, and
    // the connection document's "qos" section overrides tenant/classes.
    impl->qos_ = std::make_shared<qos::ClientQos>(qos::QosPolicy::from_json(config["qos"]));
    for (auto& role_dbs : impl->dbs_) {
        for (auto& handle : role_dbs) handle.set_qos(impl->qos_);
    }
    // Requests issued outside DatabaseHandle (raw endpoint calls) still carry
    // the tenant: stamp the engine-wide default with the interactive tag.
    impl->engine_->endpoint().set_default_qos(impl->qos_->point_tag());
    {
        auto q = impl->qos_;
        impl->metrics_->add_source("qos/client", [q]() { return q->stats_json(); });
    }

    // Hot-product read cache: a bounded client-side LRU consulted by every
    // product read, plus (optionally) the dedicated cache-provider tier the
    // service advertises in its connection document. Created BEFORE the
    // replication wiring below so failover promotions can be hooked into the
    // cache's target epochs.
    const json::Value& cache_cfg = config["cache"];
    const cache::CacheOptions cache_opts = cache::CacheOptions::from_json(cache_cfg);
    if (cache_opts.enabled) {
        impl->cache_ = std::make_shared<cache::LeaseCache>(cache_opts);
        auto c = impl->cache_;
        impl->metrics_->add_source("cache/client", [c]() { return c->stats_json(); });
        const bool tier_on = !cache_cfg.is_object() || cache_cfg["tier"].as_bool(true);
        auto tier_nodes = cache::parse_tier_nodes(config);
        if (tier_on && !tier_nodes.empty()) {
            impl->tier_ =
                std::make_unique<cache::TierClient>(*impl->engine_, std::move(tier_nodes));
        }
    }

    const json::Value& rep = config["replication"];
    auto factor = static_cast<std::size_t>(rep["factor"].as_int(1));
    if (factor < 1) factor = 1;
    impl->replication_factor_ = factor;
    if (factor > 1) {
        const replica::RetryPolicy policy = replica::RetryPolicy::from_json(rep);
        // Placement nodes: every distinct (server, provider) pair, in
        // document order so all clients derive the same groups.
        std::vector<replica::Node> nodes;
        for (const auto& e : parsed) {
            replica::Node node{e.address, e.provider};
            if (std::find(nodes.begin(), nodes.end(), node) == nodes.end()) {
                nodes.push_back(node);
            }
        }
        for (std::size_t ord = 0; ord < parsed.size(); ++ord) {
            const auto& e = parsed[ord];
            const auto primary_idx = static_cast<std::size_t>(
                std::find(nodes.begin(), nodes.end(), replica::Node{e.address, e.provider}) -
                nodes.begin());
            auto group = replica::assign_group(nodes, primary_idx, ord, factor, e.name);
            if (group.size() < 2) continue;  // single-node service: nothing to wire
            // Idempotent: servers already wired with the same group no-op, so
            // any number of clients can connect in any order.
            auto wired = replica::wire_replication(*impl->engine_, group, e.type, "");
            if (!wired.ok()) return wired;
            auto state = std::make_shared<replica::FailoverState>(group, policy,
                                                                  impl->failover_counters_);
            if (impl->cache_) {
                // A promoted replica may have missed mutations the demoted
                // primary acknowledged to OTHER clients: drop everything the
                // demoted target ever served us.
                auto c = impl->cache_;
                state->on_promote(
                    [c](const replica::Target& demoted) { c->bump_target(demoted.str()); });
            }
            impl->dbs_[e.role][e.index_in_role].set_failover(std::move(state));
        }
        auto counters = impl->failover_counters_;
        impl->metrics_->add_source("replica/client", [counters]() {
            json::Value out = json::Value::make_object();
            out["retries"] = counters->retries.load();
            out["failovers"] = counters->failovers.load();
            return out;
        });
    }
    // Publishes interrupted between the registry commit point and the marker
    // broadcast leave some databases without the marker; every connection
    // repairs that idempotently (a re-put of an existing marker is a no-op).
    impl->repair_markers();
    return impl;
}

DataStoreImpl::~DataStoreImpl() {
    if (engine_) engine_->finalize();
}

namespace {

std::string cache_db_id(const yokan::DatabaseHandle& db) {
    return cache::db_epoch_key(db.server(), db.provider(), db.name());
}

/// The target a fill is attributed to: the replica group's current primary
/// when failover is wired (promotions then kill the entry), the handle's own
/// identity otherwise. Reads rotated to a backup by read_from_replicas are
/// attributed to the primary too — over-invalidation on its demotion, never
/// under-invalidation.
std::string cache_fill_target(const yokan::DatabaseHandle& db) {
    if (const auto& fo = db.failover()) return fo->target(fo->primary()).str();
    return cache_db_id(db);
}

double ms_since(std::chrono::steady_clock::time_point start) {
    return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
        .count();
}

}  // namespace

Result<hep::BufferView> DataStoreImpl::read_product(std::string_view container_key,
                                                    const std::string& key,
                                                    const yokan::proto::ReadPin* pin) {
    const yokan::DatabaseHandle& db = locate(Role::kProducts, container_key);
    if (pin != nullptr && pin->pinned()) {
        // Pinned reads bypass the cache: it holds latest values, and a
        // snapshot must not observe them. The owner filters by the pin.
        return db.with_snapshot(*pin).get_view(key);
    }
    if (!cache_ || cache_->bypass()) return db.get_view(key);

    const auto start = std::chrono::steady_clock::now();
    auto found = cache_->lookup(key);
    if (found.state == cache::LeaseCache::LookupState::kHit) {
        cache_->hit_latency().observe(ms_since(start));
        return std::move(found.value);
    }
    if (found.state == cache::LeaseCache::LookupState::kExpired) {
        // The lease ran out but the value may well still be current: confirm
        // the owner's mutation seq and renew instead of refetching the bytes.
        // The ticket is captured BEFORE the probe — if a failover promotion
        // (or any local invalidation) lands between probe and renew, the
        // epochs moved and the renew is refused instead of resurrecting a
        // lease against the demoted primary's stale seq.
        const auto renew_ticket = cache_->ticket(cache_db_id(db), cache_fill_target(db));
        auto seq = db.mutation_seq();
        if (seq.ok() && *seq == found.seq && cache_->renew(key, *seq, renew_ticket)) {
            cache_->hit_latency().observe(ms_since(start));
            return std::move(found.value);
        }
    }

    // Miss: epochs are captured BEFORE the read goes out, so a mutation that
    // lands while the fill is in flight makes the entry born-stale.
    const std::string db_id = cache_db_id(db);
    if (tier_) {
        auto ticket = cache_->ticket(db_id, cache_fill_target(db));
        auto r = tier_->get(db.server(), db.provider(), db.name(), key,
                            qos_ ? qos_->point_tag() : qos::QosTag{});
        if (r.ok()) {
            cache_->fill(key, r->value, r->seq, ticket);
            cache_->miss_latency().observe(ms_since(start));
            return std::move(r->value);
        }
        if (r.status().code() == StatusCode::kNotFound) return r.status();
        // Tier unreachable: not fatal to a read, fall through to the owner.
    }
    auto ticket = cache_->ticket(db_id, cache_fill_target(db));
    auto r = db.get_view_vs(key);
    if (!r.ok()) return r.status();
    cache_->fill(key, r->value, r->seq, ticket);
    cache_->miss_latency().observe(ms_since(start));
    return std::move(r->value);
}

Result<std::vector<std::optional<hep::BufferView>>> DataStoreImpl::load_products_bulk(
    std::size_t db_index, const std::vector<std::string>& keys,
    const yokan::proto::ReadPin* pin) {
    // Prefetch traffic self-classifies as batch so it never starves
    // interactive readers (paper §II-D).
    const auto db =
        dbs_[static_cast<std::size_t>(Role::kProducts)][db_index].with_class(qos::kClassBatch);
    if (pin != nullptr && pin->pinned()) {
        // Snapshot-pinned bulk loads never touch the (latest-value) cache.
        return db.with_snapshot(*pin).get_multi_views(keys);
    }
    if (!cache_ || cache_->bypass() || keys.empty()) return db.get_multi_views(keys);

    std::vector<std::optional<hep::BufferView>> out(keys.size());
    std::vector<std::string> missing;
    std::vector<std::size_t> slots;
    for (std::size_t i = 0; i < keys.size(); ++i) {
        auto found = cache_->lookup(keys[i]);
        if (found.state == cache::LeaseCache::LookupState::kHit) {
            out[i] = std::move(found.value);
        } else {
            missing.push_back(keys[i]);
            slots.push_back(i);
        }
    }
    if (missing.empty()) return out;

    // The seq rides the get_multi response (sampled server-side before the
    // reads), so versioned bulk fills cost no extra RPC.
    const auto ticket = cache_->ticket(cache_db_id(db), cache_fill_target(db));
    std::uint64_t seq = 0;
    auto fetched = db.get_multi_views(missing, 1 << 20, &seq);
    if (!fetched.ok()) return fetched.status();
    for (std::size_t j = 0; j < missing.size(); ++j) {
        if (!(*fetched)[j].has_value()) continue;
        cache_->fill(missing[j], *(*fetched)[j], seq, ticket);
        out[slots[j]] = std::move(*(*fetched)[j]);
    }
    return out;
}

void DataStoreImpl::invalidate_products(const yokan::DatabaseHandle& handle,
                                        const std::vector<std::string>& keys) {
    if (cache_) cache_->bump_db(cache_db_id(handle));
    if (tier_) tier_->invalidate(handle.server(), handle.provider(), handle.name(), keys);
}

void DataStoreImpl::invalidate_products(const yokan::DatabaseHandle& handle,
                                        const std::vector<yokan::BatchItem>& items) {
    if (cache_) cache_->bump_db(cache_db_id(handle));
    if (!tier_) return;
    std::vector<std::string> keys;
    keys.reserve(items.size());
    for (const auto& item : items) keys.push_back(item.key);
    tier_->invalidate(handle.server(), handle.provider(), handle.name(), keys);
}

// ---- MVCC: ingest epochs, publish, snapshots --------------------------------

Result<std::vector<std::uint32_t>> DataStoreImpl::published_epochs() const {
    constexpr std::size_t kPage = 256;
    std::vector<std::uint32_t> epochs;
    std::string after;
    while (true) {
        // The marker prefix starts with the internal-key byte, so the scan
        // explicitly reaches into the internal range and sees the markers.
        auto page = registry().list_keys(after, yokan::kPublishMarkerPrefix, kPage);
        if (!page.ok()) return page.status();
        if (page->empty()) break;
        for (const auto& key : *page) {
            if (std::uint32_t e = yokan::parse_publish_marker(key); e != 0) {
                epochs.push_back(e);
            }
        }
        after = page->back();
        if (page->size() < kPage) break;
    }
    std::sort(epochs.begin(), epochs.end());
    return epochs;
}

Result<std::uint32_t> DataStoreImpl::begin_ingest() {
    // Epoch allocation is a read-modify-write on the registry counter. Two
    // clients racing here could draw the same epoch — ingest sessions are
    // expected to be coordinated (one loader per run), like HEPnOS's own
    // DataLoader; the markers themselves stay correct either way.
    const auto& reg = registry();
    std::uint32_t next = 1;
    auto cur = reg.get(std::string(yokan::kEpochCounterKey));
    if (cur.ok()) {
        next = static_cast<std::uint32_t>(std::strtoul(cur->c_str(), nullptr, 10)) + 1;
    } else if (cur.status().code() != StatusCode::kNotFound) {
        return cur.status();
    }
    if (Status st = reg.put(std::string(yokan::kEpochCounterKey), std::to_string(next));
        !st.ok()) {
        return st;
    }
    active_epoch_.store(next, std::memory_order_relaxed);
    return next;
}

Status DataStoreImpl::publish(std::uint32_t epoch) {
    if (epoch == 0) return Status::InvalidArgument("epoch 0 is always published");
    const std::string marker = yokan::publish_marker_key(epoch);
    // Commit point: ONE marker put on the registry (replicated and WAL-logged
    // like any write). Once it lands the epoch IS published — snapshots take
    // their filter from the registry, so how far the broadcast below gets
    // never splits visibility.
    if (Status st = registry().put(marker, ""); !st.ok()) return st;
    std::uint32_t expected = epoch;
    active_epoch_.compare_exchange_strong(expected, 0, std::memory_order_relaxed);
    // Broadcast so unpinned ("latest") readers of every database see the
    // epoch without a registry hop. Failures here are healed by the next
    // connect()'s repair_markers(); publish() is idempotent, retry freely.
    Status first;
    for (auto& role_dbs : dbs_) {
        for (auto& db : role_dbs) {
            Status st = db.put(marker, "");
            if (!st.ok() && first.ok()) first = st;
        }
    }
    return first;
}

Result<Snapshot> DataStoreImpl::snapshot() {
    // Order matters: the published set is captured BEFORE any seq probe. An
    // epoch published after the capture is excluded by the filter no matter
    // what the probes see; one published before it had all its writes landed
    // (publish follows the batch flush), so the later probes cover them.
    auto epochs = published_epochs();
    if (!epochs.ok()) return epochs.status();
    Snapshot snap;
    for (std::size_t r = 0; r < kNumRoles; ++r) {
        snap.pins[r].reserve(dbs_[r].size());
        for (auto& db : dbs_[r]) {
            auto seq = db.mutation_seq();
            if (!seq.ok()) return seq.status();
            yokan::proto::ReadPin pin;
            // SeqSource floors at 1 so even a never-written database probes
            // to a valid pin (seq 0 would mean "latest"); the max() only
            // guards against a pre-floor server.
            pin.seq = std::max<std::uint64_t>(*seq, 1);
            pin.extras = *epochs;
            snap.pins[r].push_back(std::move(pin));
        }
    }
    return snap;
}

void DataStoreImpl::repair_markers() {
    auto epochs = published_epochs();
    if (!epochs.ok() || epochs->empty()) return;
    for (std::uint32_t e : *epochs) {
        const std::string marker = yokan::publish_marker_key(e);
        for (auto& role_dbs : dbs_) {
            for (auto& db : role_dbs) (void)db.put(marker, "");
        }
    }
}

}  // namespace hep::hepnos

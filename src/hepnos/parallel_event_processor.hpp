// ParallelEventProcessor (paper §II-D):
//
// "a high-level interface for a group of processes to iterate over the events
//  in a given dataset in parallel and in a load-balanced manner. [...] It does
//  so by designating a subset of processes as readers (typically as many
//  readers as databases to read from). Readers load batches of events from
//  HEPnOS in the background and place them in a distributed queue from which
//  all processes pull. The ParallelEventProcessor also takes care of
//  prefetching products associated with an event if requested."
//
// The paper's production tuning: events loaded in batches of 16384 (few RPCs,
// large payloads) and shared among workers in batches of 64 (fine-grained
// load balancing) — those are the two options below.
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <thread>

#include "hepnos/containers.hpp"
#include "hepnos/datastore.hpp"
#include "mpisim/comm.hpp"

namespace hep::hepnos {

struct ParallelEventProcessorOptions {
    /// Events fetched from HEPnOS per reader RPC (paper: 16384).
    std::size_t input_batch_size = 16384;
    /// Events handed to a worker at a time (paper: 64).
    std::size_t share_batch_size = 64;
    /// Reader ranks; 0 = min(#event databases, communicator size), the
    /// paper's "typically as many readers as databases".
    std::size_t num_readers = 0;
};

struct ParallelEventProcessorStatistics {
    std::uint64_t local_events = 0;   // events this rank processed
    std::uint64_t total_events = 0;   // all ranks (valid at root)
    double processing_time = 0.0;     // seconds inside the user callback
    double waiting_time = 0.0;        // seconds blocked on the queue
    double total_time = 0.0;          // local wall time inside process()
};

/// Products prefetched for a batch of events, keyed by full product key.
/// Entries are refcounted views into the get_multi receive buffer — one
/// allocation per prefetch page, no per-product copies.
class ProductCache {
  public:
    void put(std::string key, hep::BufferView bytes) {
        items_.emplace(std::move(key), std::move(bytes));
    }
    /// Compatibility shim: adopts the string into owned storage (no copy).
    void put(std::string key, std::string bytes) {
        put(std::move(key), hep::BufferView(hep::Buffer::adopt(std::move(bytes))));
    }

    /// Load a prefetched product; false if it was not prefetched (the caller
    /// may still fall back to Event::load, which does an RPC).
    template <typename T>
    bool load(const Event& event, std::string_view label, T& value) const {
        auto it = items_.find(product_key(event.container_key(), label,
                                          product_type_name<T>()));
        if (it == items_.end()) return false;
        serial::from_string(it->second.sv(), value);
        return true;
    }

    [[nodiscard]] std::size_t size() const noexcept { return items_.size(); }

  private:
    std::map<std::string, hep::BufferView, std::less<>> items_;
};

class ParallelEventProcessor {
  public:
    using EventCallback = std::function<void(const Event&, const ProductCache&)>;

    ParallelEventProcessor(DataStore datastore, mpisim::Comm& comm,
                           ParallelEventProcessorOptions options = {});

    /// Request prefetching of the product (label, T) for every event batch.
    template <typename T>
    void prefetch(std::string_view label = "") {
        prefetch_.emplace_back(std::string(label), std::string(product_type_name<T>()));
    }

    /// Collective: every rank of the communicator must call process() with
    /// the same dataset. Each event of the dataset is delivered to exactly
    /// one rank's callback. Returns per-rank statistics (total_events is
    /// aggregated at rank 0).
    ParallelEventProcessorStatistics process(const DataSet& dataset, const EventCallback& fn);

  private:
    struct Batch {
        std::vector<std::string> event_keys;  // full event container keys
        std::shared_ptr<ProductCache> cache;
    };

    /// The paper's "distributed queue" (in-process here: ranks are threads).
    struct SharedQueue {
        std::mutex mutex;
        std::condition_variable cv;
        std::deque<Batch> batches;
        std::size_t producers_active = 0;
        std::uint64_t epoch = 0;

        void reset(std::size_t producers) {
            std::lock_guard<std::mutex> lock(mutex);
            batches.clear();
            producers_active = producers;
            ++epoch;
        }
        void push(Batch batch) {
            {
                std::lock_guard<std::mutex> lock(mutex);
                batches.push_back(std::move(batch));
            }
            cv.notify_one();
        }
        void producer_done() {
            {
                std::lock_guard<std::mutex> lock(mutex);
                --producers_active;
            }
            cv.notify_all();
        }
        /// Blocks until a batch is available or production finished.
        bool pop(Batch& out) {
            std::unique_lock<std::mutex> lock(mutex);
            cv.wait(lock, [&] { return !batches.empty() || producers_active == 0; });
            if (batches.empty()) return false;
            out = std::move(batches.front());
            batches.pop_front();
            return true;
        }
    };

    void reader_loop(const DataSet& dataset, std::size_t reader_index, std::size_t num_readers,
                     SharedQueue& queue);
    std::shared_ptr<ProductCache> prefetch_products(const std::vector<std::string>& event_keys);

    DataStore datastore_;
    mpisim::Comm& comm_;
    ParallelEventProcessorOptions options_;
    std::vector<std::pair<std::string, std::string>> prefetch_;  // (label, type)
};

}  // namespace hep::hepnos

#include "hepnos/write_batch.hpp"

#include "hepnos/exception.hpp"
#include "serial/archive.hpp"
#include "yokan/protocol.hpp"

namespace hep::hepnos {

WriteBatch::WriteBatch(std::shared_ptr<DataStoreImpl> impl, std::size_t flush_threshold)
    : impl_(std::move(impl)), flush_threshold_(flush_threshold) {
    if (!impl_) throw Exception("WriteBatch needs a connected DataStore");
    epoch_ = impl_->active_epoch();
    if (impl_->columnar_enabled()) {
        writer_ = std::make_unique<columnar::ColumnWriter>(
            impl_->columnar_options(), columnar::SchemaRegistry::with_builtins(),
            impl_->columnar_counters(),
            [this](const yokan::DatabaseHandle& handle, std::string key, hep::Buffer value) {
                add_raw(handle, std::move(key), std::move(value));
            });
    }
}

WriteBatch::~WriteBatch() {
    try {
        flush();
    } catch (const Exception&) {
        // Destructors must not throw; callers who care about failures should
        // flush() explicitly first.
    }
}

void WriteBatch::add(Role role, std::string_view parent_key, std::string key,
                     hep::Buffer value) {
    const yokan::DatabaseHandle& handle = impl_->locate(role, parent_key);
    // The shredder sees every product put (it retains the refcounted buffer,
    // not a copy) and may emit finished chunks back through add_raw.
    if (writer_ && role == Role::kProducts) writer_->observe(handle, key, value);
    add_raw(handle, std::move(key), std::move(value));
}

void WriteBatch::add_raw(const yokan::DatabaseHandle& handle, std::string key,
                         hep::Buffer value) {
    TargetKey tk{handle.server(), handle.provider(), handle.name()};
    auto it = groups_.find(tk);
    if (it == groups_.end()) {
        it = groups_.emplace(std::move(tk),
                             std::make_pair(handle, std::vector<yokan::BatchItem>{}))
                 .first;
    }
    it->second.second.push_back(yokan::BatchItem{std::move(key), std::move(value)});
    ++pending_;
    if (it->second.second.size() >= flush_threshold_) {
        auto items = std::move(it->second.second);
        it->second.second.clear();
        pending_ -= items.size();
        total_flushed_ += items.size();
        ++flush_rpcs_;
        ship(it->second.first, std::move(items));
    }
}

void WriteBatch::flush() {
    // Shred leftovers first so their chunks join the groups shipped below.
    if (writer_) writer_->flush();
    for (auto& [tk, group] : groups_) {
        if (group.second.empty()) continue;
        auto items = std::move(group.second);
        group.second.clear();
        pending_ -= items.size();
        total_flushed_ += items.size();
        ++flush_rpcs_;
        ship(group.first, std::move(items));
    }
}

void WriteBatch::ship(const yokan::DatabaseHandle& handle, std::vector<yokan::BatchItem> items) {
    auto stored = handle.put_multi(items, /*overwrite=*/true, epoch_);
    throw_if_error(stored.status());
    // Flush is the moment batched writes become visible: invalidate cached
    // copies synchronously so a read issued after flush() returns never sees
    // a pre-batch value from this client's cache.
    impl_->invalidate_products(handle, items);
}

// ----------------------------------------------------------- AsyncWriteBatch

AsyncWriteBatch::AsyncWriteBatch(std::shared_ptr<DataStoreImpl> impl,
                                 std::size_t flush_threshold)
    : WriteBatch(std::move(impl), flush_threshold) {}

AsyncWriteBatch::~AsyncWriteBatch() {
    try {
        flush();
        wait();
    } catch (const Exception&) {
        // see ~WriteBatch()
    }
}

void AsyncWriteBatch::ship(const yokan::DatabaseHandle& handle,
                           std::vector<yokan::BatchItem> items) {
    // Issue the put_packed without blocking: the request chain references the
    // item buffers (headers in one metadata segment, values zero-copy), so
    // nothing is packed into a contiguous staging buffer. The items stay
    // alive in `in_flight_` until wait().
    auto pending = std::make_unique<Pending>();
    pending->items = std::move(items);
    yokan::proto::PutPackedReq req{handle.name(), pending->items.size(), /*overwrite=*/true,
                                   epoch_, yokan::proto::pack_items(pending->items)};
    // Batched ingestion is bulk-class traffic: under load the server's
    // admission control may slow or shed it in favor of interactive reads.
    pending->eventual = impl_->engine().endpoint().call_async_chain(
        handle.server(), "yokan_put_packed", handle.provider(), serial::to_chain(req),
        std::chrono::milliseconds{0},
        impl_->qos() ? impl_->qos()->bulk_tag() : qos::QosTag{});
    pending->handle = handle;
    in_flight_.push_back(std::move(pending));
}

void AsyncWriteBatch::wait() {
    Status first_error;
    for (auto& pending : in_flight_) {
        auto& result = pending->eventual->wait();
        if (result.ok()) continue;
        Status st = result.status();
        const bool transport_retry =
            pending->handle.failover() && replica::FailoverState::retryable(st.code());
        const bool overload_retry =
            pending->handle.qos() && st.code() == StatusCode::kOverloaded;
        if (transport_retry || overload_retry) {
            // The fire-and-forget RPC went to the (then-)primary and the
            // transport failed — or the server shed it. Fall back to the
            // synchronous path, which fails over across replicas and waits
            // out retry-after hints, so the batch still lands.
            st = pending->handle.put_multi(pending->items, /*overwrite=*/true, epoch_).status();
        }
        if (!st.ok() && first_error.ok()) first_error = st;
    }
    // Async batches become visible by wait(): invalidate everything that was
    // in flight (even for the failed groups — a partial landing must not be
    // masked by a stale cached value).
    for (auto& pending : in_flight_) {
        impl_->invalidate_products(pending->handle, pending->items);
    }
    in_flight_.clear();
    throw_if_error(first_error);
}

}  // namespace hep::hepnos

#include "hepnos/write_batch.hpp"

#include "hepnos/exception.hpp"
#include "serial/archive.hpp"
#include "yokan/protocol.hpp"

namespace hep::hepnos {

WriteBatch::WriteBatch(std::shared_ptr<DataStoreImpl> impl, std::size_t flush_threshold)
    : impl_(std::move(impl)), flush_threshold_(flush_threshold) {
    if (!impl_) throw Exception("WriteBatch needs a connected DataStore");
}

WriteBatch::~WriteBatch() {
    try {
        flush();
    } catch (const Exception&) {
        // Destructors must not throw; callers who care about failures should
        // flush() explicitly first.
    }
}

void WriteBatch::add(Role role, std::string_view parent_key, std::string key,
                     std::string value) {
    const yokan::DatabaseHandle& handle = impl_->locate(role, parent_key);
    TargetKey tk{handle.server(), handle.provider(), handle.name()};
    auto it = groups_.find(tk);
    if (it == groups_.end()) {
        it = groups_.emplace(std::move(tk),
                             std::make_pair(handle, std::vector<yokan::KeyValue>{}))
                 .first;
    }
    it->second.second.push_back(yokan::KeyValue{std::move(key), std::move(value)});
    ++pending_;
    if (it->second.second.size() >= flush_threshold_) {
        auto items = std::move(it->second.second);
        it->second.second.clear();
        pending_ -= items.size();
        total_flushed_ += items.size();
        ++flush_rpcs_;
        ship(it->second.first, std::move(items));
    }
}

void WriteBatch::flush() {
    for (auto& [tk, group] : groups_) {
        if (group.second.empty()) continue;
        auto items = std::move(group.second);
        group.second.clear();
        pending_ -= items.size();
        total_flushed_ += items.size();
        ++flush_rpcs_;
        ship(group.first, std::move(items));
    }
}

void WriteBatch::ship(const yokan::DatabaseHandle& handle, std::vector<yokan::KeyValue> items) {
    auto stored = handle.put_multi(items, /*overwrite=*/true);
    throw_if_error(stored.status());
}

// ----------------------------------------------------------- AsyncWriteBatch

AsyncWriteBatch::AsyncWriteBatch(std::shared_ptr<DataStoreImpl> impl,
                                 std::size_t flush_threshold)
    : WriteBatch(std::move(impl), flush_threshold) {}

AsyncWriteBatch::~AsyncWriteBatch() {
    try {
        flush();
        wait();
    } catch (const Exception&) {
        // see ~WriteBatch()
    }
}

void AsyncWriteBatch::ship(const yokan::DatabaseHandle& handle,
                           std::vector<yokan::KeyValue> items) {
    // Issue the put_multi without blocking: pack, expose, fire the RPC, and
    // remember the pending completion. The packed buffer stays alive in
    // `in_flight_` until wait().
    auto pending = std::make_unique<Pending>();
    for (const auto& kv : items) yokan::proto::pack_entry(pending->packed, kv.key, kv.value);
    auto& endpoint = impl_->engine().endpoint();
    pending->bulk = endpoint.expose(pending->packed.data(), pending->packed.size());
    yokan::proto::PutMultiReq req{handle.name(), pending->bulk, items.size(),
                                  pending->packed.size(), /*overwrite=*/true};
    pending->eventual = endpoint.call_async(handle.server(), "yokan_put_multi",
                                            handle.provider(), serial::to_string(req));
    pending->handle = handle;
    in_flight_.push_back(std::move(pending));
}

void AsyncWriteBatch::wait() {
    Status first_error;
    for (auto& pending : in_flight_) {
        auto& result = pending->eventual->wait();
        impl_->engine().endpoint().unexpose(pending->bulk);
        if (result.ok()) continue;
        Status st = result.status();
        if (pending->handle.failover() && replica::FailoverState::retryable(st.code())) {
            // The fire-and-forget RPC went to the (then-)primary and the
            // transport failed. Fall back to the synchronous failover-aware
            // path so the batch lands on a surviving replica.
            std::vector<yokan::KeyValue> items;
            yokan::proto::unpack_entries(
                pending->packed, [&](std::string_view k, std::string_view v) {
                    items.push_back(yokan::KeyValue{std::string(k), std::string(v)});
                });
            st = pending->handle.put_multi(items, /*overwrite=*/true).status();
        }
        if (!st.ok() && first_error.ok()) first_error = st;
    }
    in_flight_.clear();
    throw_if_error(first_error);
}

}  // namespace hep::hepnos

// Public container handles: DataSet, Run, SubRun, Event (paper §II-A).
//
// Navigation mirrors C++ containers, exactly as in the paper's Listing 1:
//
//   hepnos::DataSet ds = datastore["path/to/dataset"];
//   hepnos::Run run = ds[43];
//   hepnos::SubRun subrun = run.createSubRun(56);
//   hepnos::Event ev = subrun.createEvent(25);
//   ev.store(vp1);                    // store a std::vector<Particle>
//   ev.load(vp2);                     // load it back
//   for (auto& subrun : run) { ... }  // ordered iteration
//
// Runs, subruns and events store *products*: C++ objects identified by a
// label and their type, serialized with the archive in serial/.
#pragma once

#include <cstdint>
#include <iterator>
#include <memory>
#include <string>
#include <vector>

#include "hepnos/datastore_impl.hpp"
#include "hepnos/exception.hpp"
#include "hepnos/keys.hpp"
#include "hepnos/write_batch.hpp"
#include "serial/archive.hpp"

namespace hep::hepnos {

class DataSet;
class Run;
class SubRun;
class Event;

namespace detail {

/// Store a serialized product under its container (direct or batched). The
/// Buffer travels the whole write path by reference — serialize-once,
/// copy-never (paper §II-D keeps products on the client→Yokan fast path).
void store_product_bytes(DataStoreImpl& impl, std::string_view container_key,
                         std::string_view label, std::string_view type, hep::Buffer bytes,
                         WriteBatch* batch);

/// Load product bytes; false if the product does not exist.
bool load_product_bytes(DataStoreImpl& impl, std::string_view container_key,
                        std::string_view label, std::string_view type, std::string& bytes);

/// Zero-copy load: `view` lands anchored to the RPC response frame.
bool load_product_view(DataStoreImpl& impl, std::string_view container_key,
                       std::string_view label, std::string_view type, hep::BufferView& view);

bool product_exists(DataStoreImpl& impl, std::string_view container_key, std::string_view label,
                    std::string_view type);

/// Erase a product (and invalidate its cached copies); false if absent.
bool erase_product_bytes(DataStoreImpl& impl, std::string_view container_key,
                         std::string_view label, std::string_view type);

/// Create a container key (value-less). Throws on transport errors.
void create_container(DataStoreImpl& impl, Role role, std::string_view parent_key,
                      std::string key, WriteBatch* batch);

/// Check a container key exists.
bool container_exists(DataStoreImpl& impl, Role role, std::string_view parent_key,
                      std::string_view key);

/// One page of child-container numbers (keys strictly after `after_key`).
std::vector<std::uint64_t> list_child_numbers(DataStoreImpl& impl, Role role,
                                              std::string_view parent_key,
                                              std::string_view after_key, std::size_t max);

}  // namespace detail

/// Mixin for the product-bearing containers (Run, SubRun, Event).
/// Derived must provide impl() and container_key().
template <typename Derived>
class ProductContainer {
  public:
    /// Store `value` as a product with the given label (default empty label,
    /// as in Listing 1). The product type is part of the key, so the same
    /// label can hold one product per C++ type.
    template <typename T>
    void store(std::string_view label, const T& value, WriteBatch* batch = nullptr) const {
        const auto& self = static_cast<const Derived&>(*this);
        detail::store_product_bytes(*self.impl(), self.container_key(), label,
                                    product_type_name<T>(), serial::to_buffer(value), batch);
    }
    template <typename T>
    void store(const T& value) const {
        store("", value);
    }
    template <typename T>
    void store(WriteBatch& batch, std::string_view label, const T& value) const {
        store(label, value, &batch);
    }

    /// Load the product with this label and type. Returns false if absent.
    /// Deserializes straight out of the response frame (no staging copy).
    template <typename T>
    bool load(std::string_view label, T& value) const {
        const auto& self = static_cast<const Derived&>(*this);
        hep::BufferView bytes;
        if (!detail::load_product_view(*self.impl(), self.container_key(), label,
                                       product_type_name<T>(), bytes)) {
            return false;
        }
        serial::from_string(bytes.sv(), value);  // throws SerializationError on corruption
        return true;
    }
    template <typename T>
    bool load(T& value) const {
        return load("", value);
    }

    template <typename T>
    [[nodiscard]] bool hasProduct(std::string_view label = "") const {
        const auto& self = static_cast<const Derived&>(*this);
        return detail::product_exists(*self.impl(), self.container_key(), label,
                                      product_type_name<T>());
    }

    /// Remove the product with this label and type; false if it was absent.
    /// Cached copies (local and tier) are invalidated before returning.
    template <typename T>
    bool eraseProduct(std::string_view label = "") const {
        const auto& self = static_cast<const Derived&>(*this);
        return detail::erase_product_bytes(*self.impl(), self.container_key(), label,
                                           product_type_name<T>());
    }
};

/// Input iterator over numbered child containers, paging through the single
/// database that holds all of a parent's children (paper §II-C3). `Maker`
/// turns a child number into a handle (Run, SubRun or Event).
template <typename Value, typename Maker>
class NumberIterator {
  public:
    using iterator_category = std::input_iterator_tag;
    using value_type = Value;
    using difference_type = std::ptrdiff_t;

    NumberIterator() = default;  // end sentinel (done_ == true)

    NumberIterator(std::shared_ptr<DataStoreImpl> impl, Role role, std::string parent_key,
                   Maker maker, std::size_t page_size)
        : impl_(std::move(impl)),
          role_(role),
          parent_key_(std::move(parent_key)),
          maker_(std::move(maker)),
          page_size_(page_size),
          done_(false) {
        fetch_page(parent_key_);  // children start right after the parent key
        advance();
    }

    const Value& operator*() const { return current_; }
    const Value* operator->() const { return &current_; }

    NumberIterator& operator++() {
        advance();
        return *this;
    }
    void operator++(int) { advance(); }

    // Input-iterator equality: only meaningful against the end sentinel.
    friend bool operator==(const NumberIterator& a, const NumberIterator& b) {
        return a.done_ == b.done_;
    }
    friend bool operator!=(const NumberIterator& a, const NumberIterator& b) {
        return !(a == b);
    }

  private:
    void fetch_page(std::string_view after_key) {
        page_ = detail::list_child_numbers(*impl_, role_, parent_key_, after_key, page_size_);
        index_ = 0;
    }

    void advance() {
        if (done_) return;
        if (index_ >= page_.size()) {
            if (page_.size() < page_size_ || !impl_) {  // exhausted
                done_ = true;
                return;
            }
            std::string last = parent_key_;
            append_be64(last, page_.back());
            fetch_page(last);
            if (page_.empty()) {
                done_ = true;
                return;
            }
        }
        current_number_ = page_[index_++];
        current_ = maker_(current_number_);
    }

    std::shared_ptr<DataStoreImpl> impl_;
    Role role_ = Role::kRuns;
    std::string parent_key_;
    Maker maker_{};
    std::size_t page_size_ = 0;
    std::vector<std::uint64_t> page_;
    std::size_t index_ = 0;
    std::uint64_t current_number_ = 0;
    Value current_{};
    bool done_ = true;
};

template <typename Value, typename Maker>
class NumberRange {
  public:
    NumberRange(std::shared_ptr<DataStoreImpl> impl, Role role, std::string parent_key,
                Maker maker, std::size_t page_size = 256)
        : impl_(std::move(impl)),
          role_(role),
          parent_key_(std::move(parent_key)),
          maker_(std::move(maker)),
          page_size_(page_size) {}

    using iterator = NumberIterator<Value, Maker>;
    iterator begin() const { return iterator(impl_, role_, parent_key_, maker_, page_size_); }
    iterator end() const { return iterator(); }

  private:
    std::shared_ptr<DataStoreImpl> impl_;
    Role role_;
    std::string parent_key_;
    Maker maker_;
    std::size_t page_size_;
};

// --------------------------------------------------------------------- Event

class Event : public ProductContainer<Event> {
  public:
    Event() = default;
    Event(std::shared_ptr<DataStoreImpl> impl, Uuid dataset, RunNumber run, SubRunNumber subrun,
          EventNumber event)
        : impl_(std::move(impl)), dataset_(dataset), run_(run), subrun_(subrun), event_(event) {
        key_ = event_key(dataset_, run_, subrun_, event_);
    }

    [[nodiscard]] bool valid() const noexcept { return impl_ != nullptr; }
    [[nodiscard]] EventNumber number() const noexcept { return event_; }
    [[nodiscard]] RunNumber run_number() const noexcept { return run_; }
    [[nodiscard]] SubRunNumber subrun_number() const noexcept { return subrun_; }
    [[nodiscard]] const Uuid& dataset_uuid() const noexcept { return dataset_; }

    [[nodiscard]] const std::shared_ptr<DataStoreImpl>& impl() const noexcept { return impl_; }
    [[nodiscard]] const std::string& container_key() const noexcept { return key_; }

  private:
    std::shared_ptr<DataStoreImpl> impl_;
    Uuid dataset_;
    RunNumber run_ = 0;
    SubRunNumber subrun_ = 0;
    EventNumber event_ = 0;
    std::string key_;
};

// -------------------------------------------------------------------- SubRun

class SubRun : public ProductContainer<SubRun> {
  public:
    SubRun() = default;
    SubRun(std::shared_ptr<DataStoreImpl> impl, Uuid dataset, RunNumber run,
           SubRunNumber subrun)
        : impl_(std::move(impl)), dataset_(dataset), run_(run), subrun_(subrun) {
        key_ = subrun_key(dataset_, run_, subrun_);
    }

    [[nodiscard]] bool valid() const noexcept { return impl_ != nullptr; }
    [[nodiscard]] SubRunNumber number() const noexcept { return subrun_; }
    [[nodiscard]] RunNumber run_number() const noexcept { return run_; }

    /// Create an event in this subrun (idempotent, like real HEPnOS).
    Event createEvent(EventNumber n, WriteBatch* batch = nullptr) const {
        detail::create_container(*impl_, Role::kEvents, key_,
                                 event_key(dataset_, run_, subrun_, n), batch);
        return Event(impl_, dataset_, run_, subrun_, n);
    }
    Event createEvent(WriteBatch& batch, EventNumber n) const { return createEvent(n, &batch); }

    /// Access an existing event; throws if absent.
    [[nodiscard]] Event event(EventNumber n) const {
        if (!hasEvent(n)) {
            throw Exception(Status::NotFound("event " + std::to_string(n) + " in subrun " +
                                             std::to_string(subrun_)));
        }
        return Event(impl_, dataset_, run_, subrun_, n);
    }
    Event operator[](EventNumber n) const { return event(n); }

    [[nodiscard]] bool hasEvent(EventNumber n) const {
        return detail::container_exists(*impl_, Role::kEvents, key_,
                                        event_key(dataset_, run_, subrun_, n));
    }

    struct EventMaker {
        std::shared_ptr<DataStoreImpl> impl;
        Uuid dataset;
        RunNumber run;
        SubRunNumber subrun;
        Event operator()(std::uint64_t n) const { return Event(impl, dataset, run, subrun, n); }
    };
    using EventRange = NumberRange<Event, EventMaker>;
    [[nodiscard]] EventRange events(std::size_t page_size = 256) const {
        return EventRange(impl_, Role::kEvents, key_, EventMaker{impl_, dataset_, run_, subrun_},
                          page_size);
    }
    [[nodiscard]] EventRange::iterator begin() const { return events().begin(); }
    [[nodiscard]] EventRange::iterator end() const { return EventRange::iterator(); }

    [[nodiscard]] const std::shared_ptr<DataStoreImpl>& impl() const noexcept { return impl_; }
    [[nodiscard]] const std::string& container_key() const noexcept { return key_; }

  private:
    std::shared_ptr<DataStoreImpl> impl_;
    Uuid dataset_;
    RunNumber run_ = 0;
    SubRunNumber subrun_ = 0;
    std::string key_;
};

// ----------------------------------------------------------------------- Run

class Run : public ProductContainer<Run> {
  public:
    Run() = default;
    Run(std::shared_ptr<DataStoreImpl> impl, Uuid dataset, RunNumber run)
        : impl_(std::move(impl)), dataset_(dataset), run_(run) {
        key_ = run_key(dataset_, run_);
    }

    [[nodiscard]] bool valid() const noexcept { return impl_ != nullptr; }
    [[nodiscard]] RunNumber number() const noexcept { return run_; }

    SubRun createSubRun(SubRunNumber n, WriteBatch* batch = nullptr) const {
        detail::create_container(*impl_, Role::kSubRuns, key_, subrun_key(dataset_, run_, n),
                                 batch);
        return SubRun(impl_, dataset_, run_, n);
    }
    SubRun createSubRun(WriteBatch& batch, SubRunNumber n) const {
        return createSubRun(n, &batch);
    }

    [[nodiscard]] SubRun subrun(SubRunNumber n) const {
        if (!hasSubRun(n)) {
            throw Exception(Status::NotFound("subrun " + std::to_string(n) + " in run " +
                                             std::to_string(run_)));
        }
        return SubRun(impl_, dataset_, run_, n);
    }
    SubRun operator[](SubRunNumber n) const { return subrun(n); }

    [[nodiscard]] bool hasSubRun(SubRunNumber n) const {
        return detail::container_exists(*impl_, Role::kSubRuns, key_,
                                        subrun_key(dataset_, run_, n));
    }

    struct SubRunMaker {
        std::shared_ptr<DataStoreImpl> impl;
        Uuid dataset;
        RunNumber run;
        SubRun operator()(std::uint64_t n) const { return SubRun(impl, dataset, run, n); }
    };
    using SubRunRange = NumberRange<SubRun, SubRunMaker>;
    [[nodiscard]] SubRunRange subruns(std::size_t page_size = 256) const {
        return SubRunRange(impl_, Role::kSubRuns, key_, SubRunMaker{impl_, dataset_, run_},
                           page_size);
    }
    [[nodiscard]] SubRunRange::iterator begin() const { return subruns().begin(); }
    [[nodiscard]] SubRunRange::iterator end() const { return SubRunRange::iterator(); }

    [[nodiscard]] const std::shared_ptr<DataStoreImpl>& impl() const noexcept { return impl_; }
    [[nodiscard]] const std::string& container_key() const noexcept { return key_; }

  private:
    std::shared_ptr<DataStoreImpl> impl_;
    Uuid dataset_;
    RunNumber run_ = 0;
    std::string key_;
};

// ------------------------------------------------------------------- DataSet

class DataSet {
  public:
    DataSet() = default;
    DataSet(std::shared_ptr<DataStoreImpl> impl, std::string full_path, Uuid uuid)
        : impl_(std::move(impl)), path_(std::move(full_path)), uuid_(uuid) {}

    [[nodiscard]] bool valid() const noexcept { return impl_ != nullptr; }
    /// Last path component ("nova" for "/fermilab/nova"); "" for the root.
    [[nodiscard]] std::string name() const { return std::string(basename_of(path_)); }
    /// Normalized full path.
    [[nodiscard]] const std::string& fullname() const noexcept { return path_; }
    [[nodiscard]] const Uuid& uuid() const noexcept { return uuid_; }

    /// Create (or open, if it exists) a child dataset.
    DataSet createDataSet(std::string_view name) const;

    /// Open an existing child dataset (or deeper relative path); throws.
    [[nodiscard]] DataSet dataset(std::string_view relative_path) const;
    DataSet operator[](std::string_view relative_path) const { return dataset(relative_path); }

    [[nodiscard]] bool hasDataSet(std::string_view relative_path) const;

    /// Direct child datasets, in name order.
    [[nodiscard]] std::vector<DataSet> datasets(std::size_t page_size = 256) const;

    Run createRun(RunNumber n, WriteBatch* batch = nullptr) const {
        detail::create_container(*impl_, Role::kRuns, std::string(uuid_.bytes()),
                                 run_key(uuid_, n), batch);
        return Run(impl_, uuid_, n);
    }
    Run createRun(WriteBatch& batch, RunNumber n) const { return createRun(n, &batch); }

    [[nodiscard]] Run run(RunNumber n) const {
        if (!hasRun(n)) {
            throw Exception(
                Status::NotFound("run " + std::to_string(n) + " in dataset " + path_));
        }
        return Run(impl_, uuid_, n);
    }
    Run operator[](RunNumber n) const { return run(n); }

    [[nodiscard]] bool hasRun(RunNumber n) const {
        return detail::container_exists(*impl_, Role::kRuns, std::string(uuid_.bytes()),
                                        run_key(uuid_, n));
    }

    struct RunMaker {
        std::shared_ptr<DataStoreImpl> impl;
        Uuid dataset;
        Run operator()(std::uint64_t n) const { return Run(impl, dataset, n); }
    };
    using RunRange = NumberRange<Run, RunMaker>;
    [[nodiscard]] RunRange runs(std::size_t page_size = 256) const {
        return RunRange(impl_, Role::kRuns, std::string(uuid_.bytes()),
                        RunMaker{impl_, uuid_}, page_size);
    }
    [[nodiscard]] RunRange::iterator begin() const { return runs().begin(); }
    [[nodiscard]] RunRange::iterator end() const { return RunRange::iterator(); }

    [[nodiscard]] const std::shared_ptr<DataStoreImpl>& impl() const noexcept { return impl_; }

  private:
    std::shared_ptr<DataStoreImpl> impl_;
    std::string path_;  // normalized; "" = root
    Uuid uuid_;
};

}  // namespace hep::hepnos

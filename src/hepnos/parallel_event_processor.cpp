#include "hepnos/parallel_event_processor.hpp"

#include "common/logging.hpp"

namespace hep::hepnos {

ParallelEventProcessor::ParallelEventProcessor(DataStore datastore, mpisim::Comm& comm,
                                               ParallelEventProcessorOptions options)
    : datastore_(std::move(datastore)), comm_(comm), options_(options) {
    if (!datastore_.valid()) throw Exception("ParallelEventProcessor needs a DataStore");
    if (options_.input_batch_size == 0 || options_.share_batch_size == 0) {
        throw Exception(Status::InvalidArgument("batch sizes must be >= 1"));
    }
}

std::shared_ptr<ProductCache> ParallelEventProcessor::prefetch_products(
    const std::vector<std::string>& event_keys) {
    auto cache = std::make_shared<ProductCache>();
    if (prefetch_.empty()) return cache;
    auto& impl = *datastore_.impl();

    // Group product keys by the product database that owns them (placement
    // hashes the event's container key), then one get_multi per database.
    std::map<std::size_t, std::vector<std::string>> by_db;
    for (const auto& event_key : event_keys) {
        const std::size_t db_index = impl.locate_index(Role::kProducts, event_key);
        for (const auto& [label, type] : prefetch_) {
            by_db[db_index].push_back(product_key(event_key, label, type));
        }
    }
    for (auto& [db_index, keys] : by_db) {
        // Background prefetch rides batch class (see reader_loop) and reads
        // through the client lease cache — hot products skip the wire.
        auto values = impl.load_products_bulk(db_index, keys);
        if (!values.ok()) throw Exception(values.status());
        for (std::size_t i = 0; i < keys.size(); ++i) {
            if ((*values)[i].has_value()) {
                cache->put(std::move(keys[i]), std::move(*(*values)[i]));
            }
        }
    }
    return cache;
}

void ParallelEventProcessor::reader_loop(const DataSet& dataset, std::size_t reader_index,
                                         std::size_t num_readers, SharedQueue& queue) {
    auto& impl = *datastore_.impl();
    const std::string prefix(dataset.uuid().bytes());
    const std::size_t num_dbs = impl.database_count(Role::kEvents);

    // Reader r drains event databases r, r+R, r+2R, ...
    for (std::size_t db_index = reader_index; db_index < num_dbs; db_index += num_readers) {
        // Reader threads stream whole databases: batch class, so a saturating
        // PEP run cannot starve interactive users of the same service.
        const auto handle =
            impl.databases(Role::kEvents)[db_index].with_class(qos::kClassBatch);
        std::string after = prefix;
        while (true) {
            auto page = handle.list_keys(after, prefix, options_.input_batch_size);
            if (!page.ok()) throw Exception(page.status());
            if (page->empty()) break;
            after = page->back();

            auto cache = prefetch_products(*page);

            // Split the input batch into share batches for fine-grained
            // load balancing across pulling workers.
            for (std::size_t start = 0; start < page->size();
                 start += options_.share_batch_size) {
                const std::size_t end =
                    std::min(start + options_.share_batch_size, page->size());
                Batch batch;
                batch.event_keys.assign(page->begin() + static_cast<std::ptrdiff_t>(start),
                                        page->begin() + static_cast<std::ptrdiff_t>(end));
                batch.cache = cache;
                queue.push(std::move(batch));
            }
            if (page->size() < options_.input_batch_size) break;
        }
    }
    queue.producer_done();
}

ParallelEventProcessorStatistics ParallelEventProcessor::process(const DataSet& dataset,
                                                                 const EventCallback& fn) {
    ParallelEventProcessorStatistics stats;
    auto& impl = *datastore_.impl();
    const std::size_t num_dbs = impl.database_count(Role::kEvents);
    std::size_t num_readers = options_.num_readers == 0
                                  ? std::min<std::size_t>(num_dbs,
                                                          static_cast<std::size_t>(comm_.size()))
                                  : std::min<std::size_t>(options_.num_readers,
                                                          static_cast<std::size_t>(comm_.size()));
    if (num_readers == 0) num_readers = 1;

    auto queue = comm_.shared_object<SharedQueue>("hepnos-pep-queue");
    comm_.barrier();
    if (comm_.rank() == 0) queue->reset(num_readers);
    comm_.barrier();

    const double t_start = mpisim::Comm::wtime();

    // Reader ranks load event batches in the background while also working.
    std::thread loader;
    if (static_cast<std::size_t>(comm_.rank()) < num_readers) {
        const auto reader_index = static_cast<std::size_t>(comm_.rank());
        loader = std::thread([this, &dataset, reader_index, num_readers, &queue] {
            try {
                reader_loop(dataset, reader_index, num_readers, *queue);
            } catch (const std::exception& e) {
                HEP_LOG_ERROR("PEP reader %zu failed: %s", reader_index, e.what());
                queue->producer_done();
            }
        });
    }

    // Every rank (readers included) pulls share batches and processes them.
    const Uuid ds_uuid = dataset.uuid();
    Batch batch;
    while (true) {
        const double w0 = mpisim::Comm::wtime();
        const bool got = queue->pop(batch);
        stats.waiting_time += mpisim::Comm::wtime() - w0;
        if (!got) break;
        const double p0 = mpisim::Comm::wtime();
        for (const auto& key : batch.event_keys) {
            // Event key layout: <uuid:16><run:8><subrun:8><event:8>.
            const RunNumber run = decode_be64(std::string_view(key).substr(16));
            const SubRunNumber subrun = decode_be64(std::string_view(key).substr(24));
            const EventNumber event = decode_be64(std::string_view(key).substr(32));
            Event ev(datastore_.impl(), ds_uuid, run, subrun, event);
            fn(ev, *batch.cache);
            ++stats.local_events;
        }
        stats.processing_time += mpisim::Comm::wtime() - p0;
    }

    if (loader.joinable()) loader.join();
    stats.total_time = mpisim::Comm::wtime() - t_start;
    stats.total_events = comm_.reduce_sum(stats.local_events, 0);
    comm_.barrier();
    return stats;
}

}  // namespace hep::hepnos

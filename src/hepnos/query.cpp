#include "hepnos/query.hpp"

namespace hep::hepnos {

Result<QueryResult> run_query(const DataStore& datastore, const DataSet& dataset,
                              const query::proto::QuerySpec& spec, std::size_t offset,
                              std::size_t stride, const query::QueryOptions& options) {
    if (!datastore.valid()) return Status::InvalidArgument("datastore is not connected");
    const auto& impl = datastore.impl();
    if (!impl->query_enabled()) {
        return Status::Unimplemented(
            "this service was not deployed with query pushdown (enable the Bedrock "
            "\"query\" section)");
    }
    query::QueryEngine engine(impl->engine(), impl->databases(Role::kProducts));
    query::ClientStats stats;
    // Columnar scans return bit-identical results off an acceleration copy,
    // so they are used whenever the deployment advertises the knob (callers
    // may also force the flag; servers without the knob answer Unimplemented
    // and the client falls back to the blob scan on its own).
    query::QueryOptions opts = options;
    opts.columnar = opts.columnar || impl->columnar_enabled();
    auto entries = engine.run(spec, dataset.uuid().bytes(), offset, stride, stats, opts);
    if (!entries.ok()) return entries.status();
    return QueryResult(impl, dataset.uuid(), std::move(*entries), stats);
}

Result<QueryResult> run_query(const DataStore& datastore, const DataSet& dataset,
                              const query::proto::QuerySpec& spec, const Snapshot& snap,
                              std::size_t offset, std::size_t stride,
                              const query::QueryOptions& options) {
    if (!datastore.valid()) return Status::InvalidArgument("datastore is not connected");
    const auto& impl = datastore.impl();
    if (!impl->query_enabled()) {
        return Status::Unimplemented(
            "this service was not deployed with query pushdown (enable the Bedrock "
            "\"query\" section)");
    }
    if (!snap.valid()) return Status::InvalidArgument("snapshot was not captured");
    query::QueryEngine engine(impl->engine(), impl->databases(Role::kProducts));
    query::ClientStats stats;
    query::QueryOptions opts = options;
    opts.columnar = opts.columnar || impl->columnar_enabled();
    const auto& pins = snap.pins[static_cast<std::size_t>(Role::kProducts)];
    auto entries = engine.run(spec, dataset.uuid().bytes(), offset, stride, stats, opts, &pins);
    if (!entries.ok()) return entries.status();
    return QueryResult(impl, dataset.uuid(), std::move(*entries), stats);
}

Result<QueryResult> DataStore::query(const DataSet& dataset, const query::proto::QuerySpec& spec,
                                     std::size_t offset, std::size_t stride) const {
    return run_query(*this, dataset, spec, offset, stride);
}

Result<QueryResult> DataStore::query(const DataSet& dataset, const query::proto::QuerySpec& spec,
                                     const query::QueryOptions& options, std::size_t offset,
                                     std::size_t stride) const {
    return run_query(*this, dataset, spec, offset, stride, options);
}

Result<QueryResult> DataStore::query(const DataSet& dataset, const query::proto::QuerySpec& spec,
                                     const Snapshot& snap, std::size_t offset,
                                     std::size_t stride) const {
    return run_query(*this, dataset, spec, snap, offset, stride);
}

}  // namespace hep::hepnos

#include "hepnos/datastore.hpp"

#include <atomic>

namespace hep::hepnos {

namespace {
std::string auto_client_address() {
    static std::atomic<std::uint64_t> counter{0};
    return "hepnos-client-" + std::to_string(counter.fetch_add(1));
}
}  // namespace

DataStore DataStore::connect(rpc::Fabric& network, const json::Value& config,
                             const std::string& client_address) {
    const std::string address =
        client_address.empty() ? auto_client_address() : client_address;
    auto impl = DataStoreImpl::connect(network, config, address);
    if (!impl.ok()) throw Exception(impl.status());
    return DataStore(std::move(impl).value());
}

DataStore DataStore::connect(rpc::Fabric& network, const std::string& config_path,
                             const std::string& client_address) {
    auto doc = json::parse_file(config_path);
    if (!doc.ok()) throw Exception(doc.status());
    return connect(network, *doc, client_address);
}

DataSet DataStore::root() const {
    if (!impl_) throw Exception("DataStore is not connected");
    return DataSet(impl_, "", Uuid());
}

Result<std::uint32_t> DataStore::begin_ingest() const {
    if (!impl_) return Status::InvalidArgument("DataStore is not connected");
    return impl_->begin_ingest();
}

Status DataStore::publish(std::uint32_t epoch) const {
    if (!impl_) return Status::InvalidArgument("DataStore is not connected");
    return impl_->publish(epoch);
}

Result<Snapshot> DataStore::snapshot() const {
    if (!impl_) return Status::InvalidArgument("DataStore is not connected");
    return impl_->snapshot();
}

DataSet DataStore::createDataSet(std::string_view path) const {
    const std::string normalized = normalize_path(path);
    DataSet current = root();
    std::size_t pos = 1;  // skip leading '/'
    while (pos <= normalized.size()) {
        const auto next = normalized.find(kPathSeparator, pos);
        const auto end = next == std::string::npos ? normalized.size() : next;
        current = current.createDataSet(normalized.substr(pos, end - pos));
        pos = end + 1;
    }
    return current;
}

}  // namespace hep::hepnos

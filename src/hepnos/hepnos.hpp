// Public umbrella header for the HEPnOS client library (paper Listing 1:
// #include <hepnos.hpp>).
#pragma once

#include "hepnos/containers.hpp"                // IWYU pragma: export
#include "hepnos/datastore.hpp"                 // IWYU pragma: export
#include "hepnos/event_set.hpp"                 // IWYU pragma: export
#include "hepnos/exception.hpp"                 // IWYU pragma: export
#include "hepnos/keys.hpp"                      // IWYU pragma: export
#include "hepnos/parallel_event_processor.hpp"  // IWYU pragma: export
#include "hepnos/prefetcher.hpp"                // IWYU pragma: export
#include "hepnos/query.hpp"                     // IWYU pragma: export
#include "hepnos/rescale.hpp"                   // IWYU pragma: export
#include "hepnos/write_batch.hpp"               // IWYU pragma: export

// DataStore: the entry point of the HEPnOS client API (paper Listing 1).
//
//   auto datastore = hepnos::DataStore::connect(network, "connection.json");
//   hepnos::DataSet ds = datastore["path/to/dataset"];
//
// A DataStore is a cheap copyable handle over shared connection state. The
// connection document lists every database of the deployed service with its
// role; it is produced by the Bedrock service processes (merge_descriptors).
#pragma once

#include <memory>
#include <string>

#include "common/json.hpp"
#include "hepnos/containers.hpp"
#include "hepnos/datastore_impl.hpp"

namespace hep::query {
struct QueryOptions;
namespace proto {
struct QuerySpec;
}  // namespace proto
}  // namespace hep::query

namespace hep::hepnos {

class QueryResult;

class DataStore {
  public:
    DataStore() = default;

    /// Connect from a parsed connection document. `client_address` must be
    /// unique per client on the fabric ("" picks one automatically).
    static DataStore connect(rpc::Fabric& network, const json::Value& config,
                             const std::string& client_address = "");

    /// Connect from a JSON file (the Listing-1 "config.json" path).
    static DataStore connect(rpc::Fabric& network, const std::string& config_path,
                             const std::string& client_address = "");

    [[nodiscard]] bool valid() const noexcept { return impl_ != nullptr; }

    /// The root dataset (nameless container of the top-level datasets).
    [[nodiscard]] DataSet root() const;

    /// Open an existing dataset by full path; throws if absent.
    [[nodiscard]] DataSet dataset(std::string_view path) const { return root().dataset(path); }
    DataSet operator[](std::string_view path) const { return dataset(path); }

    /// Create the dataset at `path`, creating intermediate datasets as
    /// needed (mkdir -p semantics); idempotent.
    DataSet createDataSet(std::string_view path) const;

    [[nodiscard]] bool exists(std::string_view path) const { return root().hasDataSet(path); }

    /// Server-side selection pushdown over `dataset`'s products (see
    /// hepnos/query.hpp). (offset, stride) subsets the product databases —
    /// (rank, num_ranks) gives an MPI-style worker its share; defaults query
    /// all of them. Requires a service deployed with the Bedrock "query"
    /// knob; otherwise returns Unimplemented.
    Result<QueryResult> query(const DataSet& dataset, const query::proto::QuerySpec& spec,
                              std::size_t offset = 0, std::size_t stride = 1) const;
    Result<QueryResult> query(const DataSet& dataset, const query::proto::QuerySpec& spec,
                              const query::QueryOptions& options, std::size_t offset = 0,
                              std::size_t stride = 1) const;
    /// Snapshot-pinned pushdown: every cursor reads through `snap`'s pin for
    /// its database, so the selection is bit-identical to one run on a
    /// quiesced copy even while ingest continues.
    Result<QueryResult> query(const DataSet& dataset, const query::proto::QuerySpec& spec,
                              const Snapshot& snap, std::size_t offset = 0,
                              std::size_t stride = 1) const;

    // ---- MVCC: ingest epochs, publish, snapshots (see DESIGN.md) ----------
    /// Start an ingest session: allocate a fresh epoch; WriteBatches created
    /// from now on tag their writes with it, invisible to every reader until
    /// publish().
    Result<std::uint32_t> begin_ingest() const;
    /// Commit `epoch` atomically across all databases (events, products,
    /// columnar chunks): after publish returns OK the epoch is visible
    /// everywhere — before, nowhere.
    Status publish(std::uint32_t epoch) const;
    /// Capture a consistent read position across every database.
    Result<Snapshot> snapshot() const;

    /// Shared connection internals (used by the ParallelEventProcessor, the
    /// DataLoader and the benches).
    [[nodiscard]] const std::shared_ptr<DataStoreImpl>& impl() const noexcept { return impl_; }

  private:
    explicit DataStore(std::shared_ptr<DataStoreImpl> impl) : impl_(std::move(impl)) {}
    std::shared_ptr<DataStoreImpl> impl_;
};

}  // namespace hep::hepnos

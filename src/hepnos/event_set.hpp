// EventSet: iterate the events of a dataset at DATABASE granularity — the
// access pattern underneath the ParallelEventProcessor (paper §II-D: readers
// drain whole event databases; §II-C3's placement makes each database an
// independently iterable shard of the dataset).
//
//   // all events of the dataset, one shard:
//   for (const Event& ev : EventSet(datastore, ds, /*db_index=*/2)) ...
//   // or every shard (equivalent to nested run/subrun/event loops, but in
//   // key order per database rather than global order):
//   for (std::size_t i = 0; i < EventSet::num_targets(datastore); ++i)
//       for (const Event& ev : EventSet(datastore, ds, i)) ...
#pragma once

#include <iterator>
#include <string>
#include <vector>

#include "hepnos/containers.hpp"
#include "hepnos/datastore.hpp"

namespace hep::hepnos {

class EventSet {
  public:
    /// Events of `dataset` stored in event database `db_index`.
    EventSet(DataStore datastore, const DataSet& dataset, std::size_t db_index,
             std::size_t page_size = 1024)
        : impl_(datastore.impl()),
          uuid_(dataset.uuid()),
          db_index_(db_index),
          page_size_(page_size) {
        if (!impl_) throw Exception("EventSet needs a connected DataStore");
        if (db_index_ >= impl_->database_count(Role::kEvents)) {
            throw Exception(Status::InvalidArgument("event database index out of range"));
        }
        if (page_size_ == 0) throw Exception(Status::InvalidArgument("page_size >= 1"));
    }

    /// Number of event databases (= number of shards).
    static std::size_t num_targets(const DataStore& datastore) {
        return datastore.impl()->database_count(Role::kEvents);
    }

    class Iterator {
      public:
        using iterator_category = std::input_iterator_tag;
        using value_type = Event;
        using difference_type = std::ptrdiff_t;

        Iterator() = default;  // end sentinel
        Iterator(const EventSet* set) : set_(set), done_(false) {  // NOLINT
            fetch(std::string(set_->uuid_.bytes()));
            advance();
        }

        const Event& operator*() const { return current_; }
        const Event* operator->() const { return &current_; }
        Iterator& operator++() {
            advance();
            return *this;
        }
        void operator++(int) { advance(); }
        friend bool operator==(const Iterator& a, const Iterator& b) {
            return a.done_ == b.done_;
        }
        friend bool operator!=(const Iterator& a, const Iterator& b) { return !(a == b); }

      private:
        void fetch(const std::string& after) {
            const auto& db = set_->impl_->databases(Role::kEvents)[set_->db_index_];
            auto page = db.list_keys(after, set_->uuid_.bytes(), set_->page_size_);
            if (!page.ok()) throw Exception(page.status());
            page_ = std::move(page.value());
            index_ = 0;
        }

        void advance() {
            if (done_) return;
            if (index_ >= page_.size()) {
                if (page_.size() < set_->page_size_) {
                    done_ = true;
                    return;
                }
                fetch(page_.back());
                if (page_.empty()) {
                    done_ = true;
                    return;
                }
            }
            const std::string& key = page_[index_++];
            current_ = Event(set_->impl_, set_->uuid_, decode_be64(key.data() + 16),
                             decode_be64(key.data() + 24), decode_be64(key.data() + 32));
        }

        const EventSet* set_ = nullptr;
        std::vector<std::string> page_;
        std::size_t index_ = 0;
        Event current_;
        bool done_ = true;
    };

    [[nodiscard]] Iterator begin() const { return Iterator(this); }
    [[nodiscard]] Iterator end() const { return Iterator(); }

  private:
    friend class Iterator;
    std::shared_ptr<DataStoreImpl> impl_;
    Uuid uuid_;
    std::size_t db_index_;
    std::size_t page_size_;
};

}  // namespace hep::hepnos

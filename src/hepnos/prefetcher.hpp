// Prefetcher: batched, product-prefetching event iteration for a single
// consumer (the ParallelEventProcessor's little sibling, paper §II-D).
//
// Where the PEP coordinates a group of MPI ranks, the Prefetcher accelerates
// one process iterating a subrun (or a whole dataset): event keys are fetched
// in pages and the requested products are pulled with one get_multi per
// product database per page, so the per-event load() in the loop body becomes
// a local cache hit.
//
//   Prefetcher prefetcher(datastore, /*page=*/1024);
//   prefetcher.fetch_product<std::vector<nova::Slice>>("slices");
//   prefetcher.for_each_event(subrun, [&](const Event& ev, const ProductCache& cache) {
//       std::vector<nova::Slice> slices;
//       cache.load(ev, "slices", slices);
//   });
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "hepnos/containers.hpp"
#include "hepnos/datastore.hpp"
#include "hepnos/parallel_event_processor.hpp"  // ProductCache

namespace hep::hepnos {

class Prefetcher {
  public:
    explicit Prefetcher(DataStore datastore, std::size_t page_size = 1024)
        : datastore_(std::move(datastore)), page_size_(page_size) {
        if (!datastore_.valid()) throw Exception("Prefetcher needs a DataStore");
        if (page_size_ == 0) throw Exception(Status::InvalidArgument("page_size >= 1"));
    }

    /// Request prefetching of (label, T) for every visited event.
    template <typename T>
    void fetch_product(std::string_view label = "") {
        labels_.emplace_back(std::string(label), std::string(product_type_name<T>()));
    }

    /// Pin every read (event-key pages and bulk product loads) to `snap`:
    /// the iteration then observes exactly the snapshot's state, bit-for-bit,
    /// no matter how much ingest runs concurrently.
    void pin(Snapshot snap) { snap_ = std::move(snap); }

    using Visitor = std::function<void(const Event&, const ProductCache&)>;

    /// Visit every event of the subrun in ascending order.
    void for_each_event(const SubRun& subrun, const Visitor& fn) const;

    /// Visit every event of the run (all subruns, ascending).
    void for_each_event(const Run& run, const Visitor& fn) const;

    /// Visit every event of the dataset (all runs, ascending).
    void for_each_event(const DataSet& dataset, const Visitor& fn) const;

    [[nodiscard]] std::uint64_t events_visited() const noexcept { return visited_; }
    [[nodiscard]] std::uint64_t products_prefetched() const noexcept { return prefetched_; }

  private:
    void visit_container(const Uuid& dataset, std::string_view parent_key, const Visitor& fn)
        const;

    DataStore datastore_;
    std::size_t page_size_;
    std::optional<Snapshot> snap_;
    std::vector<std::pair<std::string, std::string>> labels_;  // (label, type)
    mutable std::uint64_t visited_ = 0;
    mutable std::uint64_t prefetched_ = 0;
};

}  // namespace hep::hepnos

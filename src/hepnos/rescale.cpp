#include "hepnos/rescale.hpp"

#include "hepnos/keys.hpp"

namespace hep::hepnos {

namespace {

/// Parent key of a container key, by role (see header).
Result<std::string> parent_key_of(Role role, std::string_view key) {
    switch (role) {
        case Role::kDatasets:
            return std::string(parent_of(key));
        case Role::kRuns:
            if (key.size() != 24) return Status::Corruption("run key must be 24 bytes");
            return std::string(key.substr(0, 16));
        case Role::kSubRuns:
            if (key.size() != 32) return Status::Corruption("subrun key must be 32 bytes");
            return std::string(key.substr(0, 24));
        case Role::kEvents:
            if (key.size() != 40) return Status::Corruption("event key must be 40 bytes");
            return std::string(key.substr(0, 32));
        case Role::kProducts:
            return Status::Unimplemented(
                "product keys have no fixed-width parent; product rescaling requires "
                "descriptor-tagged keys");
    }
    return Status::Internal("bad role");
}

/// Drain every key of `source` whose (recomputed) owner differs, shipping it
/// in batches. `may_keep` = false forces all keys out (target removal).
Result<RescaleStats> migrate_from(DataStoreImpl& impl, Role role, std::size_t source_index,
                                  bool may_keep, std::size_t batch_size) {
    RescaleStats stats;
    // Migration is pure background traffic: bulk class, the first to be
    // slowed/shed when the service is under interactive load.
    const yokan::DatabaseHandle source =
        impl.databases(role)[source_index].with_class(qos::kClassBulk);

    // Collect the full moving set first so migration does not race the scan
    // cursor. Container values are empty, so keys are all we need; the
    // datasets role also carries UUID values — use keyvals uniformly.
    std::vector<std::vector<yokan::KeyValue>> outbound(impl.database_count(role));
    std::string after;
    while (true) {
        auto page = source.list_keyvals(after, "", batch_size);
        if (!page.ok()) return page.status();
        if (page->empty()) break;
        after = page->back().key;
        for (auto& kv : *page) {
            ++stats.keys_scanned;
            auto parent = parent_key_of(role, kv.key);
            if (!parent.ok()) return parent.status();
            const std::size_t owner = impl.locate_index(role, *parent);
            if (may_keep && owner == source_index) continue;
            outbound[owner].push_back(std::move(kv));
        }
        if (page->size() < batch_size) break;
    }

    // Ship per destination, then erase from the source.
    std::vector<std::string> moved_keys;
    for (std::size_t dest = 0; dest < outbound.size(); ++dest) {
        auto& items = outbound[dest];
        if (items.empty()) continue;
        for (std::size_t start = 0; start < items.size(); start += batch_size) {
            const std::size_t end = std::min(start + batch_size, items.size());
            std::vector<yokan::KeyValue> chunk(items.begin() + static_cast<long>(start),
                                               items.begin() + static_cast<long>(end));
            auto stored = impl.databases(role)[dest]
                              .with_class(qos::kClassBulk)
                              .put_multi(chunk, /*overwrite=*/true);
            if (!stored.ok()) return stored.status();
            ++stats.batches;
        }
        for (auto& kv : items) moved_keys.push_back(std::move(kv.key));
        stats.keys_moved += items.size();
    }
    for (std::size_t start = 0; start < moved_keys.size(); start += batch_size) {
        const std::size_t end = std::min(start + batch_size, moved_keys.size());
        std::vector<std::string> chunk(moved_keys.begin() + static_cast<long>(start),
                                       moved_keys.begin() + static_cast<long>(end));
        auto erased = source.erase_multi(chunk);
        if (!erased.ok()) return erased.status();
    }
    return stats;
}

}  // namespace

Result<RescaleStats> add_storage_target(DataStoreImpl& impl, Role role,
                                        yokan::DatabaseHandle handle,
                                        std::size_t batch_size) {
    if (role == Role::kProducts) {
        return Status::Unimplemented("product rescaling is not supported (see header)");
    }
    const std::size_t new_index = impl.add_database(role, std::move(handle));
    RescaleStats total;
    for (std::size_t s = 0; s < impl.database_count(role); ++s) {
        if (s == new_index || !impl.is_active(role, s)) continue;
        auto stats = migrate_from(impl, role, s, /*may_keep=*/true, batch_size);
        if (!stats.ok()) return stats.status();
        total.keys_scanned += stats->keys_scanned;
        total.keys_moved += stats->keys_moved;
        total.batches += stats->batches;
    }
    return total;
}

Result<RescaleStats> remove_storage_target(DataStoreImpl& impl, Role role, std::size_t index,
                                           std::size_t batch_size) {
    if (role == Role::kProducts) {
        return Status::Unimplemented("product rescaling is not supported (see header)");
    }
    if (index >= impl.database_count(role) || !impl.is_active(role, index)) {
        return Status::InvalidArgument("no active database at that index");
    }
    // Need at least one remaining target.
    std::size_t active = 0;
    for (std::size_t s = 0; s < impl.database_count(role); ++s) {
        if (impl.is_active(role, s)) ++active;
    }
    if (active <= 1) {
        return Status::InvalidArgument("cannot remove the last storage target of a role");
    }
    impl.deactivate_database(role, index);
    return migrate_from(impl, role, index, /*may_keep=*/false, batch_size);
}

}  // namespace hep::hepnos

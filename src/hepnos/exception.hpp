// Exception type for the public HEPnOS API. The substrates below (rpc, yokan)
// use Status/Result; the user-facing API mirrors real HEPnOS and throws.
#pragma once

#include <stdexcept>

#include "common/status.hpp"

namespace hep::hepnos {

class Exception : public std::runtime_error {
  public:
    explicit Exception(const Status& status)
        : std::runtime_error(status.to_string()), code_(status.code()) {}
    explicit Exception(std::string message)
        : std::runtime_error(std::move(message)), code_(StatusCode::kInternal) {}

    [[nodiscard]] StatusCode code() const noexcept { return code_; }

  private:
    StatusCode code_;
};

/// Throw on non-OK status (helper for the public API layer).
inline void throw_if_error(const Status& status) {
    if (!status.ok()) throw Exception(status);
}

template <typename T>
T value_or_throw(Result<T> result) {
    if (!result.ok()) throw Exception(result.status());
    return std::move(result).value();
}

}  // namespace hep::hepnos

// WriteBatch and AsyncWriteBatch (paper §II-D).
//
// A WriteBatch accumulates container creations and product stores in a local
// buffer, groups them by target database (not all updates target the same
// one), and sends grouped updates with one put_multi (bulk) per database when
// flushed or destroyed.
//
// An AsyncWriteBatch issues those grouped RPCs in the background as soon as a
// per-database threshold is reached and guarantees completion in its
// destructor.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "hepnos/datastore_impl.hpp"
#include "yokan/client.hpp"

namespace hep::hepnos {

class WriteBatch {
  public:
    /// `flush_threshold` items per target database triggers an eager flush.
    explicit WriteBatch(std::shared_ptr<DataStoreImpl> impl,
                        std::size_t flush_threshold = 8192);
    virtual ~WriteBatch();
    WriteBatch(const WriteBatch&) = delete;
    WriteBatch& operator=(const WriteBatch&) = delete;

    /// Queue a put; placement follows the same rule as direct writes. The
    /// Buffer value is held by reference until the group ships — the product
    /// bytes are never copied into the batch.
    void add(Role role, std::string_view parent_key, std::string key, hep::Buffer value);
    /// Compatibility shim: adopts the string into a Buffer (no copy).
    void add(Role role, std::string_view parent_key, std::string key, std::string value) {
        add(role, parent_key, std::move(key), hep::Buffer::adopt(std::move(value)));
    }

    /// Send everything queued; throws hepnos::Exception on failure.
    void flush();

    [[nodiscard]] std::size_t pending() const noexcept { return pending_; }
    [[nodiscard]] std::uint64_t total_flushed() const noexcept { return total_flushed_; }
    [[nodiscard]] std::uint64_t flush_rpcs() const noexcept { return flush_rpcs_; }
    /// Ingest epoch every write of this batch is tagged with — captured from
    /// the connection's active epoch at construction. 0 = publish-on-write;
    /// anything else stays invisible everywhere until DataStore::publish().
    [[nodiscard]] std::uint32_t epoch() const noexcept { return epoch_; }

  protected:
    struct TargetKey {
        std::string server;
        rpc::ProviderId provider;
        std::string db;
        bool operator<(const TargetKey& o) const {
            return std::tie(server, provider, db) < std::tie(o.server, o.provider, o.db);
        }
    };

    /// Ship one group; overridden by AsyncWriteBatch.
    virtual void ship(const yokan::DatabaseHandle& handle, std::vector<yokan::BatchItem> items);

    /// Queue one item on a group whose target is already resolved — the
    /// shared tail of add() and the column writer's emit path.
    void add_raw(const yokan::DatabaseHandle& handle, std::string key, hep::Buffer value);

    std::shared_ptr<DataStoreImpl> impl_;
    std::size_t flush_threshold_;
    std::uint32_t epoch_ = 0;
    std::map<TargetKey, std::pair<yokan::DatabaseHandle, std::vector<yokan::BatchItem>>> groups_;
    std::size_t pending_ = 0;
    std::uint64_t total_flushed_ = 0;
    std::uint64_t flush_rpcs_ = 0;
    /// Columnar shredder (null unless the connection's "columnar" knob is
    /// on): observes every product add and emits compressed column chunks
    /// back into the same groups, so chunks ride the normal batched path and
    /// land co-located with the blobs they mirror.
    std::unique_ptr<columnar::ColumnWriter> writer_;
};

/// Issues grouped updates asynchronously; wait() (or the destructor) blocks
/// until every in-flight update has been acknowledged.
class AsyncWriteBatch final : public WriteBatch {
  public:
    explicit AsyncWriteBatch(std::shared_ptr<DataStoreImpl> impl,
                             std::size_t flush_threshold = 8192);
    ~AsyncWriteBatch() override;

    /// Block until all issued updates completed; throws on any failure.
    void wait();

  protected:
    void ship(const yokan::DatabaseHandle& handle, std::vector<yokan::BatchItem> items) override;

  private:
    struct Pending {
        // The items keep the product buffers alive while the send is in
        // flight, and feed the synchronous failover retry path directly —
        // no re-unpacking of a packed copy.
        std::vector<yokan::BatchItem> items;
        std::shared_ptr<abt::Eventual<Result<hep::BufferChain>>> eventual;
        yokan::DatabaseHandle handle;  // for the failover retry path
    };
    std::vector<std::unique_ptr<Pending>> in_flight_;
};

}  // namespace hep::hepnos

// Storage rescaling (paper §V):
//
// "An early design of HEPnOS was used to evaluate the potential for storage
//  rescaling [Pufferscale], a technique that could further improve HEPnOS's
//  potential by allowing users to add and remove storage resources to it
//  while HEP applications are using it."
//
// This module implements that extension for the container roles: a database
// can be added to (or removed from) a role's consistent-hash ring, and the
// keys whose owner changed are migrated in bulk. Thanks to consistent
// hashing, adding the (n+1)-th target moves only ~1/(n+1) of the key space.
//
// Parent-key extraction per role (needed to recompute ownership, §II-C3):
//   datasets:  parent = parent path of the key ("/a/b" -> "/a")
//   runs:      parent = first 16 bytes  (dataset UUID)
//   subruns:   parent = first 24 bytes  (UUID + run)
//   events:    parent = first 32 bytes  (UUID + run + subrun)
// Product keys append "<label>#<type>" with no fixed-width parent, so product
// rescaling requires descriptor-tagged keys — out of scope here, as it was
// for the early design the paper cites.
#pragma once

#include <cstdint>

#include "hepnos/datastore_impl.hpp"

namespace hep::hepnos {

struct RescaleStats {
    std::uint64_t keys_scanned = 0;
    std::uint64_t keys_moved = 0;
    std::uint64_t batches = 0;

    [[nodiscard]] double moved_fraction() const {
        return keys_scanned == 0
                   ? 0.0
                   : static_cast<double>(keys_moved) / static_cast<double>(keys_scanned);
    }
};

/// Add `handle` as a new storage target for `role` and migrate the keys that
/// now belong to it. Safe for concurrent READS only after completion; callers
/// must quiesce writers during the operation (Pufferscale's protocol; our
/// scope matches the paper's "early design" evaluation).
Result<RescaleStats> add_storage_target(DataStoreImpl& impl, Role role,
                                        yokan::DatabaseHandle handle,
                                        std::size_t batch_size = 1024);

/// Remove the storage target at `index` from `role`, migrating every key it
/// holds to the remaining targets. The database is left empty but reachable.
Result<RescaleStats> remove_storage_target(DataStoreImpl& impl, Role role, std::size_t index,
                                           std::size_t batch_size = 1024);

}  // namespace hep::hepnos

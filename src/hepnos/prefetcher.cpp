#include "hepnos/prefetcher.hpp"

namespace hep::hepnos {

void Prefetcher::visit_container(const Uuid& dataset, std::string_view parent_key,
                                 const Visitor& fn) const {
    auto& impl = *datastore_.impl();
    // The prefetcher reads ahead of the analysis loop: demote its scans and
    // bulk loads to batch class so they never starve interactive requests.
    auto events_db = impl.locate(Role::kEvents, parent_key).with_class(qos::kClassBatch);
    if (snap_) {
        // Pinned iteration: the event-key pages resolve at the snapshot too,
        // so an event ingested after the capture is neither listed nor read.
        events_db = events_db.with_snapshot(
            snap_->pin(Role::kEvents, impl.locate_index(Role::kEvents, parent_key)));
    }

    std::string after(parent_key);
    while (true) {
        auto page = events_db.list_keys(after, parent_key, page_size_);
        if (!page.ok()) throw Exception(page.status());
        if (page->empty()) break;
        after = page->back();

        // One get_multi per product database for everything this page needs.
        ProductCache cache;
        if (!labels_.empty()) {
            std::map<std::size_t, std::vector<std::string>> by_db;
            for (const auto& event_key : *page) {
                const std::size_t db = impl.locate_index(Role::kProducts, event_key);
                for (const auto& [label, type] : labels_) {
                    by_db[db].push_back(product_key(event_key, label, type));
                }
            }
            for (auto& [db, keys] : by_db) {
                // Batch-class bulk load through the client lease cache: hot
                // products are served locally, only the rest hit the wire.
                // (Pinned loads skip the cache — it holds latest values.)
                auto values = impl.load_products_bulk(
                    db, keys, snap_ ? &snap_->pin(Role::kProducts, db) : nullptr);
                if (!values.ok()) throw Exception(values.status());
                for (std::size_t i = 0; i < keys.size(); ++i) {
                    if ((*values)[i].has_value()) {
                        cache.put(std::move(keys[i]), std::move(*(*values)[i]));
                        ++prefetched_;
                    }
                }
            }
        }

        for (const auto& key : *page) {
            const RunNumber run = decode_be64(std::string_view(key).substr(16));
            const SubRunNumber subrun = decode_be64(std::string_view(key).substr(24));
            const EventNumber event = decode_be64(std::string_view(key).substr(32));
            Event ev(datastore_.impl(), dataset, run, subrun, event);
            fn(ev, cache);
            ++visited_;
        }
        if (page->size() < page_size_) break;
    }
}

void Prefetcher::for_each_event(const SubRun& subrun, const Visitor& fn) const {
    visit_container(Uuid::from_bytes(std::string_view(subrun.container_key()).substr(0, 16)),
                    subrun.container_key(), fn);
}

void Prefetcher::for_each_event(const Run& run, const Visitor& fn) const {
    for (const auto& subrun : run) {
        for_each_event(subrun, fn);
    }
}

void Prefetcher::for_each_event(const DataSet& dataset, const Visitor& fn) const {
    for (const auto& run : dataset) {
        for_each_event(run, fn);
    }
}

}  // namespace hep::hepnos

#include "hepnos/containers.hpp"

namespace hep::hepnos {

namespace detail {

void store_product_bytes(DataStoreImpl& impl, std::string_view container_key,
                         std::string_view label, std::string_view type, hep::Buffer bytes,
                         WriteBatch* batch) {
    std::string key = product_key(container_key, label, type);
    if (batch) {
        batch->add(Role::kProducts, container_key, std::move(key), std::move(bytes));
        return;
    }
    const auto& db = impl.locate(Role::kProducts, container_key);
    throw_if_error(db.put(key, std::move(bytes), /*overwrite=*/true));
    // Synchronous invalidation before returning: a load() issued by this
    // client after store() returns must never see the overwritten value.
    impl.invalidate_products(db, std::vector<std::string>{std::move(key)});
}

bool erase_product_bytes(DataStoreImpl& impl, std::string_view container_key,
                         std::string_view label, std::string_view type) {
    std::string key = product_key(container_key, label, type);
    const auto& db = impl.locate(Role::kProducts, container_key);
    const Status st = db.erase(key);
    if (st.code() == StatusCode::kNotFound) return false;
    throw_if_error(st);
    impl.invalidate_products(db, std::vector<std::string>{std::move(key)});
    return true;
}

bool load_product_bytes(DataStoreImpl& impl, std::string_view container_key,
                        std::string_view label, std::string_view type, std::string& bytes) {
    hep::BufferView view;
    if (!load_product_view(impl, container_key, label, type, view)) return false;
    hep::count_buffer_copy(view.size());
    bytes.assign(view.sv());
    return true;
}

bool load_product_view(DataStoreImpl& impl, std::string_view container_key,
                       std::string_view label, std::string_view type, hep::BufferView& view) {
    // Read-through: client lease cache, then the cache tier (if the service
    // runs one), then the owning provider.
    auto value = impl.read_product(container_key, product_key(container_key, label, type));
    if (!value.ok()) {
        if (value.status().code() == StatusCode::kNotFound) return false;
        throw Exception(value.status());
    }
    view = std::move(value.value());
    return true;
}

bool product_exists(DataStoreImpl& impl, std::string_view container_key, std::string_view label,
                    std::string_view type) {
    const auto& db = impl.locate(Role::kProducts, container_key);
    return value_or_throw(db.exists(product_key(container_key, label, type)));
}

void create_container(DataStoreImpl& impl, Role role, std::string_view parent_key,
                      std::string key, WriteBatch* batch) {
    // Container keys have no value; presence of the key is the container
    // (paper §II-C1). Creation is idempotent.
    if (batch) {
        batch->add(role, parent_key, std::move(key), std::string());
        return;
    }
    const auto& db = impl.locate(role, parent_key);
    throw_if_error(db.put(key, "", /*overwrite=*/true));
}

bool container_exists(DataStoreImpl& impl, Role role, std::string_view parent_key,
                      std::string_view key) {
    const auto& db = impl.locate(role, parent_key);
    return value_or_throw(db.exists(key));
}

std::vector<std::uint64_t> list_child_numbers(DataStoreImpl& impl, Role role,
                                              std::string_view parent_key,
                                              std::string_view after_key, std::size_t max) {
    const auto& db = impl.locate(role, parent_key);
    auto keys = db.list_keys(after_key, parent_key, max);
    if (!keys.ok()) throw Exception(keys.status());
    std::vector<std::uint64_t> numbers;
    numbers.reserve(keys->size());
    for (const auto& key : *keys) {
        // Children of this container are exactly parent_key + 8 bytes; longer
        // keys belong to grandchildren stored in other roles, which never
        // share a database, so every key here is a direct child.
        if (key.size() == parent_key.size() + 8) {
            numbers.push_back(key_number(key));
        }
    }
    return numbers;
}

}  // namespace detail

DataSet DataSet::createDataSet(std::string_view name) const {
    if (name.empty() || name.find(kPathSeparator) != std::string_view::npos) {
        throw Exception(Status::InvalidArgument(
            "dataset name must be non-empty and contain no '/': " + std::string(name)));
    }
    const std::string child_path = path_ + kPathSeparator + std::string(name);
    const auto& db = impl_->locate(Role::kDatasets, path_);
    // Deterministic UUID from a random seed per creation; losing the race to
    // a concurrent creator is fine — re-read the authoritative value.
    Uuid uuid = Uuid::generate();
    Status st = db.put(child_path, uuid.bytes(), /*overwrite=*/false);
    if (st.code() == StatusCode::kAlreadyExists || st.ok()) {
        auto stored = db.get(child_path);
        if (!stored.ok()) throw Exception(stored.status());
        return DataSet(impl_, child_path, Uuid::from_bytes(*stored));
    }
    throw Exception(st);
}

DataSet DataSet::dataset(std::string_view relative_path) const {
    const std::string sub = normalize_path(relative_path);
    if (sub.empty()) return *this;
    const std::string full = path_ + sub;
    const auto& db = impl_->locate(Role::kDatasets, parent_of(full));
    auto uuid = db.get(full);
    if (!uuid.ok()) {
        if (uuid.status().code() == StatusCode::kNotFound) {
            throw Exception(Status::NotFound("no dataset at " + full));
        }
        throw Exception(uuid.status());
    }
    return DataSet(impl_, full, Uuid::from_bytes(*uuid));
}

bool DataSet::hasDataSet(std::string_view relative_path) const {
    const std::string sub = normalize_path(relative_path);
    if (sub.empty()) return true;
    const std::string full = path_ + sub;
    const auto& db = impl_->locate(Role::kDatasets, parent_of(full));
    return value_or_throw(db.exists(full));
}

std::vector<DataSet> DataSet::datasets(std::size_t page_size) const {
    const auto& db = impl_->locate(Role::kDatasets, path_);
    const std::string prefix = path_ + kPathSeparator;
    std::vector<DataSet> out;
    std::string after = prefix;
    while (true) {
        auto page = db.list_keyvals(after, prefix, page_size);
        if (!page.ok()) throw Exception(page.status());
        if (page->empty()) break;
        for (auto& kv : *page) {
            // Grandchildren may share this database when their parent hashes
            // here too; keep only direct children.
            if (is_direct_child(kv.key, prefix)) {
                out.emplace_back(impl_, kv.key, Uuid::from_bytes(kv.value));
            }
        }
        after = page->back().key;
        if (page->size() < page_size) break;
    }
    return out;
}

}  // namespace hep::hepnos

// HTF — "HEP Table Format", the HDF5 substitute (paper §III-B).
//
// The paper's input data are HDF5 files organized as a hierarchy of groups;
// leaf groups are named after the C++ class they store and contain a set of
// 1-D tables (datasets) of identical length: three tables hold the run,
// subrun and event numbers, the rest hold one member variable each. HTF
// reproduces exactly that data model:
//
//   file := header, group*, directory, footer
//   group := named leaf group with N columns, each a typed 1-D array
//
// plus runtime schema introspection (group names, column names/types), which
// is what HDF2HEPnOS needs to deduce the class and generate code.
//
// All integers little-endian; column payloads are raw arrays.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "common/status.hpp"

namespace hep::htf {

enum class ColumnType : std::uint8_t {
    kInt32 = 1,
    kInt64 = 2,
    kUInt32 = 3,
    kUInt64 = 4,
    kFloat32 = 5,
    kFloat64 = 6,
};

std::string_view to_string(ColumnType t) noexcept;
std::size_t width_of(ColumnType t) noexcept;

/// Column data, type-erased.
using ColumnData = std::variant<std::vector<std::int32_t>, std::vector<std::int64_t>,
                                std::vector<std::uint32_t>, std::vector<std::uint64_t>,
                                std::vector<float>, std::vector<double>>;

ColumnType type_of(const ColumnData& data) noexcept;
std::size_t size_of(const ColumnData& data) noexcept;

/// A leaf group: a named set of equal-length 1-D columns.
class Group {
  public:
    explicit Group(std::string name) : name_(std::move(name)) {}

    [[nodiscard]] const std::string& name() const noexcept { return name_; }

    /// Add a column; all columns of a group must have the same length.
    Status add_column(const std::string& column, ColumnData data);

    [[nodiscard]] bool has_column(const std::string& column) const;
    [[nodiscard]] const ColumnData* column(const std::string& column) const;
    [[nodiscard]] std::vector<std::string> column_names() const;
    [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
    [[nodiscard]] std::size_t num_columns() const noexcept { return columns_.size(); }

    /// Typed access; null if missing or of a different type.
    template <typename T>
    const std::vector<T>* typed_column(const std::string& name) const {
        const ColumnData* data = column(name);
        if (!data) return nullptr;
        return std::get_if<std::vector<T>>(data);
    }

  private:
    std::string name_;
    std::map<std::string, ColumnData> columns_;
    std::size_t rows_ = 0;
};

/// An HTF file in memory: a set of named leaf groups.
class File {
  public:
    File() = default;

    Group& create_group(const std::string& name);
    [[nodiscard]] const Group* group(const std::string& name) const;
    [[nodiscard]] std::vector<std::string> group_names() const;
    [[nodiscard]] std::size_t num_groups() const noexcept { return groups_.size(); }

    /// Serialize to / parse from disk.
    Status write(const std::string& path) const;
    static Result<File> read(const std::string& path);

    /// Schema-only read: group names and column names/types, without
    /// loading any column payloads (fast; used by the code generator).
    struct ColumnInfo {
        std::string name;
        ColumnType type;
        std::uint64_t rows;
    };
    using Schema = std::map<std::string, std::vector<ColumnInfo>>;
    static Result<Schema> read_schema(const std::string& path);

  private:
    std::map<std::string, Group> groups_;
};

}  // namespace hep::htf

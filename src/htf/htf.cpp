#include "htf/htf.hpp"

#include <cstdio>
#include <cstring>

namespace hep::htf {

namespace {
constexpr std::uint64_t kMagic = 0x485446312D763031ULL;  // "HTF1-v01"

struct Writer {
    std::FILE* f;
    bool ok = true;
    void u8(std::uint8_t v) { write(&v, 1); }
    void u32(std::uint32_t v) { write(&v, 4); }
    void u64(std::uint64_t v) { write(&v, 8); }
    void str(const std::string& s) {
        u32(static_cast<std::uint32_t>(s.size()));
        write(s.data(), s.size());
    }
    void write(const void* p, std::size_t n) {
        if (ok && std::fwrite(p, 1, n, f) != n) ok = false;
    }
};

struct Reader {
    std::FILE* f;
    bool ok = true;
    std::uint8_t u8() {
        std::uint8_t v = 0;
        read(&v, 1);
        return v;
    }
    std::uint32_t u32() {
        std::uint32_t v = 0;
        read(&v, 4);
        return v;
    }
    std::uint64_t u64() {
        std::uint64_t v = 0;
        read(&v, 8);
        return v;
    }
    std::string str() {
        const std::uint32_t n = u32();
        if (!ok || n > (1u << 20)) {
            ok = false;
            return {};
        }
        std::string s(n, '\0');
        read(s.data(), n);
        return s;
    }
    void read(void* p, std::size_t n) {
        if (ok && std::fread(p, 1, n, f) != n) ok = false;
    }
    void skip(std::size_t n) {
        if (ok && std::fseek(f, static_cast<long>(n), SEEK_CUR) != 0) ok = false;
    }
};

template <typename T>
void write_payload(Writer& w, const std::vector<T>& v) {
    w.write(v.data(), v.size() * sizeof(T));
}

template <typename T>
ColumnData read_payload(Reader& r, std::uint64_t rows) {
    std::vector<T> v(rows);
    r.read(v.data(), rows * sizeof(T));
    return v;
}

}  // namespace

std::string_view to_string(ColumnType t) noexcept {
    switch (t) {
        case ColumnType::kInt32: return "int32";
        case ColumnType::kInt64: return "int64";
        case ColumnType::kUInt32: return "uint32";
        case ColumnType::kUInt64: return "uint64";
        case ColumnType::kFloat32: return "float32";
        case ColumnType::kFloat64: return "float64";
    }
    return "?";
}

std::size_t width_of(ColumnType t) noexcept {
    switch (t) {
        case ColumnType::kInt32:
        case ColumnType::kUInt32:
        case ColumnType::kFloat32: return 4;
        default: return 8;
    }
}

ColumnType type_of(const ColumnData& data) noexcept {
    return static_cast<ColumnType>(data.index() + 1);
}

std::size_t size_of(const ColumnData& data) noexcept {
    return std::visit([](const auto& v) { return v.size(); }, data);
}

Status Group::add_column(const std::string& column, ColumnData data) {
    const std::size_t n = size_of(data);
    if (!columns_.empty() && n != rows_) {
        return Status::InvalidArgument("column " + column + " has " + std::to_string(n) +
                                       " rows, group " + name_ + " has " +
                                       std::to_string(rows_));
    }
    if (columns_.count(column)) {
        return Status::AlreadyExists("column " + column + " already in group " + name_);
    }
    rows_ = n;
    columns_.emplace(column, std::move(data));
    return Status::OK();
}

bool Group::has_column(const std::string& column) const { return columns_.count(column) > 0; }

const ColumnData* Group::column(const std::string& column) const {
    auto it = columns_.find(column);
    return it == columns_.end() ? nullptr : &it->second;
}

std::vector<std::string> Group::column_names() const {
    std::vector<std::string> names;
    names.reserve(columns_.size());
    for (const auto& [name, data] : columns_) names.push_back(name);
    return names;
}

Group& File::create_group(const std::string& name) {
    auto it = groups_.find(name);
    if (it == groups_.end()) it = groups_.emplace(name, Group(name)).first;
    return it->second;
}

const Group* File::group(const std::string& name) const {
    auto it = groups_.find(name);
    return it == groups_.end() ? nullptr : &it->second;
}

std::vector<std::string> File::group_names() const {
    std::vector<std::string> names;
    names.reserve(groups_.size());
    for (const auto& [name, g] : groups_) names.push_back(name);
    return names;
}

Status File::write(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (!f) return Status::IOError("cannot create " + path);
    Writer w{f};
    w.u64(kMagic);
    w.u64(groups_.size());
    for (const auto& [gname, group] : groups_) {
        w.str(gname);
        w.u64(group.num_columns());
        for (const auto& cname : group.column_names()) {
            const ColumnData* data = group.column(cname);
            w.str(cname);
            w.u8(static_cast<std::uint8_t>(type_of(*data)));
            w.u64(size_of(*data));
            std::visit([&](const auto& v) { write_payload(w, v); }, *data);
        }
    }
    const bool ok = w.ok;
    std::fclose(f);
    if (!ok) return Status::IOError("short write to " + path);
    return Status::OK();
}

Result<File> File::read(const std::string& path) {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (!f) return Status::IOError("cannot open " + path);
    Reader r{f};
    File out;
    if (r.u64() != kMagic) {
        std::fclose(f);
        return Status::Corruption("bad HTF magic in " + path);
    }
    const std::uint64_t ngroups = r.u64();
    for (std::uint64_t g = 0; r.ok && g < ngroups; ++g) {
        const std::string gname = r.str();
        Group& group = out.create_group(gname);
        const std::uint64_t ncols = r.u64();
        for (std::uint64_t c = 0; r.ok && c < ncols; ++c) {
            const std::string cname = r.str();
            const auto type = static_cast<ColumnType>(r.u8());
            const std::uint64_t rows = r.u64();
            if (rows > (1ULL << 32)) {
                r.ok = false;
                break;
            }
            ColumnData data;
            switch (type) {
                case ColumnType::kInt32: data = read_payload<std::int32_t>(r, rows); break;
                case ColumnType::kInt64: data = read_payload<std::int64_t>(r, rows); break;
                case ColumnType::kUInt32: data = read_payload<std::uint32_t>(r, rows); break;
                case ColumnType::kUInt64: data = read_payload<std::uint64_t>(r, rows); break;
                case ColumnType::kFloat32: data = read_payload<float>(r, rows); break;
                case ColumnType::kFloat64: data = read_payload<double>(r, rows); break;
                default: r.ok = false; continue;
            }
            if (r.ok) {
                Status st = group.add_column(cname, std::move(data));
                if (!st.ok()) {
                    std::fclose(f);
                    return st;
                }
            }
        }
    }
    const bool ok = r.ok;
    std::fclose(f);
    if (!ok) return Status::Corruption("truncated or corrupt HTF file " + path);
    return out;
}

Result<File::Schema> File::read_schema(const std::string& path) {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (!f) return Status::IOError("cannot open " + path);
    Reader r{f};
    Schema schema;
    if (r.u64() != kMagic) {
        std::fclose(f);
        return Status::Corruption("bad HTF magic in " + path);
    }
    const std::uint64_t ngroups = r.u64();
    for (std::uint64_t g = 0; r.ok && g < ngroups; ++g) {
        const std::string gname = r.str();
        auto& cols = schema[gname];
        const std::uint64_t ncols = r.u64();
        for (std::uint64_t c = 0; r.ok && c < ncols; ++c) {
            ColumnInfo info;
            info.name = r.str();
            info.type = static_cast<ColumnType>(r.u8());
            info.rows = r.u64();
            r.skip(info.rows * width_of(info.type));  // payload untouched
            if (r.ok) cols.push_back(std::move(info));
        }
    }
    const bool ok = r.ok;
    std::fclose(f);
    if (!ok) return Status::Corruption("truncated or corrupt HTF file " + path);
    return schema;
}

}  // namespace hep::htf

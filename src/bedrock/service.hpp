// Bedrock substitute: bootstraps a service process from a JSON description
// (paper §II-B). The description covers the Margo/Argobots configuration
// (rpc xstreams), the provider list with their pools, and each provider's
// databases — the same knobs the paper tunes (16 rpc-xstreams, 16 providers,
// 8 event + 8 product databases per server).
//
// Example config:
// {
//   "address": "hepnos-server-0",
//   "margo": { "rpc_xstreams": 4 },
//   "providers": [
//     { "type": "yokan", "provider_id": 1,
//       "pool": { "name": "pool-1", "xstreams": 1 },
//       "config": { "databases": [
//          { "name": "events-0",   "type": "map", "role": "events" },
//          { "name": "products-0", "type": "map", "role": "products" } ] } }
//   ]
// }
//
// Database "role" classifies what HEPnOS stores there: one of "datasets",
// "runs", "subruns", "events", "products". ServiceProcess::descriptor()
// aggregates (address, provider, db, role, type) tuples; hepnos::DataStore
// connects from a JSON document listing those descriptors for every server.
//
// An optional top-level "replication" section — {"factor": 2,
// "read_from_replicas": false, ...retry policy knobs...} — is passed through
// into the descriptor verbatim; the connecting DataStore uses it to wire each
// database into a replica group (round-robin backups across the other
// servers) and to build its client-side retry/failover policy.
//
// An optional top-level "query" section — {"enabled": true, "max_cursors":
// 1024, "prefetch": true} — co-locates a query-pushdown provider (src/query)
// with every yokan provider and advertises "query": true in the descriptor,
// which DataStore::query requires.
//
// An optional top-level "qos" section arms admission control (src/qos):
//
//   "qos": {
//     "enabled": true,
//     "weights": [32, 16, 4, 1],        // control/interactive/batch/bulk
//     "slowdown_inflight": 64,          // tier 1: bulk classes start yielding
//     "shed_inflight": 256,             // tier 2: shed with Overloaded
//     "retry_after_ms": 25,             // hint attached to queue-depth sheds
//     "slowdown_min_class": "batch",    // first class the slowdown applies to
//     "max_slowdown_ms": 20,
//     "default_limit": { "rate": 0, "burst": 0 },   // tokens/sec; 0 = off
//     "tenants": { "ingest": { "rate": 500, "burst": 100 } }
//   }
//
// With qos enabled, every handler pool becomes a weighted-fair PriorityPool,
// requests are admitted (token buckets, deadline expiry, two-tier overload
// control) before any handler ULT is created, and the descriptor advertises
// "qos": true. Under "monitoring", a "qos/<provider_id>" source exposes
// admitted/shed/expired counts, per-class queue-delay histograms and
// token-bucket levels.
//
// A provider entry with "type": "cache" boots a hot-product cache node
// (src/cache) instead of a yokan provider. The process advertises every such
// node under "cache_tier" in its descriptor; connecting clients consistent-
// hash product keys over all advertised nodes and read through them. An
// optional top-level "cache" section — {"enabled": true, "capacity_bytes":
// 67108864, "max_entries": 65536, "lease_ms": 1000, "tier": true, "bypass":
// false} — configures the cache-provider tables AND is passed through to the
// descriptor, so clients build their local lease caches with the same knobs.
// Under "monitoring", a "cache/<provider_id>" source exposes hit/miss/fill/
// eviction/invalidation counters and hit-latency histograms.
//
// An optional top-level "columnar" section — {"enabled": true, "chunk_rows":
// 256, "min_batch": 16, "compression": "auto"} — turns on the columnar
// layout (src/columnar): query providers serve the vectorized column-pruned
// scan path, and the section is passed through to the descriptor so
// connecting clients shred their ingest batches into column chunks with the
// same knobs. Requires "query"; it is advertised to clients only when EVERY
// process in the merged connection document enables it (a mixed deployment
// would answer Unimplemented from some servers, so clients fall back to blob
// scans entirely).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cache/provider.hpp"
#include "common/json.hpp"
#include "margo/engine.hpp"
#include "qos/admission.hpp"
#include "query/provider.hpp"
#include "symbio/provider.hpp"
#include "yokan/provider.hpp"

namespace hep::bedrock {

/// One database as seen by clients.
struct DatabaseDescriptor {
    std::string address;
    rpc::ProviderId provider_id = 0;
    std::string name;
    std::string role;  // datasets | runs | subruns | events | products
    std::string type;  // backend ("map" | "lsm"); clients creating backup
                       // replicas must match it
};

class ServiceProcess {
  public:
    /// Boot a service from its JSON description. `base_dir` anchors relative
    /// lsm paths.
    static Result<std::unique_ptr<ServiceProcess>> create(rpc::Fabric& network,
                                                          const json::Value& config,
                                                          const std::string& base_dir = ".");

    ~ServiceProcess();

    [[nodiscard]] const std::string& address() const noexcept { return engine_->address(); }
    [[nodiscard]] margo::Engine& engine() noexcept { return *engine_; }
    [[nodiscard]] const std::vector<DatabaseDescriptor>& databases() const noexcept {
        return databases_;
    }

    /// Client-facing descriptor: {"databases": [{address, provider_id, name,
    /// role}, ...]}. Multiple processes' descriptors merge into one
    /// connection file.
    [[nodiscard]] json::Value descriptor() const;

    /// Direct access for tests/ingestion tools.
    [[nodiscard]] yokan::Provider* find_provider(rpc::ProviderId id);

    /// The query-pushdown provider co-located with yokan provider `id`
    /// (nullptr when the "query" knob is off).
    [[nodiscard]] query::QueryProvider* find_query_provider(rpc::ProviderId id);

    /// A cache-tier provider hosted by this process ({"type": "cache"} in the
    /// provider list); nullptr when `id` hosts none.
    [[nodiscard]] cache::Provider* find_cache_provider(rpc::ProviderId id);

    /// Monitoring registry, if the config enabled a "monitoring" section
    /// (null otherwise). Remote access goes through symbio::fetch.
    [[nodiscard]] symbio::MetricsRegistry* metrics() noexcept { return registry_.get(); }

    /// Admission controller, if the config enabled a "qos" section.
    [[nodiscard]] qos::AdmissionController* admission() noexcept { return admission_.get(); }

    void shutdown();

  private:
    ServiceProcess() = default;

    std::unique_ptr<margo::Engine> engine_;
    std::vector<std::unique_ptr<yokan::Provider>> providers_;
    std::vector<std::unique_ptr<query::QueryProvider>> query_providers_;
    std::vector<std::unique_ptr<cache::Provider>> cache_providers_;
    std::vector<DatabaseDescriptor> databases_;
    bool query_enabled_ = false;
    json::Value cache_cfg_;     // "cache" config section, passed through to the
                                // descriptor so clients pick up the same knobs
    json::Value columnar_cfg_;  // "columnar" config section, passed through so
                                // clients shred ingest with the same knobs
    std::shared_ptr<qos::AdmissionController> admission_;
    json::Value replication_;  // "replication" config section, passed through
                               // to the descriptor so clients wire the groups
    std::shared_ptr<symbio::MetricsRegistry> registry_;
    std::unique_ptr<symbio::Provider> symbio_provider_;
};

/// Merge several process descriptors into one client connection document.
json::Value merge_descriptors(const std::vector<json::Value>& descriptors);

}  // namespace hep::bedrock

#include "bedrock/service.hpp"

#include "common/logging.hpp"
#include "symbio/buffers.hpp"
#include "yokan/lsm/lsm_db.hpp"

namespace hep::bedrock {

Result<std::unique_ptr<ServiceProcess>> ServiceProcess::create(rpc::Fabric& network,
                                                               const json::Value& config,
                                                               const std::string& base_dir) {
    const std::string address = config["address"].as_string();
    if (address.empty()) return Status::InvalidArgument("bedrock config needs an \"address\"");

    if (config.contains("log_level")) {
        log::set_level(log::parse_level(config["log_level"].as_string()));
    }

    margo::EngineConfig engine_cfg;
    engine_cfg.rpc_xstreams =
        static_cast<std::size_t>(config["margo"]["rpc_xstreams"].as_int(2));
    if (engine_cfg.rpc_xstreams == 0) {
        return Status::InvalidArgument("margo.rpc_xstreams must be >= 1");
    }

    // QoS knob: parsed before the engine exists so the handler pools (the
    // default pool AND every per-provider pool created below) come up as
    // weighted-fair PriorityPools.
    const json::Value& qos_cfg = config["qos"];
    const bool qos_enabled = qos_cfg.is_object() && qos_cfg["enabled"].as_bool(true);
    qos::AdmissionOptions qos_opts;
    if (qos_enabled) {
        qos_opts = qos::AdmissionOptions::from_json(qos_cfg);
        engine_cfg.qos_weights = qos_opts.weights;
    }

    auto svc = std::unique_ptr<ServiceProcess>(new ServiceProcess());
    try {
        svc->engine_ = std::make_unique<margo::Engine>(network, address, engine_cfg);
    } catch (const std::exception& e) {
        return Status::AlreadyExists(e.what());
    }

    // Arm admission before any provider registers handlers: every request is
    // gated from the very first RPC.
    if (qos_enabled) {
        svc->admission_ = std::make_shared<qos::AdmissionController>(std::move(qos_opts));
        svc->engine_->enable_qos(svc->admission_);
    }

    const json::Value& providers = config["providers"];
    for (std::size_t i = 0; i < providers.size(); ++i) {
        const json::Value& p = providers.at(i);
        const std::string type = p["type"].as_string();
        if (type != "yokan" && type != "cache") {
            return Status::InvalidArgument("unknown provider type: " + type);
        }
        const auto provider_id =
            static_cast<rpc::ProviderId>(p["provider_id"].as_int(static_cast<int>(i + 1)));

        // Dedicated pool (paper: one execution stream per provider) or the
        // shared engine pool.
        std::shared_ptr<abt::Pool> pool;
        if (p.contains("pool")) {
            const std::string pool_name = p["pool"]["name"].as_string(
                                              ).empty()
                                              ? address + ":pool-" + std::to_string(provider_id)
                                              : p["pool"]["name"].as_string();
            const auto xstreams =
                static_cast<std::size_t>(p["pool"]["xstreams"].as_int(1));
            pool = svc->engine_->create_pool(pool_name, xstreams);
        }

        if (type == "cache") {
            // Hot-product cache node: table knobs come from the provider's
            // own config, falling back to the service-wide "cache" section.
            json::Value ccfg = p["config"];
            if (!ccfg.is_object()) ccfg = config["cache"];
            svc->cache_providers_.push_back(
                std::make_unique<cache::Provider>(*svc->engine_, provider_id, ccfg, pool));
            continue;
        }

        // Service-wide lsm tuning ("lsm": {"background_compaction": ...,
        // "group_commit": ..., "compaction_xstreams": ...}) applies to every
        // provider that does not carry its own "lsm" section.
        json::Value pcfg = p["config"];
        if (config.contains("lsm") && !pcfg.contains("lsm")) pcfg["lsm"] = config["lsm"];

        auto provider =
            yokan::Provider::create(*svc->engine_, provider_id, pcfg, pool, base_dir);
        if (!provider.ok()) return provider.status();

        // Record client-facing descriptors, including each database's role.
        // Use the ENGINE's address: fabrics may canonicalize it (TcpFabric
        // turns "name" into "tcp://host:port/name").
        const json::Value& dbs = p["config"]["databases"];
        for (std::size_t d = 0; d < dbs.size(); ++d) {
            DatabaseDescriptor desc;
            desc.address = svc->engine_->address();
            desc.provider_id = provider_id;
            desc.name = dbs.at(d)["name"].as_string();
            if (desc.name.empty()) desc.name = "db" + std::to_string(d);
            desc.role = dbs.at(d)["role"].as_string();
            desc.type = dbs.at(d)["type"].as_string();
            if (desc.type.empty()) desc.type = "map";
            svc->databases_.push_back(std::move(desc));
        }
        svc->providers_.push_back(std::move(provider.value()));
    }

    // Replication knob: the service does not wire the groups itself (the
    // connecting client does, once it has merged every server's descriptor);
    // it just advertises the section.
    if (config.contains("replication")) svc->replication_ = config["replication"];

    // Cache knobs travel to clients in the descriptor, so the local lease
    // caches and the provider tables agree on lease_ms etc.
    if (config.contains("cache")) svc->cache_cfg_ = config["cache"];

    // Query pushdown knob: co-locate one QueryProvider with every yokan
    // provider (same provider id, same pool — scans share the provider's
    // execution stream) and advertise "query": true in the descriptor.
    //   "query": { "enabled": true, "max_cursors": 1024, "prefetch": true }
    // Columnar layout knob: the section is parsed here (so the query
    // providers below come up with the vectorized path armed) and passed
    // through to the descriptor for the write side.
    //   "columnar": { "enabled": true, "chunk_rows": 256, "min_batch": 16,
    //                 "compression": "auto" }
    const json::Value& colcfg = config["columnar"];
    if (colcfg.is_object() && colcfg["enabled"].as_bool(true)) {
        svc->columnar_cfg_ = colcfg;
    }

    const json::Value& qcfg = config["query"];
    if (qcfg.is_object() && qcfg["enabled"].as_bool(true)) {
        query::QueryProvider::Options qopts;
        qopts.max_cursors =
            static_cast<std::uint64_t>(qcfg["max_cursors"].as_int(
                static_cast<std::int64_t>(qopts.max_cursors)));
        qopts.prefetch = qcfg["prefetch"].as_bool(qopts.prefetch);
        qopts.columnar = !svc->columnar_cfg_.is_null();
        for (auto& provider : svc->providers_) {
            svc->query_providers_.push_back(std::make_unique<query::QueryProvider>(
                *svc->engine_, provider->provider_id(), *provider, qopts, provider->pool()));
        }
        svc->query_enabled_ = true;
    }

    // Optional monitoring (Symbiomon substitute): expose live metrics,
    // including a per-database stats source, under a dedicated provider id.
    //   "monitoring": { "provider_id": 99 }
    if (config.contains("monitoring")) {
        const auto symbio_id = static_cast<rpc::ProviderId>(
            config["monitoring"]["provider_id"].as_int(999));
        svc->registry_ = std::make_shared<symbio::MetricsRegistry>();
        for (auto& provider : svc->providers_) {
            for (const auto& db_name : provider->database_names()) {
                yokan::Database* db = provider->find_database(db_name);
                svc->registry_->add_source("db/" + db_name, [db]() {
                    const auto stats = db->stats();
                    json::Value out = json::Value::make_object();
                    out["puts"] = stats.puts;
                    out["gets"] = stats.gets;
                    out["scans"] = stats.scans;
                    out["erases"] = stats.erases;
                    out["keys"] = db->size();
                    out["backend"] = std::string(db->type());
                    return out;
                });
                // LSM pipeline health: stall time, immutable-queue depth,
                // compaction backlog, group-commit batching.
                if (auto* lsm_db = dynamic_cast<yokan::lsm::LsmDb*>(db)) {
                    svc->registry_->add_source("lsm/" + db_name,
                                               [lsm_db]() { return lsm_db->stats_json(); });
                }
            }
        }
        // Replication metrics: records/bytes shipped, lag, repairs — one
        // source per provider, evaluated live (replica groups are wired by
        // clients after boot, so the closure must not snapshot now).
        for (auto& provider : svc->providers_) {
            yokan::Provider* p = provider.get();
            svc->registry_->add_source(
                "replica/" + std::to_string(p->provider_id()),
                [p]() { return p->replica_stats(); });
        }
        // Pushdown scan metrics: one source per query provider.
        for (auto& qp : svc->query_providers_) {
            query::QueryProvider* q = qp.get();
            svc->registry_->add_source("query/" + std::to_string(q->provider_id()),
                                       [q]() { return q->stats_json(); });
        }
        // Admission-control health: one source per provider (admitted/shed/
        // expired counts, per-class queue-delay histograms, inflight level,
        // token-bucket levels).
        if (svc->admission_) {
            for (auto& provider : svc->providers_) {
                const auto pid = provider->provider_id();
                auto ctrl = svc->admission_;
                svc->registry_->add_source("qos/" + std::to_string(pid),
                                           [ctrl, pid]() { return ctrl->stats_json(pid); });
            }
        }
        // Cache-tier health: hit/miss/fill/eviction/invalidation counters and
        // hit-latency histograms, one source per cache provider.
        for (auto& cp : svc->cache_providers_) {
            cache::Provider* c = cp.get();
            svc->registry_->add_source("cache/" + std::to_string(c->provider_id()),
                                       [c]() { return c->stats_json(); });
        }
        // Zero-copy buffer pipeline counters (allocations, memcpys, chain
        // depth) for this process.
        symbio::add_buffer_source(*svc->registry_);
        svc->symbio_provider_ =
            std::make_unique<symbio::Provider>(*svc->engine_, symbio_id, svc->registry_);
    }
    return svc;
}

ServiceProcess::~ServiceProcess() { shutdown(); }

void ServiceProcess::shutdown() {
    if (engine_) engine_->finalize();
}

json::Value ServiceProcess::descriptor() const {
    json::Value doc = json::Value::make_object();
    json::Value arr = json::Value::make_array();
    for (const auto& db : databases_) {
        json::Value entry = json::Value::make_object();
        entry["address"] = db.address;
        entry["provider_id"] = static_cast<std::int64_t>(db.provider_id);
        entry["name"] = db.name;
        entry["role"] = db.role;
        entry["type"] = db.type;
        arr.push_back(std::move(entry));
    }
    doc["databases"] = std::move(arr);
    if (!replication_.is_null()) doc["replication"] = replication_;
    if (query_enabled_) doc["query"] = true;
    // Columnar needs the query RPCs to be worth anything to readers.
    if (query_enabled_ && !columnar_cfg_.is_null()) doc["columnar"] = columnar_cfg_;
    if (admission_) doc["qos"] = true;
    if (!cache_cfg_.is_null()) doc["cache"] = cache_cfg_;
    if (!cache_providers_.empty()) {
        json::Value tier = json::Value::make_array();
        for (const auto& cp : cache_providers_) {
            json::Value node = json::Value::make_object();
            node["address"] = engine_->address();
            node["provider_id"] = static_cast<std::int64_t>(cp->provider_id());
            tier.push_back(std::move(node));
        }
        doc["cache_tier"] = std::move(tier);
    }
    return doc;
}

yokan::Provider* ServiceProcess::find_provider(rpc::ProviderId id) {
    for (auto& p : providers_) {
        if (p->provider_id() == id) return p.get();
    }
    return nullptr;
}

query::QueryProvider* ServiceProcess::find_query_provider(rpc::ProviderId id) {
    for (auto& p : query_providers_) {
        if (p->provider_id() == id) return p.get();
    }
    return nullptr;
}

cache::Provider* ServiceProcess::find_cache_provider(rpc::ProviderId id) {
    for (auto& p : cache_providers_) {
        if (p->provider_id() == id) return p.get();
    }
    return nullptr;
}

json::Value merge_descriptors(const std::vector<json::Value>& descriptors) {
    json::Value doc = json::Value::make_object();
    json::Value arr = json::Value::make_array();
    json::Value tier = json::Value::make_array();
    bool have_replication = false;
    bool have_cache = false;
    bool query = !descriptors.empty();
    bool columnar = !descriptors.empty();
    json::Value columnar_cfg;
    for (const auto& d : descriptors) {
        const json::Value& dbs = d["databases"];
        for (std::size_t i = 0; i < dbs.size(); ++i) arr.push_back(dbs.at(i));
        if (!have_replication && !d["replication"].is_null()) {
            doc["replication"] = d["replication"];
            have_replication = true;
        }
        if (!have_cache && !d["cache"].is_null()) {
            doc["cache"] = d["cache"];
            have_cache = true;
        }
        // Every process's cache nodes join one tier; clients hash over the
        // union, so all of them must see the same merged document.
        const json::Value& t = d["cache_tier"];
        if (t.is_array()) {
            for (std::size_t i = 0; i < t.size(); ++i) tier.push_back(t.at(i));
        }
        // Pushdown is only usable when EVERY process serves the query RPCs.
        if (!d["query"].as_bool(false)) query = false;
        // Same all-or-nothing rule for columnar: a server without the knob
        // answers Unimplemented, so a mixed deployment advertises nothing and
        // clients stay on the blob path everywhere.
        const json::Value& cc = d["columnar"];
        if (cc.is_object()) {
            if (columnar_cfg.is_null()) columnar_cfg = cc;
        } else {
            columnar = false;
        }
    }
    doc["databases"] = std::move(arr);
    if (query) doc["query"] = true;
    if (query && columnar && !columnar_cfg.is_null()) doc["columnar"] = columnar_cfg;
    if (tier.size() > 0) doc["cache_tier"] = std::move(tier);
    return doc;
}

}  // namespace hep::bedrock

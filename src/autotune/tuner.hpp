// Parameter autotuning (paper §V):
//
// "HPC storage service autotuning using variational-autoencoder-guided
//  asynchronous Bayesian optimization ... helped us select and optimize
//  relevant parameters (number of databases, batch sizes, etc.) in the
//  present work."
//
// We reproduce the capability with a deterministic black-box optimizer over
// discrete parameter grids: a random-search phase followed by coordinate
// descent from the incumbent. The objective is any double-valued function of
// an assignment (the abl_autotune bench plugs in the Theta DES throughput;
// tests use analytic functions). Every evaluation is recorded so the search
// trace can be inspected — the "performance diagnostics" half of the story.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace hep::autotune {

/// A discrete tunable: name + allowed values (e.g. batch sizes 2^k).
struct Param {
    std::string name;
    std::vector<std::int64_t> values;
};

using Assignment = std::map<std::string, std::int64_t>;

struct Sample {
    Assignment assignment;
    double objective = 0;
};

class Tuner {
  public:
    /// `objective` is maximized. Evaluations are memoized by assignment, so
    /// repeated visits are free.
    Tuner(std::vector<Param> params, std::function<double(const Assignment&)> objective,
          std::uint64_t seed = 4242);

    /// Run `random_samples` random probes, then up to `sweeps` rounds of
    /// coordinate descent (each round tries every value of every parameter
    /// around the incumbent). Returns the best sample found.
    Sample run(std::size_t random_samples, std::size_t sweeps = 3);

    /// Every distinct evaluation, in the order performed.
    [[nodiscard]] const std::vector<Sample>& history() const noexcept { return history_; }
    [[nodiscard]] std::size_t evaluations() const noexcept { return history_.size(); }

  private:
    double evaluate(const Assignment& a);
    Assignment random_assignment();

    std::vector<Param> params_;
    std::function<double(const Assignment&)> objective_;
    Rng rng_;
    std::map<std::string, double> memo_;  // key: serialized assignment
    std::vector<Sample> history_;
};

}  // namespace hep::autotune

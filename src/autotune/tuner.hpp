// Parameter autotuning (paper §V):
//
// "HPC storage service autotuning using variational-autoencoder-guided
//  asynchronous Bayesian optimization ... helped us select and optimize
//  relevant parameters (number of databases, batch sizes, etc.) in the
//  present work."
//
// We reproduce the capability with a deterministic black-box optimizer over
// discrete parameter grids: a random-search phase followed by coordinate
// descent from the incumbent. The objective is any double-valued function of
// an assignment (the abl_autotune bench plugs in the Theta DES throughput;
// tests use analytic functions). Every evaluation is recorded so the search
// trace can be inspected — the "performance diagnostics" half of the story.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "common/rng.hpp"

namespace hep::autotune {

/// A discrete tunable: name + allowed values (e.g. batch sizes 2^k).
struct Param {
    std::string name;
    std::vector<std::int64_t> values;
};

using Assignment = std::map<std::string, std::int64_t>;

struct Sample {
    Assignment assignment;
    double objective = 0;
    // Per-evaluation metadata (filled by the tuner / a rich objective; the
    // simple double-valued objective leaves the defaults).
    double wall_s = 0;      // wall time the evaluation took
    bool slo_pass = true;   // false when the assignment violated an SLO gate
    json::Value meta;       // objective-specific detail (e.g. a RunReport)

    [[nodiscard]] json::Value to_json() const;
};

class Tuner {
  public:
    /// `objective` is maximized. Evaluations are memoized by assignment, so
    /// repeated visits are free.
    Tuner(std::vector<Param> params, std::function<double(const Assignment&)> objective,
          std::uint64_t seed = 4242);

    /// Rich objective: fills the Sample it is handed (slo_pass, meta; the
    /// tuner sets wall_s and the returned value itself) and returns the
    /// value to maximize. Used by live harness closures that have more to
    /// report than one number.
    using RichObjective = std::function<double(const Assignment&, Sample&)>;
    Tuner(std::vector<Param> params, RichObjective objective, std::uint64_t seed = 4242);

    /// Run `random_samples` random probes, then up to `sweeps` rounds of
    /// coordinate descent (each round tries every value of every parameter
    /// around the incumbent). Returns the best sample found.
    Sample run(std::size_t random_samples, std::size_t sweeps = 3);

    /// Every distinct evaluation, in the order performed.
    [[nodiscard]] const std::vector<Sample>& history() const noexcept { return history_; }
    [[nodiscard]] std::size_t evaluations() const noexcept { return history_.size(); }

    /// The search trace as JSON: every evaluation in order with its
    /// assignment, objective, wall time and SLO bit — enough to plot a
    /// trajectory or audit why the incumbent won.
    [[nodiscard]] json::Value trace_json() const;
    /// Write trace_json() to `path` (pretty-printed). Returns false on I/O
    /// failure.
    bool dump_trace(const std::string& path) const;

  private:
    double evaluate(const Assignment& a);
    Assignment random_assignment();

    std::vector<Param> params_;
    RichObjective objective_;
    Rng rng_;
    std::map<std::string, double> memo_;  // key: serialized assignment
    std::vector<Sample> history_;
};

/// JSON form of an assignment ({param: value, ...}).
[[nodiscard]] json::Value assignment_json(const Assignment& a);

}  // namespace hep::autotune

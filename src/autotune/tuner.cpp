#include "autotune/tuner.hpp"

#include <cassert>

namespace hep::autotune {

namespace {
std::string memo_key(const Assignment& a) {
    std::string key;
    for (const auto& [name, value] : a) {
        key += name;
        key += '=';
        key += std::to_string(value);
        key += ';';
    }
    return key;
}
}  // namespace

Tuner::Tuner(std::vector<Param> params, std::function<double(const Assignment&)> objective,
             std::uint64_t seed)
    : params_(std::move(params)), objective_(std::move(objective)), rng_(seed) {
    assert(!params_.empty());
    for ([[maybe_unused]] const auto& p : params_) {
        assert(!p.values.empty());
    }
}

double Tuner::evaluate(const Assignment& a) {
    const std::string key = memo_key(a);
    auto it = memo_.find(key);
    if (it != memo_.end()) return it->second;
    const double value = objective_(a);
    memo_.emplace(key, value);
    history_.push_back(Sample{a, value});
    return value;
}

Assignment Tuner::random_assignment() {
    Assignment a;
    for (const auto& p : params_) {
        a[p.name] = p.values[rng_.uniform(0, p.values.size() - 1)];
    }
    return a;
}

Sample Tuner::run(std::size_t random_samples, std::size_t sweeps) {
    // Phase 1: random exploration (always includes each param's middle value
    // as a sane anchor point).
    Assignment best;
    for (const auto& p : params_) best[p.name] = p.values[p.values.size() / 2];
    double best_value = evaluate(best);

    for (std::size_t i = 0; i < random_samples; ++i) {
        Assignment a = random_assignment();
        const double v = evaluate(a);
        if (v > best_value) {
            best_value = v;
            best = std::move(a);
        }
    }

    // Phase 2: coordinate descent around the incumbent.
    for (std::size_t sweep = 0; sweep < sweeps; ++sweep) {
        bool improved = false;
        for (const auto& p : params_) {
            for (const std::int64_t candidate : p.values) {
                if (candidate == best[p.name]) continue;
                Assignment a = best;
                a[p.name] = candidate;
                const double v = evaluate(a);
                if (v > best_value) {
                    best_value = v;
                    best = std::move(a);
                    improved = true;
                }
            }
        }
        if (!improved) break;
    }
    return Sample{best, best_value};
}

}  // namespace hep::autotune

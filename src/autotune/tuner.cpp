#include "autotune/tuner.hpp"

#include <cassert>
#include <chrono>
#include <fstream>

namespace hep::autotune {

namespace {
std::string memo_key(const Assignment& a) {
    std::string key;
    for (const auto& [name, value] : a) {
        key += name;
        key += '=';
        key += std::to_string(value);
        key += ';';
    }
    return key;
}
}  // namespace

json::Value assignment_json(const Assignment& a) {
    json::Value v = json::Value::make_object();
    for (const auto& [name, value] : a) v[name] = value;
    return v;
}

json::Value Sample::to_json() const {
    json::Value v = json::Value::make_object();
    v["assignment"] = assignment_json(assignment);
    v["objective"] = objective;
    v["wall_s"] = wall_s;
    v["slo_pass"] = slo_pass;
    if (!meta.is_null()) v["meta"] = meta;
    return v;
}

Tuner::Tuner(std::vector<Param> params, std::function<double(const Assignment&)> objective,
             std::uint64_t seed)
    : Tuner(std::move(params),
            RichObjective([fn = std::move(objective)](const Assignment& a, Sample&) {
                return fn(a);
            }),
            seed) {}

Tuner::Tuner(std::vector<Param> params, RichObjective objective, std::uint64_t seed)
    : params_(std::move(params)), objective_(std::move(objective)), rng_(seed) {
    assert(!params_.empty());
    for ([[maybe_unused]] const auto& p : params_) {
        assert(!p.values.empty());
    }
}

double Tuner::evaluate(const Assignment& a) {
    const std::string key = memo_key(a);
    auto it = memo_.find(key);
    if (it != memo_.end()) return it->second;
    Sample sample;
    sample.assignment = a;
    const auto start = std::chrono::steady_clock::now();
    const double value = objective_(a, sample);
    sample.wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    sample.objective = value;
    memo_.emplace(key, value);
    history_.push_back(std::move(sample));
    return value;
}

Assignment Tuner::random_assignment() {
    Assignment a;
    for (const auto& p : params_) {
        a[p.name] = p.values[rng_.uniform(0, p.values.size() - 1)];
    }
    return a;
}

json::Value Tuner::trace_json() const {
    json::Value v = json::Value::make_object();
    v["evaluations"] = static_cast<std::uint64_t>(history_.size());
    double best = 0;
    std::size_t best_idx = 0;
    json::Value trace = json::Value::make_array();
    for (std::size_t i = 0; i < history_.size(); ++i) {
        if (i == 0 || history_[i].objective > best) {
            best = history_[i].objective;
            best_idx = i;
        }
        trace.push_back(history_[i].to_json());
    }
    v["trace"] = std::move(trace);
    if (!history_.empty()) {
        v["best"] = history_[best_idx].to_json();
        v["best_index"] = static_cast<std::uint64_t>(best_idx);
    }
    return v;
}

bool Tuner::dump_trace(const std::string& path) const {
    std::ofstream out(path);
    if (!out) return false;
    out << trace_json().dump(2) << '\n';
    return static_cast<bool>(out);
}

Sample Tuner::run(std::size_t random_samples, std::size_t sweeps) {
    // Phase 1: random exploration (always includes each param's middle value
    // as a sane anchor point).
    Assignment best;
    for (const auto& p : params_) best[p.name] = p.values[p.values.size() / 2];
    double best_value = evaluate(best);

    for (std::size_t i = 0; i < random_samples; ++i) {
        Assignment a = random_assignment();
        const double v = evaluate(a);
        if (v > best_value) {
            best_value = v;
            best = std::move(a);
        }
    }

    // Phase 2: coordinate descent around the incumbent.
    for (std::size_t sweep = 0; sweep < sweeps; ++sweep) {
        bool improved = false;
        for (const auto& p : params_) {
            for (const std::int64_t candidate : p.values) {
                if (candidate == best[p.name]) continue;
                Assignment a = best;
                a[p.name] = candidate;
                const double v = evaluate(a);
                if (v > best_value) {
                    best_value = v;
                    best = std::move(a);
                    improved = true;
                }
            }
        }
        if (!improved) break;
    }
    Sample result;
    result.assignment = best;
    result.objective = best_value;
    return result;
}

}  // namespace hep::autotune

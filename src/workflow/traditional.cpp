#include "workflow/traditional.hpp"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <thread>

#include "hepnos/exception.hpp"
#include "mpisim/comm.hpp"

namespace hep::workflow {

namespace {

/// Shared implementation: `fetch(i)` materializes file i's events.
WorkflowResult run_over_files(
    std::size_t num_files, const TraditionalOptions& options,
    const std::function<std::vector<nova::EventRecord>(std::size_t)>& fetch) {
    WorkflowResult result;
    result.workers.resize(options.num_workers);

    std::atomic<std::size_t> next_file{0};
    std::mutex result_mutex;
    const double t0 = mpisim::Comm::wtime();

    std::vector<std::thread> workers;
    workers.reserve(options.num_workers);
    for (std::size_t w = 0; w < options.num_workers; ++w) {
        workers.emplace_back([&, w] {
            nova::Selector selector(options.cuts);
            std::vector<std::uint64_t> local_ids;
            std::uint64_t local_events = 0, local_files = 0;
            const double start = mpisim::Comm::wtime();
            while (true) {
                // The paper's pipelining: ask for the next unprocessed file.
                const std::size_t i = next_file.fetch_add(1);
                if (i >= num_files) break;
                auto events = fetch(i);
                for (const auto& rec : events) {
                    auto ids = selector.selected_ids(rec);
                    local_ids.insert(local_ids.end(), ids.begin(), ids.end());
                    ++local_events;
                }
                ++local_files;
            }
            const double elapsed = mpisim::Comm::wtime() - start;
            std::lock_guard<std::mutex> lock(result_mutex);
            result.accepted_ids.insert(result.accepted_ids.end(), local_ids.begin(),
                                       local_ids.end());
            result.events_processed += local_events;
            result.slices_processed += selector.slices_examined();
            result.workers[w] = WorkerTiming{elapsed, local_files, selector.slices_examined()};
        });
    }
    for (auto& t : workers) t.join();
    result.wall_seconds = mpisim::Comm::wtime() - t0;
    std::sort(result.accepted_ids.begin(), result.accepted_ids.end());
    return result;
}

}  // namespace

WorkflowResult run_traditional(const std::vector<std::string>& files,
                               const TraditionalOptions& options) {
    return run_over_files(files.size(), options, [&](std::size_t i) {
        auto events = nova::Generator::read_htf_file(files[i]);
        if (!events.ok()) throw hepnos::Exception(events.status());
        return std::move(events.value());
    });
}

WorkflowResult run_traditional_generated(const nova::Generator& generator,
                                         const TraditionalOptions& options) {
    return run_over_files(
        static_cast<std::size_t>(generator.config().num_files), options,
        [&](std::size_t i) { return generator.make_file_events(i); });
}

}  // namespace hep::workflow

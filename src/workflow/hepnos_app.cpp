#include "workflow/hepnos_app.hpp"

#include <algorithm>
#include <mutex>

namespace hep::workflow {

WorkflowResult run_hepnos_selection(hepnos::DataStore store, const std::string& dataset_path,
                                    const HepnosAppOptions& options) {
    WorkflowResult result;
    result.workers.resize(options.num_ranks);
    std::mutex result_mutex;

    mpisim::run_ranks(static_cast<int>(options.num_ranks), [&](mpisim::Comm& comm) {
        hepnos::DataSet dataset = store[dataset_path];
        hepnos::ParallelEventProcessor pep(store, comm, options.pep);
        if (options.prefetch_products) {
            pep.prefetch<std::vector<nova::Slice>>(nova::kSliceLabel);
        }

        nova::Selector selector(options.cuts);
        std::vector<std::uint64_t> local_ids;

        // Optional write-back of derived products (batched, asynchronous).
        std::unique_ptr<hepnos::AsyncWriteBatch> writeback;
        if (options.store_results) {
            writeback = std::make_unique<hepnos::AsyncWriteBatch>(store.impl(), 1024);
        }

        auto stats = pep.process(dataset, [&](const hepnos::Event& ev,
                                              const hepnos::ProductCache& cache) {
            // Deserialize the NOvA classes for this event, prefetched when
            // possible, fetched on demand otherwise.
            std::vector<nova::Slice> slices;
            if (!cache.load(ev, nova::kSliceLabel, slices)) {
                if (!ev.load(nova::kSliceLabel, slices)) return;  // event w/o product
            }
            nova::EventRecord rec;
            rec.run = ev.run_number();
            rec.subrun = ev.subrun_number();
            rec.event = ev.number();
            rec.slices = std::move(slices);
            auto ids = selector.selected_ids(rec);
            if (writeback && !ids.empty()) {
                std::vector<std::uint32_t> indices;
                indices.reserve(ids.size());
                for (auto id : ids) indices.push_back(static_cast<std::uint32_t>(id & 0xFF));
                ev.store(*writeback, kSelectedLabel, indices);
            }
            local_ids.insert(local_ids.end(), ids.begin(), ids.end());
        });
        if (writeback) {
            writeback->flush();
            writeback->wait();
        }

        // MPI reduction of the accepted IDs to rank 0 (paper §IV-B).
        auto merged = comm.reduce_concat(local_ids, 0);
        {
            std::lock_guard<std::mutex> lock(result_mutex);
            result.workers[static_cast<std::size_t>(comm.rank())] =
                WorkerTiming{stats.processing_time, 0, selector.slices_examined()};
            result.slices_processed += selector.slices_examined();
            if (comm.rank() == 0) {
                result.accepted_ids = std::move(merged);
                result.events_processed = stats.total_events;
                result.wall_seconds = stats.total_time;
            }
        }
    });

    std::sort(result.accepted_ids.begin(), result.accepted_ids.end());
    return result;
}

}  // namespace hep::workflow

#include "workflow/hepnos_app.hpp"

#include <algorithm>
#include <chrono>
#include <mutex>

#include "hepnos/query.hpp"
#include "query/evaluator.hpp"

namespace hep::workflow {

namespace {

/// The pushdown variant of the selection: the cuts travel to the servers as
/// a FilterProgram; only accepted (event, slice-index) pairs travel back.
/// Each rank queries its offset/stride share of the product databases — the
/// same granularity the PEP distributes whole databases to ranks.
WorkflowResult run_pushdown_selection(hepnos::DataStore store, const std::string& dataset_path,
                                      const HepnosAppOptions& options) {
    WorkflowResult result;
    result.workers.resize(options.num_ranks);
    std::mutex result_mutex;
    const auto wall_start = std::chrono::steady_clock::now();

    mpisim::run_ranks(static_cast<int>(options.num_ranks), [&](mpisim::Comm& comm) {
        hepnos::DataSet dataset = store[dataset_path];

        auto spec = query::nova_selection_spec(
            options.cuts,
            std::string(hepnos::product_type_name<std::vector<nova::Slice>>()));
        if (options.store_results) {
            spec.write_selected = true;
            spec.selected_label = kSelectedLabel;
            spec.selected_type =
                std::string(hepnos::product_type_name<std::vector<std::uint32_t>>());
        }
        query::QueryOptions qopts;
        qopts.page_entries = options.pushdown_page_entries;
        qopts.scan_chunk = options.pushdown_scan_chunk;
        qopts.columnar = options.columnar;

        const auto start = std::chrono::steady_clock::now();
        auto res = hepnos::run_query(store, dataset, spec,
                                     static_cast<std::size_t>(comm.rank()),
                                     static_cast<std::size_t>(comm.size()), qopts);
        if (!res.ok()) throw hepnos::Exception(res.status());
        const double seconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

        std::vector<std::uint64_t> local_ids;
        for (const auto& entry : res->entries()) {
            for (std::uint32_t row : entry.rows) {
                local_ids.push_back(
                    nova::SliceId{entry.run, entry.subrun, entry.event, row}.packed());
            }
        }

        auto merged = comm.reduce_concat(local_ids, 0);
        {
            std::lock_guard<std::mutex> lock(result_mutex);
            const auto& stats = res->stats();
            result.workers[static_cast<std::size_t>(comm.rank())] =
                WorkerTiming{seconds, 0, stats.rows_examined};
            result.slices_processed += stats.rows_examined;
            result.events_processed += stats.events_examined;
            if (comm.rank() == 0) result.accepted_ids = std::move(merged);
        }
    });

    result.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();
    std::sort(result.accepted_ids.begin(), result.accepted_ids.end());
    return result;
}

}  // namespace

WorkflowResult run_hepnos_selection(hepnos::DataStore store, const std::string& dataset_path,
                                    const HepnosAppOptions& options) {
    if (options.pushdown) return run_pushdown_selection(store, dataset_path, options);

    WorkflowResult result;
    result.workers.resize(options.num_ranks);
    std::mutex result_mutex;

    mpisim::run_ranks(static_cast<int>(options.num_ranks), [&](mpisim::Comm& comm) {
        hepnos::DataSet dataset = store[dataset_path];
        hepnos::ParallelEventProcessor pep(store, comm, options.pep);
        if (options.prefetch_products) {
            pep.prefetch<std::vector<nova::Slice>>(nova::kSliceLabel);
        }

        nova::Selector selector(options.cuts);
        std::vector<std::uint64_t> local_ids;

        // Optional write-back of derived products (batched, asynchronous).
        std::unique_ptr<hepnos::AsyncWriteBatch> writeback;
        if (options.store_results) {
            writeback = std::make_unique<hepnos::AsyncWriteBatch>(store.impl(), 1024);
        }

        auto stats = pep.process(dataset, [&](const hepnos::Event& ev,
                                              const hepnos::ProductCache& cache) {
            // Deserialize the NOvA classes for this event, prefetched when
            // possible, fetched on demand otherwise.
            std::vector<nova::Slice> slices;
            if (!cache.load(ev, nova::kSliceLabel, slices)) {
                if (!ev.load(nova::kSliceLabel, slices)) return;  // event w/o product
            }
            nova::EventRecord rec;
            rec.run = ev.run_number();
            rec.subrun = ev.subrun_number();
            rec.event = ev.number();
            rec.slices = std::move(slices);
            auto ids = selector.selected_ids(rec);
            if (writeback && !ids.empty()) {
                std::vector<std::uint32_t> indices;
                indices.reserve(ids.size());
                for (auto id : ids) indices.push_back(static_cast<std::uint32_t>(id & 0xFF));
                ev.store(*writeback, kSelectedLabel, indices);
            }
            local_ids.insert(local_ids.end(), ids.begin(), ids.end());
        });
        if (writeback) {
            writeback->flush();
            writeback->wait();
        }

        // MPI reduction of the accepted IDs to rank 0 (paper §IV-B).
        auto merged = comm.reduce_concat(local_ids, 0);
        {
            std::lock_guard<std::mutex> lock(result_mutex);
            result.workers[static_cast<std::size_t>(comm.rank())] =
                WorkerTiming{stats.processing_time, 0, selector.slices_examined()};
            result.slices_processed += selector.slices_examined();
            if (comm.rank() == 0) {
                result.accepted_ids = std::move(merged);
                result.events_processed = stats.total_events;
                result.wall_seconds = stats.total_time;
            }
        }
    });

    std::sort(result.accepted_ids.begin(), result.accepted_ids.end());
    return result;
}

}  // namespace hep::workflow

// The HEPnOS-based candidate-selection application (paper §IV-B).
//
// "Each rank uses a ParallelEventProcessor to manage the work of fetching
//  events from the HEPnOS service, and to pass the data to an event
//  processing routine encapsulated by a C++ lambda expression. In this
//  routine, the data are deserialized to recover the NOvA classes [...] The
//  lambda expression then returns the IDs of the selected slices. An MPI
//  reduction is then used to send those slice IDs to rank 0."
#pragma once

#include <string>

#include "hepnos/hepnos.hpp"
#include "mpisim/comm.hpp"
#include "nova/selection.hpp"
#include "workflow/traditional.hpp"  // WorkflowResult

namespace hep::workflow {

struct HepnosAppOptions {
    std::size_t num_ranks = 4;
    nova::SelectionCuts cuts;
    hepnos::ParallelEventProcessorOptions pep;
    bool prefetch_products = true;  // use the PEP product-prefetch path
    /// Write the selection outcome back as a per-event product (paper §II-A:
    /// applications "load products from HEPnOS ..., performing some analysis,
    /// and writing new products back into HEPnOS"). Label: "selected".
    /// Type: std::vector<std::uint32_t> of accepted slice indices; only
    /// events with at least one accepted slice get the product.
    bool store_results = false;

    /// Server-side selection pushdown (src/query): instead of the PEP
    /// pulling every slices product to the client, each rank compiles the
    /// cuts into a FilterProgram, ships it to the servers, and receives only
    /// the accepted slice IDs. Produces bit-identical accepted-ID sets to
    /// the PEP path; store_results is honored via server-side write-back.
    /// Requires a service deployed with the Bedrock "query" knob.
    bool pushdown = false;
    std::uint64_t pushdown_page_entries = 512;  // accepted entries per page
    std::uint64_t pushdown_scan_chunk = 2048;   // keys per backend scan chunk

    /// Ask for the columnar (vectorized, column-pruned) scan explicitly.
    /// run_query already turns this on when the connection advertises the
    /// "columnar" knob; against older services the client falls back to the
    /// blob scan, so results are identical either way.
    bool columnar = false;
};

/// The label the write-back path stores accepted slice indices under.
inline constexpr const char* kSelectedLabel = "selected";

/// Run the selection over an already-ingested dataset. Collective over a
/// fresh communicator of options.num_ranks ranks; the aggregated result
/// (with IDs reduced to rank 0, then sorted) is returned.
WorkflowResult run_hepnos_selection(hepnos::DataStore store, const std::string& dataset_path,
                                    const HepnosAppOptions& options);

}  // namespace hep::workflow

// The traditional file-based candidate-selection workflow (paper §IV-A).
//
// The paper automates what a physicist does: a text file lists the input
// files; work is decomposed into blocks of files; independent processes each
// run the CAFAna selection sequentially over their block and append accepted
// slice IDs to an output. "No two processes work on the same file"; when a
// process finishes a file it requests the next one (pipelining) — which we
// model faithfully with a shared work queue of files consumed by worker
// threads standing in for grid processes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nova/generator.hpp"
#include "nova/selection.hpp"

namespace hep::workflow {

struct TraditionalOptions {
    std::size_t num_workers = 4;  // concurrent "grid processes"
    nova::SelectionCuts cuts;
};

struct WorkerTiming {
    double seconds = 0;            // busy time of this worker
    std::uint64_t files = 0;       // files it processed
    std::uint64_t slices = 0;      // slices it examined
};

struct WorkflowResult {
    std::vector<std::uint64_t> accepted_ids;  // sorted packed slice IDs
    std::uint64_t events_processed = 0;
    std::uint64_t slices_processed = 0;
    double wall_seconds = 0;  // first start to last end (paper's metric)
    std::vector<WorkerTiming> workers;

    [[nodiscard]] double throughput_slices_per_s() const {
        return wall_seconds > 0 ? static_cast<double>(slices_processed) / wall_seconds : 0;
    }
};

/// Run the selection over HTF files on disk.
WorkflowResult run_traditional(const std::vector<std::string>& files,
                               const TraditionalOptions& options);

/// Run the selection over generated in-memory files (no disk I/O) — used by
/// tests to compare against the HEPnOS workflow on identical data.
WorkflowResult run_traditional_generated(const nova::Generator& generator,
                                         const TraditionalOptions& options);

}  // namespace hep::workflow

// TcpFabric's frame layout, factored out so tests can pin traffic accounting
// (Message::wire_size) against the bytes the fabric actually writes.
//
// Every frame is
//
//     [u32 total][u8 kind][serialized header][raw tail]
//
// where `total` counts header + tail. The tail is the message payload (or
// bulk data) written as-is: the sender gathers the BufferChain segments
// straight onto the socket and the receiver slices views out of the frame
// buffer, so the body is never re-serialized or re-copied on either side.
#pragma once

#include <cstdint>
#include <string>

#include "rpc/message.hpp"
#include "serial/archive.hpp"

namespace hep::rpc::wire {

constexpr std::uint8_t kFrameMessage = 1;
constexpr std::uint8_t kFrameBulkReq = 2;
constexpr std::uint8_t kFrameBulkResp = 3;

/// Everything of a Message except the payload bytes, which follow as the
/// raw frame tail (payload_len of them).
struct MessageHeader {
    std::uint8_t type = 0;
    std::uint64_t seq = 0;
    std::uint32_t rpc = 0;
    std::uint16_t provider = 0;
    std::string origin;
    std::uint8_t status_code = 0;
    std::string status_message;
    std::string to_name;  // bare endpoint name on the receiving fabric
    std::string qos_tenant;
    std::uint8_t qos_class = 0xFF;
    std::uint32_t qos_budget_ms = 0;
    std::uint64_t payload_len = 0;

    template <typename A>
    void serialize(A& ar, unsigned) {
        ar & type & seq & rpc & provider & origin & status_code & status_message & to_name &
            qos_tenant & qos_class & qos_budget_ms & payload_len;
    }
};

inline MessageHeader make_header(const Message& msg, std::string to_name) {
    MessageHeader h;
    h.type = static_cast<std::uint8_t>(msg.type);
    h.seq = msg.seq;
    h.rpc = msg.rpc;
    h.provider = msg.provider;
    h.origin = msg.origin;
    h.status_code = static_cast<std::uint8_t>(msg.status.code());
    h.status_message = msg.status.message();
    h.to_name = std::move(to_name);
    h.qos_tenant = msg.qos_tenant;
    h.qos_class = msg.qos_class;
    h.qos_budget_ms = msg.qos_budget_ms;
    h.payload_len = msg.payload.size();
    return h;
}

/// Total bytes on the socket for `msg` framed toward `to_name` — the ground
/// truth Message::wire_size() must match.
inline std::size_t framed_size(const Message& msg, std::string_view to_name) {
    return 4 + 1 + serial::serialized_size(make_header(msg, std::string(to_name))) +
           msg.payload.size();
}

/// Bulk request header; for writes the data follows as the raw tail.
struct BulkReqHeader {
    std::uint64_t bulk_seq = 0;
    std::string endpoint_name;  // bare name of the region owner
    std::uint64_t region_id = 0;
    std::uint64_t offset = 0;
    std::uint64_t len = 0;
    std::uint8_t write = 0;

    template <typename A>
    void serialize(A& ar, unsigned) {
        ar & bulk_seq & endpoint_name & region_id & offset & len & write;
    }
};

/// Bulk response header; for reads the data follows as the raw tail.
struct BulkRespHeader {
    std::uint64_t bulk_seq = 0;
    std::uint8_t status_code = 0;
    std::string status_message;
    std::uint64_t data_len = 0;

    template <typename A>
    void serialize(A& ar, unsigned) {
        ar & bulk_seq & status_code & status_message & data_len;
    }
};

}  // namespace hep::rpc::wire

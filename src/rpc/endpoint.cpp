#include "rpc/endpoint.hpp"

#include "rpc/network.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <limits>
#include <vector>

#include "common/hash.hpp"
#include "common/logging.hpp"

namespace hep::rpc {

RpcId rpc_id_of(std::string_view name) noexcept {
    return static_cast<RpcId>(fnv1a64(name) & 0xFFFFFFFFu);
}

namespace {
std::uint64_t handler_key(RpcId rpc, ProviderId provider) noexcept {
    return (static_cast<std::uint64_t>(rpc) << 16) | provider;
}
}  // namespace

// ----------------------------------------------------------- RequestContext

void RequestContext::respond(hep::BufferChain payload) {
    assert(!responded_ && "respond() called twice");
    responded_ = true;
    // The handler's frame is about to unwind while the response sits in the
    // target's queue: every segment must own its bytes.
    payload.ensure_owned();
    hep::count_chain_sent(payload.depth());
    Message resp;
    resp.type = MessageType::kResponse;
    resp.seq = msg_.seq;
    resp.origin = endpoint_.address();
    resp.payload = std::move(payload);
    Status st = endpoint_.network().deliver(msg_.origin, std::move(resp));
    if (!st.ok()) {
        HEP_LOG_DEBUG("response to %s undeliverable: %s", msg_.origin.c_str(),
                      st.to_string().c_str());
    }
}

void RequestContext::respond(std::string payload) {
    hep::BufferChain chain;
    if (!payload.empty()) chain.append(hep::Buffer::adopt(std::move(payload)));
    respond(std::move(chain));
}

void RequestContext::respond_error(Status status) {
    assert(!responded_ && "respond() called twice");
    responded_ = true;
    Message resp;
    resp.type = MessageType::kResponse;
    resp.seq = msg_.seq;
    resp.origin = endpoint_.address();
    resp.status = std::move(status);
    (void)endpoint_.network().deliver(msg_.origin, std::move(resp));
}

Status RequestContext::bulk_get(const BulkRef& remote, std::uint64_t remote_offset, void* dst,
                                std::uint64_t len) {
    return endpoint_.bulk_get(remote, remote_offset, dst, len);
}

Status RequestContext::bulk_put(const void* src, const BulkRef& remote,
                                std::uint64_t remote_offset, std::uint64_t len) {
    return endpoint_.bulk_put(src, remote, remote_offset, len);
}

Status RequestContext::bulk_put_chain(const hep::BufferChain& src, const BulkRef& remote,
                                      std::uint64_t remote_offset) {
    return endpoint_.bulk_put_chain(src, remote, remote_offset);
}

// ------------------------------------------------------------------ Endpoint

Endpoint::Endpoint(Fabric& fabric, std::string address)
    : fabric_(fabric), address_(std::move(address)) {
    progress_thread_ = std::thread([this] { progress_loop(); });
}

Endpoint::~Endpoint() { shutdown(); }

void Endpoint::shutdown() {
    bool expected = false;
    if (!shut_down_.compare_exchange_strong(expected, true)) return;
    stopped_.store(true, std::memory_order_release);
    queue_cv_.notify_all();
    if (progress_thread_.joinable()) progress_thread_.join();
    fabric_.remove_endpoint(address_);
    // Fail any calls still in flight.
    std::unordered_map<std::uint64_t, PendingCall> pending;
    {
        std::lock_guard<std::mutex> lock(pending_mutex_);
        pending.swap(pending_);
    }
    for (auto& [seq, call] : pending) {
        call.fail(Status::Cancelled("endpoint shut down with call in flight"));
    }
}

void Endpoint::register_handler(std::string_view rpc_name, ProviderId provider,
                                Handler handler) {
    std::lock_guard<std::mutex> lock(handlers_mutex_);
    handlers_[handler_key(rpc_id_of(rpc_name), provider)] = std::move(handler);
}

void Endpoint::set_executor(Executor exec) { executor_ = std::move(exec); }

void Endpoint::set_admission(AdmissionHook hook) { admission_ = std::move(hook); }

void Endpoint::enqueue(Message msg) {
    msg.arrival = std::chrono::steady_clock::now();
    {
        std::lock_guard<std::mutex> lock(queue_mutex_);
        queue_.push_back(std::move(msg));
    }
    queue_cv_.notify_one();
}

void Endpoint::progress_loop() {
    while (true) {
        // Deadline expiry rides the progress loop: between messages we sleep
        // only until the nearest armed deadline (Mercury's trigger/timeout).
        const auto nearest = expire_deadlines();
        Message msg;
        {
            std::unique_lock<std::mutex> lock(queue_mutex_);
            // Single (non-predicated) wait: any wake — message, shutdown,
            // spurious, or a new deadline armed (deadline_dirty_) — loops back
            // through expire_deadlines() so the sleep re-arms correctly.
            if (queue_.empty() && !stopped_.load() && !deadline_dirty_) {
                if (nearest == std::chrono::steady_clock::time_point::max()) {
                    queue_cv_.wait(lock);
                } else {
                    queue_cv_.wait_until(lock, nearest);
                }
            }
            deadline_dirty_ = false;
            if (queue_.empty()) {
                if (stopped_.load()) return;
                continue;
            }
            msg = std::move(queue_.front());
            queue_.pop_front();
        }
        if (msg.type == MessageType::kRequest) {
            dispatch_request(std::move(msg));
        } else {
            complete_response(std::move(msg));
        }
    }
}

void Endpoint::dispatch_request(Message msg) {
    Handler handler;
    {
        std::lock_guard<std::mutex> lock(handlers_mutex_);
        auto it = handlers_.find(handler_key(msg.rpc, msg.provider));
        if (it == handlers_.end()) {
            // Wildcard fallback on provider 0.
            it = handlers_.find(handler_key(msg.rpc, 0));
        }
        if (it != handlers_.end()) handler = it->second;
    }
    if (!handler) {
        RequestContext ctx(*this, std::move(msg));
        ctx.respond_error(Status::Unimplemented("no handler for rpc on " + address_));
        return;
    }
    // Admission gate: runs after handler lookup (an unknown rpc is not an
    // admission decision) and before any handler resources are committed.
    if (admission_) {
        Status verdict = admission_(msg);
        if (!verdict.ok()) {
            RequestContext ctx(*this, std::move(msg));
            ctx.respond_error(std::move(verdict));
            return;
        }
    }
    auto self = shared_from_this();
    auto work = [self, handler = std::move(handler), msg = std::move(msg)]() mutable {
        RequestContext ctx(*self, std::move(msg));
        try {
            handler(ctx);
        } catch (const std::exception& e) {
            HEP_LOG_ERROR("handler threw on %s: %s", self->address_.c_str(), e.what());
            // The context may or may not have responded; if not, the caller
            // would hang, so attempt a best-effort error response.
        }
    };
    if (executor_) {
        executor_(std::move(work));
    } else {
        work();
    }
}

void Endpoint::complete_response(Message msg) {
    PendingCall call;
    {
        std::lock_guard<std::mutex> lock(pending_mutex_);
        auto it = pending_.find(msg.seq);
        if (it == pending_.end()) return;  // late/duplicate/expired response
        call = std::move(it->second);
        pending_.erase(it);
    }
    if (!msg.status.ok()) {
        call.fail(std::move(msg.status));
    } else if (call.chain_eventual) {
        call.chain_eventual->set(std::move(msg.payload));
    } else {
        // String shim: buy back contiguity here, once (zero-copy when the
        // payload is a single whole-buffer segment).
        call.string_eventual->set(std::move(msg.payload).into_string());
    }
}

std::chrono::steady_clock::time_point Endpoint::expire_deadlines() {
    const auto now = std::chrono::steady_clock::now();
    auto nearest = std::chrono::steady_clock::time_point::max();
    std::vector<PendingCall> expired;
    {
        std::lock_guard<std::mutex> lock(pending_mutex_);
        for (auto it = pending_.begin(); it != pending_.end();) {
            if (it->second.deadline <= now) {
                expired.push_back(std::move(it->second));
                it = pending_.erase(it);
            } else {
                nearest = std::min(nearest, it->second.deadline);
                ++it;
            }
        }
    }
    for (auto& call : expired) {
        const std::string describe = call.describe;
        call.fail(Status::DeadlineExceeded(describe + " exceeded its deadline"));
    }
    return nearest;
}

std::uint64_t Endpoint::send_request(const std::string& to, std::string_view rpc_name,
                                     ProviderId provider, hep::BufferChain payload,
                                     std::chrono::milliseconds deadline, const qos::QosTag& tag,
                                     PendingCall call) {
    if (deadline.count() == 0) deadline = default_deadline();
    // The caller may return (deadline expiry, shutdown) while the request
    // still sits in the target's queue: the payload must own its bytes.
    payload.ensure_owned();
    hep::count_chain_sent(payload.depth());
    Message req;
    req.type = MessageType::kRequest;
    req.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
    req.rpc = rpc_id_of(rpc_name);
    req.provider = provider;
    req.origin = address_;
    req.payload = std::move(payload);
    // QoS stamp: explicit tag wins, else the endpoint-wide default. The
    // armed deadline doubles as the propagated budget, so the server can see
    // how much time the caller is still willing to wait.
    if (tag.set() || !tag.tenant.empty()) {
        req.qos_tenant = tag.tenant;
        req.qos_class = tag.cls;
    } else {
        qos::QosTag def = default_qos();
        req.qos_tenant = std::move(def.tenant);
        req.qos_class = def.cls;
    }
    if (deadline.count() > 0) {
        req.qos_budget_ms = static_cast<std::uint32_t>(std::min<std::int64_t>(
            deadline.count(), std::numeric_limits<std::uint32_t>::max()));
    }
    {
        std::lock_guard<std::mutex> lock(pending_mutex_);
        if (deadline.count() > 0) {
            call.deadline = std::chrono::steady_clock::now() + deadline;
            call.describe = "rpc '" + std::string(rpc_name) + "' to " + to;
        } else {
            call.deadline = std::chrono::steady_clock::time_point::max();
        }
        pending_.emplace(req.seq, std::move(call));
    }
    const std::uint64_t seq = req.seq;
    Status st = fabric_.deliver(to, std::move(req));
    if (!st.ok()) {
        PendingCall failed;
        {
            std::lock_guard<std::mutex> lock(pending_mutex_);
            auto it = pending_.find(seq);
            if (it == pending_.end()) return seq;
            failed = std::move(it->second);
            pending_.erase(it);
        }
        failed.fail(std::move(st));
        return seq;
    }
    // Wake the progress loop so it re-arms its sleep against the (possibly
    // nearer) new deadline.
    if (deadline.count() > 0) {
        {
            std::lock_guard<std::mutex> lock(queue_mutex_);
            deadline_dirty_ = true;
        }
        queue_cv_.notify_one();
    }
    return seq;
}

std::shared_ptr<abt::Eventual<Result<hep::BufferChain>>> Endpoint::call_async_chain(
    const std::string& to, std::string_view rpc_name, ProviderId provider,
    hep::BufferChain payload, std::chrono::milliseconds deadline, const qos::QosTag& tag) {
    auto ev = std::make_shared<abt::Eventual<Result<hep::BufferChain>>>();
    PendingCall call;
    call.chain_eventual = ev;
    send_request(to, rpc_name, provider, std::move(payload), deadline, tag, std::move(call));
    return ev;
}

std::shared_ptr<abt::Eventual<Result<std::string>>> Endpoint::call_async(
    const std::string& to, std::string_view rpc_name, ProviderId provider, std::string payload,
    std::chrono::milliseconds deadline, const qos::QosTag& tag) {
    auto ev = std::make_shared<abt::Eventual<Result<std::string>>>();
    hep::BufferChain chain;
    if (!payload.empty()) chain.append(hep::Buffer::adopt(std::move(payload)));
    PendingCall call;
    call.string_eventual = ev;
    send_request(to, rpc_name, provider, std::move(chain), deadline, tag, std::move(call));
    return ev;
}

Result<hep::BufferChain> Endpoint::call_chain(const std::string& to, std::string_view rpc_name,
                                              ProviderId provider, hep::BufferChain payload,
                                              std::chrono::milliseconds deadline,
                                              const qos::QosTag& tag) {
    auto ev = call_async_chain(to, rpc_name, provider, std::move(payload), deadline, tag);
    return ev->wait();
}

Result<std::string> Endpoint::call(const std::string& to, std::string_view rpc_name,
                                   ProviderId provider, std::string payload,
                                   std::chrono::milliseconds deadline, const qos::QosTag& tag) {
    auto ev = call_async(to, rpc_name, provider, std::move(payload), deadline, tag);
    return ev->wait();
}

BulkRef Endpoint::expose(void* data, std::uint64_t size) {
    const std::uint64_t id = next_bulk_id_.fetch_add(1, std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> lock(bulk_mutex_);
        Region region;
        region.data = data;
        region.size = size;
        regions_[id] = std::move(region);
    }
    return BulkRef{address_, id, size};
}

BulkRef Endpoint::expose(hep::BufferChain chain) {
    chain.ensure_owned();  // the region pins the bytes until unexpose()
    const std::uint64_t size = chain.size();
    const std::uint64_t id = next_bulk_id_.fetch_add(1, std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> lock(bulk_mutex_);
        Region region;
        region.size = size;
        region.chain = std::move(chain);
        regions_[id] = std::move(region);
    }
    return BulkRef{address_, id, size};
}

void Endpoint::unexpose(const BulkRef& ref) {
    std::lock_guard<std::mutex> lock(bulk_mutex_);
    regions_.erase(ref.id);
}

Status Endpoint::access_region(std::uint64_t region_id, std::uint64_t offset,
                               std::uint64_t len, bool write, void* local_dst,
                               const void* local_src) {
    std::lock_guard<std::mutex> lock(bulk_mutex_);
    auto it = regions_.find(region_id);
    if (it == regions_.end()) {
        return Status::NotFound("bulk region " + std::to_string(region_id) + " not exposed");
    }
    const Region& region = it->second;
    if (offset + len > region.size) {
        return Status::OutOfRange("bulk access beyond exposed region");
    }
    if (region.data == nullptr) {
        // Chain-backed region: read-only, gathered from the segments.
        if (write) {
            return Status::InvalidArgument("bulk write into a read-only chain region");
        }
        auto* dst = static_cast<char*>(local_dst);
        for (const auto& seg : region.chain.segments()) {
            if (len == 0) break;
            if (offset >= seg.size()) {
                offset -= seg.size();
                continue;
            }
            const std::uint64_t take = std::min<std::uint64_t>(len, seg.size() - offset);
            std::memcpy(dst, seg.data() + offset, take);
            dst += take;
            offset = 0;
            len -= take;
        }
        return Status::OK();
    }
    if (write) {
        std::memcpy(static_cast<char*>(region.data) + offset, local_src, len);
    } else {
        std::memcpy(local_dst, static_cast<const char*>(region.data) + offset, len);
    }
    return Status::OK();
}

Status Endpoint::bulk_get(const BulkRef& remote, std::uint64_t remote_offset, void* dst,
                          std::uint64_t len) {
    return fabric_.bulk_access(remote, remote_offset, len, /*write=*/false, dst, nullptr);
}

Status Endpoint::bulk_put(const void* src, const BulkRef& remote, std::uint64_t remote_offset,
                          std::uint64_t len) {
    return fabric_.bulk_access(remote, remote_offset, len, /*write=*/true, nullptr, src);
}

Status Endpoint::bulk_put_chain(const hep::BufferChain& src, const BulkRef& remote,
                                std::uint64_t remote_offset) {
    return fabric_.bulk_access_chain(remote, remote_offset, src);
}

}  // namespace hep::rpc

// Endpoint: one communication party (a simulated "process") on the fabric.
//
// Provides the Mercury surface HEPnOS needs:
//  - register RPC handlers keyed by (rpc id, provider id)   [HG_Register]
//  - synchronous call() that blocks the calling ULT/thread  [margo_forward]
//  - expose()/bulk_get()/bulk_put() one-sided transfers      [HG_Bulk_*]
//
// Each endpoint runs a progress thread (like Mercury's progress loop) popping
// its receive queue. Request dispatch is pluggable: by default handlers run
// inline on the progress thread; Margo installs an executor that spawns a ULT
// in the provider's Argobots pool instead.
//
// Payloads are hep::BufferChain scatter-gather lists end to end. The
// std::string call()/respond() overloads are compatibility shims that adopt
// (never copy) the string into a single-segment chain; new code should build
// chains so product bytes travel by reference. Chains handed to call_*() or
// respond() are promoted to owned segments before they cross the scheduling
// boundary (the sender may unwind while the message sits in a queue).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>

#include "abt/sync.hpp"
#include "common/buffer.hpp"
#include "common/status.hpp"
#include "rpc/fabric.hpp"
#include "rpc/message.hpp"

namespace hep::rpc {

class Endpoint;

/// Handler-side view of one incoming request.
class RequestContext {
  public:
    RequestContext(Endpoint& ep, Message msg) : endpoint_(ep), msg_(std::move(msg)) {}

    /// The request body as a scatter-gather chain (zero-copy: segments are
    /// views into the receive buffer / the caller's product bytes).
    [[nodiscard]] const hep::BufferChain& payload_chain() const noexcept {
        return msg_.payload;
    }
    /// Contiguous request body. Compatibility shim: flattens the chain into a
    /// cached string on first use (a counted copy) — prefer payload_chain().
    [[nodiscard]] const std::string& payload() const {
        if (!flat_valid_) {
            flat_payload_ = msg_.payload.flatten();
            flat_valid_ = true;
        }
        return flat_payload_;
    }
    [[nodiscard]] const std::string& origin() const noexcept { return msg_.origin; }
    [[nodiscard]] ProviderId provider() const noexcept { return msg_.provider; }

    // QoS stamp the client attached (see qos/context.hpp) plus the local
    // arrival time; margo's dispatch wrapper feeds these to the admission
    // controller's ULT-side accounting.
    [[nodiscard]] const std::string& qos_tenant() const noexcept { return msg_.qos_tenant; }
    [[nodiscard]] std::uint8_t qos_class() const noexcept { return msg_.qos_class; }
    [[nodiscard]] std::uint32_t qos_budget_ms() const noexcept { return msg_.qos_budget_ms; }
    [[nodiscard]] std::chrono::steady_clock::time_point arrival() const noexcept {
        return msg_.arrival;
    }

    /// Send the response. Must be called exactly once per request.
    void respond(hep::BufferChain payload);
    /// Compatibility shim: adopts the string (no copy) into a chain.
    void respond(std::string payload);
    void respond_error(Status status);

    /// One-sided transfers against a client-exposed region (RDMA semantics).
    Status bulk_get(const BulkRef& remote, std::uint64_t remote_offset, void* dst,
                    std::uint64_t len);
    Status bulk_put(const void* src, const BulkRef& remote, std::uint64_t remote_offset,
                    std::uint64_t len);
    /// Gathered write of a chain into the remote region (no local flatten).
    Status bulk_put_chain(const hep::BufferChain& src, const BulkRef& remote,
                          std::uint64_t remote_offset);

  private:
    Endpoint& endpoint_;
    Message msg_;
    mutable std::string flat_payload_;  // lazy flatten cache for payload()
    mutable bool flat_valid_ = false;
    bool responded_ = false;
};

using Handler = std::function<void(RequestContext&)>;

/// Runs a dispatch closure; Margo overrides this to spawn ULTs.
using Executor = std::function<void(std::function<void()>)>;

/// Admission gate run on the progress thread at dispatch, after handler
/// lookup and before any handler work: a non-OK status becomes the error
/// response and the handler never runs (src/qos wires this up).
using AdmissionHook = std::function<Status(const Message&)>;

class Endpoint : public std::enable_shared_from_this<Endpoint> {
  public:
    ~Endpoint();
    Endpoint(const Endpoint&) = delete;
    Endpoint& operator=(const Endpoint&) = delete;

    [[nodiscard]] const std::string& address() const noexcept { return address_; }
    [[nodiscard]] Fabric& network() noexcept { return fabric_; }

    /// Register a handler for (rpc name, provider id). Handlers for provider
    /// id 0 act as wildcard fallbacks for that rpc name.
    void register_handler(std::string_view rpc_name, ProviderId provider, Handler handler);

    /// Install the dispatch executor (default: run inline on progress thread).
    void set_executor(Executor exec);

    /// Install the admission gate (default: admit everything).
    void set_admission(AdmissionHook hook);

    /// Synchronous RPC: send and block until the response arrives. Blocks a
    /// ULT cooperatively or an OS thread natively. `deadline` caps how long
    /// the caller waits for the response: on expiry the call completes with
    /// Status::DeadlineExceeded (a late response is dropped as a duplicate).
    /// A zero deadline falls back to the endpoint default; a zero default
    /// means "wait forever" (the seed behavior).
    /// Compatibility shim over call_chain(): adopts the payload, flattens the
    /// response. `tag` is the QoS stamp for the wire header; an unset tag
    /// falls back to the endpoint default (set_default_qos).
    Result<std::string> call(const std::string& to, std::string_view rpc_name,
                             ProviderId provider, std::string payload,
                             std::chrono::milliseconds deadline = std::chrono::milliseconds{0},
                             const qos::QosTag& tag = {});

    /// Synchronous RPC carrying scatter-gather payloads both ways (zero-copy
    /// fast path).
    Result<hep::BufferChain> call_chain(
        const std::string& to, std::string_view rpc_name, ProviderId provider,
        hep::BufferChain payload,
        std::chrono::milliseconds deadline = std::chrono::milliseconds{0},
        const qos::QosTag& tag = {});

    /// Asynchronous RPC: returns an eventual delivering payload-or-status.
    /// Compatibility shim: the response chain is flattened into a string.
    std::shared_ptr<abt::Eventual<Result<std::string>>> call_async(
        const std::string& to, std::string_view rpc_name, ProviderId provider,
        std::string payload, std::chrono::milliseconds deadline = std::chrono::milliseconds{0},
        const qos::QosTag& tag = {});

    /// Asynchronous chain-payload RPC (zero-copy fast path).
    std::shared_ptr<abt::Eventual<Result<hep::BufferChain>>> call_async_chain(
        const std::string& to, std::string_view rpc_name, ProviderId provider,
        hep::BufferChain payload,
        std::chrono::milliseconds deadline = std::chrono::milliseconds{0},
        const qos::QosTag& tag = {});

    /// Default per-RPC deadline applied when call()/call_async() is given a
    /// zero deadline. Zero (the default) disables deadline tracking.
    void set_default_deadline(std::chrono::milliseconds deadline) noexcept {
        default_deadline_ms_.store(deadline.count(), std::memory_order_relaxed);
    }
    [[nodiscard]] std::chrono::milliseconds default_deadline() const noexcept {
        return std::chrono::milliseconds{default_deadline_ms_.load(std::memory_order_relaxed)};
    }

    /// Connection-wide QoS stamp applied to calls issued with an unset tag
    /// (hepnos::DataStore sets this from its client policy).
    void set_default_qos(qos::QosTag tag) {
        std::lock_guard<std::mutex> lock(default_qos_mutex_);
        default_qos_ = std::move(tag);
    }
    [[nodiscard]] qos::QosTag default_qos() const {
        std::lock_guard<std::mutex> lock(default_qos_mutex_);
        return default_qos_;
    }

    // ---- bulk (one-sided) --------------------------------------------------
    /// Expose a local memory region; the returned ref can be shipped inside
    /// an RPC payload so the peer can bulk_get/bulk_put against it.
    BulkRef expose(void* data, std::uint64_t size);
    /// Expose a scatter-gather chain as one logical read-only region (peers
    /// bulk_get linear offsets; the segments are never flattened locally).
    /// The region keeps the chain's storage alive until unexpose().
    BulkRef expose(hep::BufferChain chain);
    /// Withdraw a region (refs become invalid).
    void unexpose(const BulkRef& ref);

    /// Local side of one-sided ops (also usable from client code).
    Status bulk_get(const BulkRef& remote, std::uint64_t remote_offset, void* dst,
                    std::uint64_t len);
    Status bulk_put(const void* src, const BulkRef& remote, std::uint64_t remote_offset,
                    std::uint64_t len);
    Status bulk_put_chain(const hep::BufferChain& src, const BulkRef& remote,
                          std::uint64_t remote_offset);

    /// Stop the progress loop and deregister from the fabric. Idempotent;
    /// also called by the destructor.
    void shutdown();

    [[nodiscard]] bool stopped() const noexcept { return stopped_.load(); }

    // ---- fabric-facing internals (fabrics live in other TUs) ---------------
    /// Construct an endpoint bound to `fabric`; fabrics call this from their
    /// create_endpoint() and register the result.
    static std::shared_ptr<Endpoint> make(Fabric& fabric, std::string address) {
        return std::shared_ptr<Endpoint>(new Endpoint(fabric, std::move(address)));
    }

    /// The owning fabric delivers incoming messages here (thread-safe).
    void enqueue(Message msg);

    /// Serve a one-sided access against a LOCALLY exposed region (fabrics
    /// call this on the owner side of a bulk transfer).
    Status access_region(std::uint64_t region_id, std::uint64_t offset, std::uint64_t len,
                         bool write, void* local_dst, const void* local_src);

  private:
    friend class RequestContext;

    Endpoint(Fabric& fabric, std::string address);

    void progress_loop();
    void dispatch_request(Message msg);
    void complete_response(Message msg);

    /// Fail every pending call whose deadline has passed; returns the nearest
    /// remaining deadline (time_point::max() when none is armed).
    std::chrono::steady_clock::time_point expire_deadlines();

    Fabric& fabric_;
    std::string address_;

    std::mutex handlers_mutex_;
    std::unordered_map<std::uint64_t, Handler> handlers_;  // key: rpc<<16|provider

    Executor executor_;
    AdmissionHook admission_;

    mutable std::mutex default_qos_mutex_;
    qos::QosTag default_qos_;

    // Receive queue + progress thread.
    std::mutex queue_mutex_;
    std::condition_variable queue_cv_;
    std::deque<Message> queue_;
    bool deadline_dirty_ = false;  // guarded by queue_mutex_: re-scan deadlines
    std::thread progress_thread_;
    std::atomic<bool> stopped_{false};
    std::atomic<bool> shut_down_{false};

    // Outstanding calls. Exactly one of the two eventuals is armed per call:
    // the chain one for call_*_chain() callers, the string one for the
    // compatibility shims (the response is flattened at completion).
    struct PendingCall {
        std::shared_ptr<abt::Eventual<Result<hep::BufferChain>>> chain_eventual;
        std::shared_ptr<abt::Eventual<Result<std::string>>> string_eventual;
        std::chrono::steady_clock::time_point deadline;  // time_point::max() = none
        std::string describe;                            // "rpc 'x' to addr" for errors

        void fail(Status st) {
            if (chain_eventual) chain_eventual->set(std::move(st));
            else string_eventual->set(std::move(st));
        }
    };
    std::mutex pending_mutex_;
    std::unordered_map<std::uint64_t, PendingCall> pending_;
    std::atomic<std::uint64_t> next_seq_{1};
    std::atomic<std::int64_t> default_deadline_ms_{0};

    std::uint64_t send_request(const std::string& to, std::string_view rpc_name,
                               ProviderId provider, hep::BufferChain payload,
                               std::chrono::milliseconds deadline, const qos::QosTag& tag,
                               PendingCall call);

    // Exposed bulk regions: either a contiguous caller-owned range (data) or
    // a read-only scatter-gather chain whose storage the region pins.
    std::mutex bulk_mutex_;
    struct Region {
        void* data = nullptr;
        std::uint64_t size = 0;
        hep::BufferChain chain;  // used when data == nullptr
    };
    std::unordered_map<std::uint64_t, Region> regions_;
    std::atomic<std::uint64_t> next_bulk_id_{1};
};

}  // namespace hep::rpc

// The loopback fabric: routes messages and bulk transfers between endpoints
// living in this process.
//
// This substitutes for Mercury's NA layer over libfabric/uGNI (paper §IV-C).
// All endpoints register here by address; delivery is an enqueue onto the
// target's receive queue; bulk is a direct memcpy. Failure injection (drops,
// partitions) lets tests exercise the error paths the paper hit on Theta
// (NIC injection-bandwidth failures forcing server restarts).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <unordered_map>

#include "common/rng.hpp"
#include "rpc/fabric.hpp"

namespace hep::rpc {

class Network final : public Fabric {
  public:
    Network() = default;
    ~Network() override;
    Network(const Network&) = delete;
    Network& operator=(const Network&) = delete;

    std::shared_ptr<Endpoint> create_endpoint(const std::string& address) override;

    /// Look up an endpoint (internal; used for delivery and bulk).
    std::shared_ptr<Endpoint> find(const std::string& address);

    /// Deliver `msg` to `to`. Fails synchronously when the target is unknown,
    /// partitioned away, or the drop-injection fires.
    Status deliver(const std::string& to, Message msg) override;

    Status bulk_access(const BulkRef& ref, std::uint64_t offset, std::uint64_t len, bool write,
                       void* local_dst, const void* local_src) override;

    /// Gathered write: one owner lookup, one stats bump, per-segment memcpys.
    Status bulk_access_chain(const BulkRef& ref, std::uint64_t offset,
                             const hep::BufferChain& src) override;

    void remove_endpoint(const std::string& address) override;

    // ---- failure injection ------------------------------------------------
    /// Probability in [0,1] that a REQUEST is dropped (deterministic RNG).
    /// Responses ride a reliable channel (see network.cpp).
    void set_drop_rate(double p, std::uint64_t seed = 42);
    /// Cut an endpoint off from the fabric (both directions) / restore it.
    void set_partitioned(const std::string& address, bool partitioned);

    [[nodiscard]] NetworkStats stats() const override;

  private:
    mutable std::mutex mutex_;
    std::unordered_map<std::string, std::shared_ptr<Endpoint>> endpoints_;
    std::set<std::string> partitioned_;
    double drop_rate_ = 0.0;
    Rng drop_rng_{42};
    NetworkStats stats_;
};

}  // namespace hep::rpc

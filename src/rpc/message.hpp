// Wire-level message types for the RPC substrate.
#pragma once

#include <cstdint>
#include <string>

#include "common/status.hpp"

namespace hep::rpc {

/// Identifies a provider instance within an endpoint (Mochi "provider id").
using ProviderId = std::uint16_t;

/// Identifies a registered RPC (hash of its name, Mercury-style).
using RpcId = std::uint32_t;

/// Derive the RpcId for a name. Stable across processes/builds.
RpcId rpc_id_of(std::string_view name) noexcept;

enum class MessageType : std::uint8_t { kRequest = 0, kResponse = 1 };

/// One message on the (simulated) wire.
struct Message {
    MessageType type = MessageType::kRequest;
    std::uint64_t seq = 0;        // request/response correlation
    RpcId rpc = 0;                // request only
    ProviderId provider = 0;      // request only
    std::string origin;           // address to send the response to
    std::string payload;          // serialized body
    Status status;                // response only: handler-level outcome

    [[nodiscard]] std::size_t wire_size() const noexcept {
        // Approximate header + payload; used for traffic accounting.
        return 64 + payload.size();
    }
};

/// A handle to a remotely exposed memory region (Mercury bulk handle).
/// Cheap to copy and embed into RPC payloads.
struct BulkRef {
    std::string endpoint;     // owning endpoint address
    std::uint64_t id = 0;     // registration id within that endpoint
    std::uint64_t size = 0;   // exposed bytes

    template <typename A>
    void serialize(A& ar, unsigned /*version*/) {
        ar & endpoint & id & size;
    }
};

}  // namespace hep::rpc

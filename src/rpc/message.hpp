// Wire-level message types for the RPC substrate.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

#include "common/buffer.hpp"
#include "common/status.hpp"
#include "qos/context.hpp"

namespace hep::rpc {

/// Identifies a provider instance within an endpoint (Mochi "provider id").
using ProviderId = std::uint16_t;

/// Identifies a registered RPC (hash of its name, Mercury-style).
using RpcId = std::uint32_t;

/// Derive the RpcId for a name. Stable across processes/builds.
RpcId rpc_id_of(std::string_view name) noexcept;

enum class MessageType : std::uint8_t { kRequest = 0, kResponse = 1 };

/// One message on the (simulated) wire. The payload is a scatter-gather
/// chain: endpoints and fabrics pass the same refcounted segments along
/// instead of copying the body at each layer boundary.
struct Message {
    MessageType type = MessageType::kRequest;
    std::uint64_t seq = 0;        // request/response correlation
    RpcId rpc = 0;                // request only
    ProviderId provider = 0;      // request only
    std::string origin;           // address to send the response to
    hep::BufferChain payload;     // serialized body (scatter-gather)
    Status status;                // response only: handler-level outcome

    // QoS stamp (request only): tenant + priority class the client attached,
    // and the remaining deadline budget in milliseconds (0 = no deadline).
    // Servers feed these to the admission controller (src/qos) before any
    // handler ULT is created.
    std::string qos_tenant;
    std::uint8_t qos_class = qos::kClassUnset;
    std::uint32_t qos_budget_ms = 0;

    // Local bookkeeping, never on the wire: when the receiving endpoint
    // dequeued the message from its fabric (stamped by Endpoint::enqueue).
    // Deadline budgets are measured against this.
    std::chrono::steady_clock::time_point arrival{};

    /// Exact number of bytes TcpFabric writes for this message: the
    /// [u32 len][u8 kind] frame preamble, the serialized wire::MessageHeader
    /// (fixed fields + u64-length-prefixed origin/status/to_name/tenant
    /// strings + u64 payload length), and the raw payload tail. `to_name_len`
    /// is the bare destination endpoint name carried in the header (0 on
    /// loopback, where no frame is built but the same accounting applies).
    /// Pinned against the actual framing by rpc_test/tcp_test.
    [[nodiscard]] std::size_t wire_size(std::size_t to_name_len = 0) const noexcept {
        constexpr std::size_t kPreamble = 4 + 1;                // len + kind
        constexpr std::size_t kFixed = 1 + 8 + 4 + 2 + 1 + 8;   // type..status_code+payload_len
        constexpr std::size_t kQosFixed = 1 + 4;                // qos class + budget
        constexpr std::size_t kStringPrefixes = 4 * 8;          // origin/status/to_name/tenant
        return kPreamble + kFixed + kQosFixed + kStringPrefixes + origin.size() +
               status.message().size() + to_name_len + qos_tenant.size() + payload.size();
    }
};

/// A handle to a remotely exposed memory region (Mercury bulk handle).
/// Cheap to copy and embed into RPC payloads.
struct BulkRef {
    std::string endpoint;     // owning endpoint address
    std::uint64_t id = 0;     // registration id within that endpoint
    std::uint64_t size = 0;   // exposed bytes

    template <typename A>
    void serialize(A& ar, unsigned /*version*/) {
        ar & endpoint & id & size;
    }
};

}  // namespace hep::rpc

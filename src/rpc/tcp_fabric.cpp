#include "rpc/tcp_fabric.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

#include "common/logging.hpp"
#include "rpc/endpoint.hpp"
#include "serial/archive.hpp"

namespace hep::rpc {

namespace {

constexpr std::uint8_t kFrameMessage = 1;
constexpr std::uint8_t kFrameBulkReq = 2;
constexpr std::uint8_t kFrameBulkResp = 3;

// Wire representations (serialized with the serial archives).
struct WireMessage {
    std::uint8_t type = 0;
    std::uint64_t seq = 0;
    std::uint32_t rpc = 0;
    std::uint16_t provider = 0;
    std::string origin;
    std::string payload;
    std::uint8_t status_code = 0;
    std::string status_message;
    std::string to_name;  // bare endpoint name on the receiving fabric

    template <typename A>
    void serialize(A& ar, unsigned) {
        ar & type & seq & rpc & provider & origin & payload & status_code & status_message &
            to_name;
    }
};

struct WireBulkReq {
    std::uint64_t bulk_seq = 0;
    std::string endpoint_name;  // bare name of the region owner
    std::uint64_t region_id = 0;
    std::uint64_t offset = 0;
    std::uint64_t len = 0;
    std::uint8_t write = 0;
    std::string data;  // payload for writes

    template <typename A>
    void serialize(A& ar, unsigned) {
        ar & bulk_seq & endpoint_name & region_id & offset & len & write & data;
    }
};

struct WireBulkResp {
    std::uint64_t bulk_seq = 0;
    std::uint8_t status_code = 0;
    std::string status_message;
    std::string data;  // payload for reads

    template <typename A>
    void serialize(A& ar, unsigned) {
        ar & bulk_seq & status_code & status_message & data;
    }
};

bool read_exact(int fd, void* buf, std::size_t n) {
    auto* p = static_cast<char*>(buf);
    while (n > 0) {
        const ssize_t got = ::recv(fd, p, n, 0);
        if (got <= 0) return false;
        p += got;
        n -= static_cast<std::size_t>(got);
    }
    return true;
}

bool write_exact(int fd, const void* buf, std::size_t n) {
    const auto* p = static_cast<const char*>(buf);
    while (n > 0) {
        const ssize_t sent = ::send(fd, p, n, MSG_NOSIGNAL);
        if (sent <= 0) return false;
        p += sent;
        n -= static_cast<std::size_t>(sent);
    }
    return true;
}

}  // namespace

TcpFabric::TcpFabric(const std::string& host, std::uint16_t port) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) throw std::runtime_error("TcpFabric: socket() failed");
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        ::close(listen_fd_);
        throw std::runtime_error("TcpFabric: bad host " + host);
    }
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
        ::listen(listen_fd_, 64) != 0) {
        ::close(listen_fd_);
        throw std::runtime_error("TcpFabric: cannot bind/listen on " + host + ":" +
                                 std::to_string(port));
    }
    socklen_t len = sizeof(addr);
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    hostport_ = host + ":" + std::to_string(ntohs(addr.sin_port));
    base_address_ = "tcp://" + hostport_;
    accept_thread_ = std::thread([this] { accept_loop(); });
}

TcpFabric::~TcpFabric() {
    stopping_.store(true);
    // Shut the local endpoints down first so their progress threads stop.
    std::map<std::string, std::shared_ptr<Endpoint>> locals;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        locals = locals_;
    }
    for (auto& [name, ep] : locals) ep->shutdown();

    if (listen_fd_ >= 0) {
        ::shutdown(listen_fd_, SHUT_RDWR);
        ::close(listen_fd_);
    }
    if (accept_thread_.joinable()) accept_thread_.join();

    std::vector<Connection*> conns;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (auto& [hp, c] : outbound_) conns.push_back(c.get());
        for (auto& c : inbound_) conns.push_back(c.get());
        for (auto& c : dead_) conns.push_back(c.get());
    }
    for (auto* c : conns) {
        std::lock_guard<std::mutex> lock(c->write_mutex);
        if (c->fd >= 0) ::shutdown(c->fd, SHUT_RDWR);
    }
    // Join readers outside the locks; reader_loop never takes mutex_ while
    // blocked in recv.
    for (auto* c : conns) {
        if (c->reader.joinable()) c->reader.join();
        std::lock_guard<std::mutex> lock(c->write_mutex);
        if (c->fd >= 0) ::close(c->fd);
        c->fd = -1;
    }
}

bool TcpFabric::parse_address(const std::string& address, std::string& hostport,
                              std::string& name) {
    constexpr std::string_view kScheme = "tcp://";
    if (address.compare(0, kScheme.size(), kScheme) != 0) return false;
    const auto slash = address.find('/', kScheme.size());
    if (slash == std::string::npos || slash + 1 >= address.size()) return false;
    hostport = address.substr(kScheme.size(), slash - kScheme.size());
    name = address.substr(slash + 1);
    return !hostport.empty();
}

std::shared_ptr<Endpoint> TcpFabric::create_endpoint(const std::string& name) {
    // Accept either a bare name or a full URL naming THIS fabric.
    std::string bare = name;
    std::string hostport, parsed_name;
    if (parse_address(name, hostport, parsed_name)) {
        if (hostport != hostport_) {
            HEP_LOG_ERROR("create_endpoint: %s is not on this fabric (%s)", name.c_str(),
                          hostport_.c_str());
            return nullptr;
        }
        bare = parsed_name;
    }
    auto ep = Endpoint::make(*this, base_address_ + "/" + bare);
    std::lock_guard<std::mutex> lock(mutex_);
    auto [it, inserted] = locals_.emplace(bare, ep);
    if (!inserted) {
        HEP_LOG_ERROR("duplicate endpoint name %s", bare.c_str());
        return nullptr;
    }
    return ep;
}

void TcpFabric::remove_endpoint(const std::string& address) {
    std::string hostport, name;
    if (!parse_address(address, hostport, name)) name = address;
    std::lock_guard<std::mutex> lock(mutex_);
    locals_.erase(name);
}

NetworkStats TcpFabric::stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

Status TcpFabric::send_frame(Connection* conn, std::uint8_t kind, const std::string& payload) {
    const auto len = static_cast<std::uint32_t>(payload.size());
    std::lock_guard<std::mutex> lock(conn->write_mutex);
    if (conn->fd < 0) return Status::Unavailable("connection closed");
    if (!write_exact(conn->fd, &len, 4) || !write_exact(conn->fd, &kind, 1) ||
        !write_exact(conn->fd, payload.data(), payload.size())) {
        return Status::Unavailable("tcp send failed");
    }
    return Status::OK();
}

Result<TcpFabric::Connection*> TcpFabric::connection_to(const std::string& hostport) {
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = outbound_.find(hostport);
        if (it != outbound_.end()) return it->second.get();
    }
    const auto colon = hostport.rfind(':');
    if (colon == std::string::npos) return Status::InvalidArgument("bad host:port " + hostport);
    const std::string host = hostport.substr(0, colon);
    const int port = std::atoi(hostport.c_str() + colon + 1);

    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return Status::IOError("socket() failed");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
        ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
        ::close(fd);
        return Status::Unavailable("cannot connect to " + hostport);
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    Connection* raw = conn.get();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto [it, inserted] = outbound_.emplace(hostport, std::move(conn));
        if (!inserted) {
            // Lost a race; use the winner and drop ours.
            ::close(fd);
            return it->second.get();
        }
    }
    raw->reader = std::thread([this, raw] { reader_loop(raw); });
    return raw;
}

Status TcpFabric::deliver(const std::string& to, Message msg) {
    std::string hostport, name;
    if (!parse_address(to, hostport, name)) {
        return Status::InvalidArgument("not a tcp:// address: " + to);
    }

    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.messages;
        stats_.message_bytes += msg.wire_size();
    }

    if (hostport == hostport_) {
        // Local shortcut.
        std::shared_ptr<Endpoint> target;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            auto it = locals_.find(name);
            if (it != locals_.end()) target = it->second;
        }
        if (!target || target->stopped()) {
            return Status::Unavailable("no endpoint " + name + " on " + hostport_);
        }
        target->enqueue(std::move(msg));
        return Status::OK();
    }

    WireMessage wire;
    wire.type = static_cast<std::uint8_t>(msg.type);
    wire.seq = msg.seq;
    wire.rpc = msg.rpc;
    wire.provider = msg.provider;
    wire.origin = msg.origin;
    wire.payload = std::move(msg.payload);
    wire.status_code = static_cast<std::uint8_t>(msg.status.code());
    wire.status_message = msg.status.message();
    wire.to_name = name;

    auto conn = connection_to(hostport);
    if (!conn.ok()) return conn.status();
    const std::string frame = serial::to_string(wire);
    Status st = send_frame(*conn, kFrameMessage, frame);
    if (st.ok()) return st;
    // The cached connection is dead (its peer went away). Evict it and retry
    // once on a fresh dial — the peer may have restarted on the same port.
    abandon(hostport, *conn);
    auto fresh = connection_to(hostport);
    if (!fresh.ok()) return fresh.status();
    return send_frame(*fresh, kFrameMessage, frame);
}

Status TcpFabric::bulk_access(const BulkRef& ref, std::uint64_t offset, std::uint64_t len,
                              bool write, void* local_dst, const void* local_src) {
    std::string hostport, name;
    if (!parse_address(ref.endpoint, hostport, name)) {
        return Status::InvalidArgument("bulk ref has a non-tcp address: " + ref.endpoint);
    }

    // Local shortcut: direct memory access, like the loopback fabric.
    if (hostport == hostport_) {
        std::shared_ptr<Endpoint> owner;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            auto it = locals_.find(name);
            if (it != locals_.end()) owner = it->second;
        }
        if (!owner) return Status::Unavailable("bulk owner " + name + " gone");
        Status st = owner->access_region(ref.id, offset, len, write, local_dst, local_src);
        if (st.ok()) {
            std::lock_guard<std::mutex> lock(mutex_);
            ++stats_.bulk_transfers;
            stats_.bulk_bytes += len;
        }
        return st;
    }

    WireBulkReq req;
    req.bulk_seq = next_bulk_seq_.fetch_add(1);
    req.endpoint_name = name;
    req.region_id = ref.id;
    req.offset = offset;
    req.len = len;
    req.write = write ? 1 : 0;
    if (write) req.data.assign(static_cast<const char*>(local_src), len);

    auto slot = std::make_shared<BulkSlot>();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        bulk_pending_[req.bulk_seq] = slot;
    }
    auto conn = connection_to(hostport);
    if (!conn.ok()) {
        std::lock_guard<std::mutex> lock(mutex_);
        bulk_pending_.erase(req.bulk_seq);
        return conn.status();
    }
    const std::string frame = serial::to_string(req);
    Status st = send_frame(*conn, kFrameBulkReq, frame);
    if (!st.ok()) {
        // Same dead-connection recovery as deliver(): redial once.
        abandon(hostport, *conn);
        auto fresh = connection_to(hostport);
        if (fresh.ok()) st = send_frame(*fresh, kFrameBulkReq, frame);
        if (!st.ok()) {
            std::lock_guard<std::mutex> lock(mutex_);
            bulk_pending_.erase(req.bulk_seq);
            return st;
        }
    }

    std::unique_lock<std::mutex> lock(slot->m);
    if (!slot->cv.wait_for(lock, std::chrono::duration<double>(bulk_timeout_s_),
                           [&] { return slot->done; })) {
        std::lock_guard<std::mutex> plock(mutex_);
        bulk_pending_.erase(req.bulk_seq);
        return Status::Timeout("bulk transfer to " + hostport + " timed out");
    }
    if (!slot->status.ok()) return slot->status;
    if (!write) {
        if (slot->data.size() != len) return Status::Corruption("bulk read size mismatch");
        std::memcpy(local_dst, slot->data.data(), len);
    }
    {
        std::lock_guard<std::mutex> plock(mutex_);
        ++stats_.bulk_transfers;
        stats_.bulk_bytes += len;
    }
    return Status::OK();
}

void TcpFabric::accept_loop() {
    while (!stopping_.load()) {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) {
            if (stopping_.load()) return;
            continue;
        }
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        auto conn = std::make_unique<Connection>();
        conn->fd = fd;
        Connection* raw = conn.get();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            inbound_.push_back(std::move(conn));
        }
        raw->reader = std::thread([this, raw] { reader_loop(raw); });
    }
}

void TcpFabric::reader_loop(Connection* conn) {
    while (true) {
        std::uint32_t len = 0;
        std::uint8_t kind = 0;
        if (!read_exact(conn->fd, &len, 4) || !read_exact(conn->fd, &kind, 1)) break;
        if (len > (256u << 20)) break;  // refuse absurd frames
        std::string payload(len, '\0');
        if (!read_exact(conn->fd, payload.data(), len)) break;
        try {
            handle_frame(conn, kind, std::move(payload));
        } catch (const serial::SerializationError& e) {
            HEP_LOG_ERROR("tcp frame decode failed: %s", e.what());
            break;
        }
    }
    retire(conn);
}

void TcpFabric::retire(Connection* conn) {
    {
        std::lock_guard<std::mutex> lock(conn->write_mutex);
        if (conn->fd >= 0) {
            ::close(conn->fd);
            conn->fd = -1;
        }
    }
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_.load()) return;  // the destructor owns cleanup from here
    for (auto it = outbound_.begin(); it != outbound_.end(); ++it) {
        if (it->second.get() == conn) {
            dead_.push_back(std::move(it->second));
            outbound_.erase(it);
            return;
        }
    }
    for (auto it = inbound_.begin(); it != inbound_.end(); ++it) {
        if (it->get() == conn) {
            dead_.push_back(std::move(*it));
            inbound_.erase(it);
            return;
        }
    }
}

void TcpFabric::abandon(const std::string& hostport, Connection* conn) {
    {
        // shutdown (not close) so the blocked reader wakes and retires the
        // socket itself; closing here could invalidate the fd under recv.
        std::lock_guard<std::mutex> lock(conn->write_mutex);
        if (conn->fd >= 0) ::shutdown(conn->fd, SHUT_RDWR);
    }
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = outbound_.find(hostport);
    if (it != outbound_.end() && it->second.get() == conn) {
        dead_.push_back(std::move(it->second));
        outbound_.erase(it);
    }
}

void TcpFabric::handle_frame(Connection* conn, std::uint8_t kind, std::string payload) {
    switch (kind) {
        case kFrameMessage: {
            WireMessage wire;
            serial::from_string(payload, wire);
            Message msg;
            msg.type = static_cast<MessageType>(wire.type);
            msg.seq = wire.seq;
            msg.rpc = wire.rpc;
            msg.provider = wire.provider;
            msg.origin = std::move(wire.origin);
            msg.payload = std::move(wire.payload);
            if (wire.status_code != 0) {
                msg.status = Status(static_cast<StatusCode>(wire.status_code),
                                    std::move(wire.status_message));
            }
            std::shared_ptr<Endpoint> target;
            {
                std::lock_guard<std::mutex> lock(mutex_);
                auto it = locals_.find(wire.to_name);
                if (it != locals_.end()) target = it->second;
            }
            if (target && !target->stopped()) {
                target->enqueue(std::move(msg));
            } else if (msg.type == MessageType::kRequest) {
                // Best effort: tell the caller nobody is home.
                Message resp;
                resp.type = MessageType::kResponse;
                resp.seq = msg.seq;
                resp.origin = base_address_ + "/" + wire.to_name;
                resp.status = Status::Unavailable("no endpoint " + wire.to_name);
                (void)deliver(msg.origin, std::move(resp));
            }
            break;
        }
        case kFrameBulkReq: {
            WireBulkReq req;
            serial::from_string(payload, req);
            WireBulkResp resp;
            resp.bulk_seq = req.bulk_seq;
            std::shared_ptr<Endpoint> owner;
            {
                std::lock_guard<std::mutex> lock(mutex_);
                auto it = locals_.find(req.endpoint_name);
                if (it != locals_.end()) owner = it->second;
            }
            Status st;
            if (!owner) {
                st = Status::NotFound("no endpoint " + req.endpoint_name);
            } else if (req.write) {
                if (req.data.size() != req.len) {
                    st = Status::InvalidArgument("bulk write size mismatch");
                } else {
                    st = owner->access_region(req.region_id, req.offset, req.len, true,
                                              nullptr, req.data.data());
                }
            } else {
                resp.data.resize(req.len);
                st = owner->access_region(req.region_id, req.offset, req.len, false,
                                          resp.data.data(), nullptr);
                if (!st.ok()) resp.data.clear();
            }
            resp.status_code = static_cast<std::uint8_t>(st.code());
            resp.status_message = st.message();
            // Reply on the same socket the request arrived on.
            (void)send_frame(conn, kFrameBulkResp, serial::to_string(resp));
            break;
        }
        case kFrameBulkResp: {
            WireBulkResp resp;
            serial::from_string(payload, resp);
            std::shared_ptr<BulkSlot> slot;
            {
                std::lock_guard<std::mutex> lock(mutex_);
                auto it = bulk_pending_.find(resp.bulk_seq);
                if (it != bulk_pending_.end()) {
                    slot = it->second;
                    bulk_pending_.erase(it);
                }
            }
            if (slot) {
                std::lock_guard<std::mutex> lock(slot->m);
                slot->done = true;
                if (resp.status_code != 0) {
                    slot->status = Status(static_cast<StatusCode>(resp.status_code),
                                          std::move(resp.status_message));
                }
                slot->data = std::move(resp.data);
                slot->cv.notify_all();
            }
            break;
        }
        default:
            HEP_LOG_WARN("unknown tcp frame kind %u", kind);
    }
}

}  // namespace hep::rpc

#include "rpc/tcp_fabric.hpp"

#include <arpa/inet.h>
#include <limits.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cstring>

#include "common/logging.hpp"
#include "rpc/endpoint.hpp"
#include "serial/archive.hpp"

namespace hep::rpc {

using wire::kFrameBulkReq;
using wire::kFrameBulkResp;
using wire::kFrameMessage;

namespace {

bool read_exact(int fd, void* buf, std::size_t n) {
    auto* p = static_cast<char*>(buf);
    while (n > 0) {
        const ssize_t got = ::recv(fd, p, n, 0);
        if (got <= 0) return false;
        p += got;
        n -= static_cast<std::size_t>(got);
    }
    return true;
}

/// Gathered write of every iovec in [iov, iov+count). Mutates the iovecs to
/// track partial sends; batches by IOV_MAX for large chains.
bool writev_exact(int fd, struct iovec* iov, std::size_t count) {
#ifdef IOV_MAX
    constexpr std::size_t kIovBatch = IOV_MAX < 1024 ? IOV_MAX : 1024;
#else
    constexpr std::size_t kIovBatch = 1024;
#endif
    while (count > 0) {
        // Skip fully-sent entries.
        if (iov->iov_len == 0) {
            ++iov;
            --count;
            continue;
        }
        msghdr msg{};
        msg.msg_iov = iov;
        msg.msg_iovlen = count < kIovBatch ? count : kIovBatch;
        ssize_t sent = ::sendmsg(fd, &msg, MSG_NOSIGNAL);
        if (sent <= 0) return false;
        while (sent > 0 && count > 0) {
            const std::size_t take =
                static_cast<std::size_t>(sent) < iov->iov_len
                    ? static_cast<std::size_t>(sent)
                    : iov->iov_len;
            iov->iov_base = static_cast<char*>(iov->iov_base) + take;
            iov->iov_len -= take;
            sent -= static_cast<ssize_t>(take);
            if (iov->iov_len == 0) {
                ++iov;
                --count;
            }
        }
    }
    return true;
}

}  // namespace

TcpFabric::TcpFabric(const std::string& host, std::uint16_t port) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) throw std::runtime_error("TcpFabric: socket() failed");
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        ::close(listen_fd_);
        throw std::runtime_error("TcpFabric: bad host " + host);
    }
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
        ::listen(listen_fd_, 64) != 0) {
        ::close(listen_fd_);
        throw std::runtime_error("TcpFabric: cannot bind/listen on " + host + ":" +
                                 std::to_string(port));
    }
    socklen_t len = sizeof(addr);
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    hostport_ = host + ":" + std::to_string(ntohs(addr.sin_port));
    base_address_ = "tcp://" + hostport_;
    accept_thread_ = std::thread([this] { accept_loop(); });
}

TcpFabric::~TcpFabric() {
    stopping_.store(true);
    // Shut the local endpoints down first so their progress threads stop.
    std::map<std::string, std::shared_ptr<Endpoint>> locals;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        locals = locals_;
    }
    for (auto& [name, ep] : locals) ep->shutdown();

    if (listen_fd_ >= 0) {
        ::shutdown(listen_fd_, SHUT_RDWR);
        ::close(listen_fd_);
    }
    if (accept_thread_.joinable()) accept_thread_.join();

    std::vector<Connection*> conns;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (auto& [hp, c] : outbound_) conns.push_back(c.get());
        for (auto& c : inbound_) conns.push_back(c.get());
        for (auto& c : dead_) conns.push_back(c.get());
    }
    for (auto* c : conns) {
        std::lock_guard<std::mutex> lock(c->write_mutex);
        if (c->fd >= 0) ::shutdown(c->fd, SHUT_RDWR);
    }
    // Join readers outside the locks; reader_loop never takes mutex_ while
    // blocked in recv.
    for (auto* c : conns) {
        if (c->reader.joinable()) c->reader.join();
        std::lock_guard<std::mutex> lock(c->write_mutex);
        if (c->fd >= 0) ::close(c->fd);
        c->fd = -1;
    }
}

bool TcpFabric::parse_address(const std::string& address, std::string& hostport,
                              std::string& name) {
    constexpr std::string_view kScheme = "tcp://";
    if (address.compare(0, kScheme.size(), kScheme) != 0) return false;
    const auto slash = address.find('/', kScheme.size());
    if (slash == std::string::npos || slash + 1 >= address.size()) return false;
    hostport = address.substr(kScheme.size(), slash - kScheme.size());
    name = address.substr(slash + 1);
    return !hostport.empty();
}

std::shared_ptr<Endpoint> TcpFabric::create_endpoint(const std::string& name) {
    // Accept either a bare name or a full URL naming THIS fabric.
    std::string bare = name;
    std::string hostport, parsed_name;
    if (parse_address(name, hostport, parsed_name)) {
        if (hostport != hostport_) {
            HEP_LOG_ERROR("create_endpoint: %s is not on this fabric (%s)", name.c_str(),
                          hostport_.c_str());
            return nullptr;
        }
        bare = parsed_name;
    }
    auto ep = Endpoint::make(*this, base_address_ + "/" + bare);
    std::lock_guard<std::mutex> lock(mutex_);
    auto [it, inserted] = locals_.emplace(bare, ep);
    if (!inserted) {
        HEP_LOG_ERROR("duplicate endpoint name %s", bare.c_str());
        return nullptr;
    }
    return ep;
}

void TcpFabric::remove_endpoint(const std::string& address) {
    std::string hostport, name;
    if (!parse_address(address, hostport, name)) name = address;
    std::lock_guard<std::mutex> lock(mutex_);
    locals_.erase(name);
}

NetworkStats TcpFabric::stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

Status TcpFabric::send_frame(Connection* conn, std::uint8_t kind, const std::string& header,
                             const hep::BufferChain& tail) {
    const auto len = static_cast<std::uint32_t>(header.size() + tail.size());
    // One gathered write: preamble + header + the chain's segments, straight
    // from wherever they live (no contiguous frame is ever assembled).
    std::vector<struct iovec> iov;
    iov.reserve(2 + 1 + tail.depth());
    iov.push_back({const_cast<std::uint32_t*>(&len), 4});
    iov.push_back({const_cast<std::uint8_t*>(&kind), 1});
    if (!header.empty()) {
        iov.push_back({const_cast<char*>(header.data()), header.size()});
    }
    for (const auto& seg : tail.segments()) {
        iov.push_back({const_cast<char*>(seg.data()), seg.size()});
    }
    std::lock_guard<std::mutex> lock(conn->write_mutex);
    if (conn->fd < 0) return Status::Unavailable("connection closed");
    if (!writev_exact(conn->fd, iov.data(), iov.size())) {
        return Status::Unavailable("tcp send failed");
    }
    return Status::OK();
}

Result<TcpFabric::Connection*> TcpFabric::connection_to(const std::string& hostport) {
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = outbound_.find(hostport);
        if (it != outbound_.end()) return it->second.get();
    }
    const auto colon = hostport.rfind(':');
    if (colon == std::string::npos) return Status::InvalidArgument("bad host:port " + hostport);
    const std::string host = hostport.substr(0, colon);
    const int port = std::atoi(hostport.c_str() + colon + 1);

    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return Status::IOError("socket() failed");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
        ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
        ::close(fd);
        return Status::Unavailable("cannot connect to " + hostport);
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    Connection* raw = conn.get();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto [it, inserted] = outbound_.emplace(hostport, std::move(conn));
        if (!inserted) {
            // Lost a race; use the winner and drop ours.
            ::close(fd);
            return it->second.get();
        }
    }
    raw->reader = std::thread([this, raw] { reader_loop(raw); });
    return raw;
}

Status TcpFabric::deliver(const std::string& to, Message msg) {
    std::string hostport, name;
    if (!parse_address(to, hostport, name)) {
        return Status::InvalidArgument("not a tcp:// address: " + to);
    }

    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.messages;
        // Count the real framed size (header with to_name + payload tail);
        // the local shortcut charges the same so ratios stay comparable.
        stats_.message_bytes += msg.wire_size(name.size());
    }

    if (hostport == hostport_) {
        // Local shortcut: the payload chain is handed over as-is — the
        // receiver's views share the sender's buffers (shared memory).
        std::shared_ptr<Endpoint> target;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            auto it = locals_.find(name);
            if (it != locals_.end()) target = it->second;
        }
        if (!target || target->stopped()) {
            return Status::Unavailable("no endpoint " + name + " on " + hostport_);
        }
        target->enqueue(std::move(msg));
        return Status::OK();
    }

    const std::string header = serial::to_string(wire::make_header(msg, name));
    auto conn = connection_to(hostport);
    if (!conn.ok()) return conn.status();
    Status st = send_frame(*conn, kFrameMessage, header, msg.payload);
    if (st.ok()) return st;
    // The cached connection is dead (its peer went away). Evict it and retry
    // once on a fresh dial — the peer may have restarted on the same port.
    abandon(hostport, *conn);
    auto fresh = connection_to(hostport);
    if (!fresh.ok()) return fresh.status();
    return send_frame(*fresh, kFrameMessage, header, msg.payload);
}

Status TcpFabric::bulk_roundtrip(const std::string& hostport, wire::BulkReqHeader req,
                                 const hep::BufferChain& tail, void* local_dst) {
    auto slot = std::make_shared<BulkSlot>();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        bulk_pending_[req.bulk_seq] = slot;
    }
    auto conn = connection_to(hostport);
    if (!conn.ok()) {
        std::lock_guard<std::mutex> lock(mutex_);
        bulk_pending_.erase(req.bulk_seq);
        return conn.status();
    }
    const std::string header = serial::to_string(req);
    Status st = send_frame(*conn, kFrameBulkReq, header, tail);
    if (!st.ok()) {
        // Same dead-connection recovery as deliver(): redial once.
        abandon(hostport, *conn);
        auto fresh = connection_to(hostport);
        if (fresh.ok()) st = send_frame(*fresh, kFrameBulkReq, header, tail);
        if (!st.ok()) {
            std::lock_guard<std::mutex> lock(mutex_);
            bulk_pending_.erase(req.bulk_seq);
            return st;
        }
    }

    std::unique_lock<std::mutex> lock(slot->m);
    if (!slot->cv.wait_for(lock, std::chrono::duration<double>(bulk_timeout_s_),
                           [&] { return slot->done; })) {
        std::lock_guard<std::mutex> plock(mutex_);
        bulk_pending_.erase(req.bulk_seq);
        return Status::Timeout("bulk transfer to " + hostport + " timed out");
    }
    if (!slot->status.ok()) return slot->status;
    if (!req.write) {
        if (slot->data.size() != req.len) return Status::Corruption("bulk read size mismatch");
        std::memcpy(local_dst, slot->data.data(), req.len);
        hep::count_buffer_copy(req.len);
    }
    {
        std::lock_guard<std::mutex> plock(mutex_);
        ++stats_.bulk_transfers;
        stats_.bulk_bytes += req.len;
    }
    return Status::OK();
}

Status TcpFabric::bulk_access(const BulkRef& ref, std::uint64_t offset, std::uint64_t len,
                              bool write, void* local_dst, const void* local_src) {
    std::string hostport, name;
    if (!parse_address(ref.endpoint, hostport, name)) {
        return Status::InvalidArgument("bulk ref has a non-tcp address: " + ref.endpoint);
    }

    // Local shortcut: direct memory access, like the loopback fabric.
    if (hostport == hostport_) {
        std::shared_ptr<Endpoint> owner;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            auto it = locals_.find(name);
            if (it != locals_.end()) owner = it->second;
        }
        if (!owner) return Status::Unavailable("bulk owner " + name + " gone");
        Status st = owner->access_region(ref.id, offset, len, write, local_dst, local_src);
        if (st.ok()) {
            std::lock_guard<std::mutex> lock(mutex_);
            ++stats_.bulk_transfers;
            stats_.bulk_bytes += len;
        }
        return st;
    }

    wire::BulkReqHeader req;
    req.bulk_seq = next_bulk_seq_.fetch_add(1);
    req.endpoint_name = name;
    req.region_id = ref.id;
    req.offset = offset;
    req.len = len;
    req.write = write ? 1 : 0;
    hep::BufferChain tail;
    if (write) {
        // Borrowed view is safe: the send happens synchronously below and
        // the redial path reuses the same still-live caller bytes.
        tail.append(hep::BufferView(
            std::string_view(static_cast<const char*>(local_src), len)));
    }
    return bulk_roundtrip(hostport, std::move(req), tail, local_dst);
}

Status TcpFabric::bulk_access_chain(const BulkRef& ref, std::uint64_t offset,
                                    const hep::BufferChain& src) {
    std::string hostport, name;
    if (!parse_address(ref.endpoint, hostport, name)) {
        return Status::InvalidArgument("bulk ref has a non-tcp address: " + ref.endpoint);
    }

    if (hostport == hostport_) {
        std::shared_ptr<Endpoint> owner;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            auto it = locals_.find(name);
            if (it != locals_.end()) owner = it->second;
        }
        if (!owner) return Status::Unavailable("bulk owner " + name + " gone");
        std::uint64_t at = offset;
        for (const auto& seg : src.segments()) {
            Status st = owner->access_region(ref.id, at, seg.size(), /*write=*/true, nullptr,
                                             seg.data());
            if (!st.ok()) return st;
            at += seg.size();
        }
        {
            std::lock_guard<std::mutex> lock(mutex_);
            ++stats_.bulk_transfers;
            stats_.bulk_bytes += src.size();
        }
        return Status::OK();
    }

    wire::BulkReqHeader req;
    req.bulk_seq = next_bulk_seq_.fetch_add(1);
    req.endpoint_name = name;
    req.region_id = ref.id;
    req.offset = offset;
    req.len = src.size();
    req.write = 1;
    return bulk_roundtrip(hostport, std::move(req), src, nullptr);
}

void TcpFabric::accept_loop() {
    while (!stopping_.load()) {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) {
            if (stopping_.load()) return;
            continue;
        }
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        auto conn = std::make_unique<Connection>();
        conn->fd = fd;
        Connection* raw = conn.get();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            inbound_.push_back(std::move(conn));
        }
        raw->reader = std::thread([this, raw] { reader_loop(raw); });
    }
}

void TcpFabric::reader_loop(Connection* conn) {
    while (true) {
        std::uint32_t len = 0;
        std::uint8_t kind = 0;
        if (!read_exact(conn->fd, &len, 4) || !read_exact(conn->fd, &kind, 1)) break;
        if (len > (256u << 20)) break;  // refuse absurd frames
        // One receive buffer per frame; everything downstream (payload chain,
        // bulk data) is a refcounted view into it — no further copies.
        hep::Buffer frame = hep::Buffer::allocate(len);
        if (!read_exact(conn->fd, frame.mutable_data(), len)) break;
        try {
            handle_frame(conn, kind, std::move(frame));
        } catch (const serial::SerializationError& e) {
            HEP_LOG_ERROR("tcp frame decode failed: %s", e.what());
            break;
        }
    }
    retire(conn);
}

void TcpFabric::retire(Connection* conn) {
    {
        std::lock_guard<std::mutex> lock(conn->write_mutex);
        if (conn->fd >= 0) {
            ::close(conn->fd);
            conn->fd = -1;
        }
    }
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_.load()) return;  // the destructor owns cleanup from here
    for (auto it = outbound_.begin(); it != outbound_.end(); ++it) {
        if (it->second.get() == conn) {
            dead_.push_back(std::move(it->second));
            outbound_.erase(it);
            return;
        }
    }
    for (auto it = inbound_.begin(); it != inbound_.end(); ++it) {
        if (it->get() == conn) {
            dead_.push_back(std::move(*it));
            inbound_.erase(it);
            return;
        }
    }
}

void TcpFabric::abandon(const std::string& hostport, Connection* conn) {
    {
        // shutdown (not close) so the blocked reader wakes and retires the
        // socket itself; closing here could invalidate the fd under recv.
        std::lock_guard<std::mutex> lock(conn->write_mutex);
        if (conn->fd >= 0) ::shutdown(conn->fd, SHUT_RDWR);
    }
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = outbound_.find(hostport);
    if (it != outbound_.end() && it->second.get() == conn) {
        dead_.push_back(std::move(it->second));
        outbound_.erase(it);
    }
}

void TcpFabric::handle_frame(Connection* conn, std::uint8_t kind, hep::Buffer frame) {
    hep::BufferChain frame_chain;
    frame_chain.append(frame.view());
    serial::BinaryIArchive in(frame_chain);
    switch (kind) {
        case kFrameMessage: {
            wire::MessageHeader header;
            in >> header;
            Message msg;
            msg.type = static_cast<MessageType>(header.type);
            msg.seq = header.seq;
            msg.rpc = header.rpc;
            msg.provider = header.provider;
            msg.origin = std::move(header.origin);
            msg.qos_tenant = std::move(header.qos_tenant);
            msg.qos_class = header.qos_class;
            msg.qos_budget_ms = header.qos_budget_ms;
            // Zero-copy: the payload is a view into the frame buffer, which
            // stays alive (refcounted) for as long as any consumer needs it.
            msg.payload = in.read_chain(header.payload_len);
            if (header.status_code != 0) {
                msg.status = Status(static_cast<StatusCode>(header.status_code),
                                    std::move(header.status_message));
            }
            std::shared_ptr<Endpoint> target;
            {
                std::lock_guard<std::mutex> lock(mutex_);
                auto it = locals_.find(header.to_name);
                if (it != locals_.end()) target = it->second;
            }
            if (target && !target->stopped()) {
                target->enqueue(std::move(msg));
            } else if (msg.type == MessageType::kRequest) {
                // Best effort: tell the caller nobody is home.
                Message resp;
                resp.type = MessageType::kResponse;
                resp.seq = msg.seq;
                resp.origin = base_address_ + "/" + header.to_name;
                resp.status = Status::Unavailable("no endpoint " + header.to_name);
                (void)deliver(msg.origin, std::move(resp));
            }
            break;
        }
        case kFrameBulkReq: {
            wire::BulkReqHeader req;
            in >> req;
            wire::BulkRespHeader resp;
            resp.bulk_seq = req.bulk_seq;
            std::shared_ptr<Endpoint> owner;
            {
                std::lock_guard<std::mutex> lock(mutex_);
                auto it = locals_.find(req.endpoint_name);
                if (it != locals_.end()) owner = it->second;
            }
            Status st;
            hep::BufferChain resp_tail;
            if (!owner) {
                st = Status::NotFound("no endpoint " + req.endpoint_name);
            } else if (req.write) {
                if (in.remaining() != req.len) {
                    st = Status::InvalidArgument("bulk write size mismatch");
                } else {
                    // The write data is contiguous within the frame.
                    hep::BufferView data = in.read_view(req.len);
                    st = owner->access_region(req.region_id, req.offset, req.len, true,
                                              nullptr, data.data());
                }
            } else {
                hep::Buffer out = hep::Buffer::allocate(req.len);
                st = owner->access_region(req.region_id, req.offset, req.len, false,
                                          out.mutable_data(), nullptr);
                if (st.ok()) {
                    resp_tail.append(out.view());
                    resp.data_len = req.len;
                }
            }
            resp.status_code = static_cast<std::uint8_t>(st.code());
            resp.status_message = st.message();
            // Reply on the same socket the request arrived on.
            (void)send_frame(conn, kFrameBulkResp, serial::to_string(resp), resp_tail);
            break;
        }
        case kFrameBulkResp: {
            wire::BulkRespHeader resp;
            in >> resp;
            std::shared_ptr<BulkSlot> slot;
            {
                std::lock_guard<std::mutex> lock(mutex_);
                auto it = bulk_pending_.find(resp.bulk_seq);
                if (it != bulk_pending_.end()) {
                    slot = it->second;
                    bulk_pending_.erase(it);
                }
            }
            if (slot) {
                std::lock_guard<std::mutex> lock(slot->m);
                slot->done = true;
                if (resp.status_code != 0) {
                    slot->status = Status(static_cast<StatusCode>(resp.status_code),
                                          std::move(resp.status_message));
                }
                // Anchored into the frame buffer: outlives this handler.
                slot->data = in.read_view(resp.data_len);
                slot->cv.notify_all();
            }
            break;
        }
        default:
            HEP_LOG_WARN("unknown tcp frame kind %u", kind);
    }
}

}  // namespace hep::rpc

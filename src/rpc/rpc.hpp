// Umbrella header for the Mercury-substitute RPC library (paper §II-B).
#pragma once

#include "rpc/endpoint.hpp"  // IWYU pragma: export
#include "rpc/message.hpp"   // IWYU pragma: export
#include "rpc/network.hpp"   // IWYU pragma: export

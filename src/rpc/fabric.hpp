// Fabric: the transport abstraction under endpoints (Mercury's NA layer).
//
// Two implementations ship:
//   - rpc::Network      (network.hpp): in-process loopback — queues between
//     endpoints of one process, memcpy bulk. Used by tests/benches/examples.
//   - rpc::TcpFabric    (tcp_fabric.hpp): real sockets — endpoints live in
//     different OS processes, addresses look like "tcp://127.0.0.1:5555/ep",
//     bulk transfers ride a request/response channel.
//
// Endpoints only ever talk to the abstract interface, exactly as Mercury
// code is written against NA rather than a specific plugin (paper §IV-C used
// the ofi/gni plugin on Theta; laptops use tcp).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/buffer.hpp"
#include "common/status.hpp"
#include "rpc/message.hpp"

namespace hep::rpc {

class Endpoint;

/// Traffic counters, readable at any time.
struct NetworkStats {
    std::uint64_t messages = 0;
    std::uint64_t message_bytes = 0;
    std::uint64_t bulk_transfers = 0;
    std::uint64_t bulk_bytes = 0;
    std::uint64_t dropped = 0;
};

class Fabric {
  public:
    virtual ~Fabric() = default;

    /// Create and register an endpoint. The returned endpoint must not
    /// outlive the fabric. Null if the address is already taken.
    virtual std::shared_ptr<Endpoint> create_endpoint(const std::string& address) = 0;

    /// Deliver `msg` to the endpoint addressed `to` (possibly remote).
    virtual Status deliver(const std::string& to, Message msg) = 0;

    /// One-sided access against a (possibly remote) exposed region.
    /// write=false: copy [offset, offset+len) into local_dst;
    /// write=true:  copy local_src into the region.
    virtual Status bulk_access(const BulkRef& ref, std::uint64_t offset, std::uint64_t len,
                               bool write, void* local_dst, const void* local_src) = 0;

    /// Gathered one-sided write: push the chain's segments into the region at
    /// `offset` without requiring them to be contiguous locally. The default
    /// walks the segments through bulk_access; fabrics override it to do the
    /// write in one shot (loopback: direct memcpys; tcp: one gathered frame).
    virtual Status bulk_access_chain(const BulkRef& ref, std::uint64_t offset,
                                     const hep::BufferChain& src) {
        std::uint64_t at = offset;
        for (const auto& seg : src.segments()) {
            Status st = bulk_access(ref, at, seg.size(), /*write=*/true, nullptr, seg.data());
            if (!st.ok()) return st;
            at += seg.size();
        }
        return Status::OK();
    }

    /// Deregister an endpoint (it stops receiving).
    virtual void remove_endpoint(const std::string& address) = 0;

    [[nodiscard]] virtual NetworkStats stats() const = 0;
};

}  // namespace hep::rpc

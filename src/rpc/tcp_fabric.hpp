// TcpFabric: a real-sockets transport, so HEPnOS deployments can span OS
// processes (the "na+tcp" equivalent of Mercury's NA plugins; the paper used
// ofi/uGNI on Theta's Aries network, §IV-C).
//
// One TcpFabric per process: it owns a listening socket and registers local
// endpoints under it. Endpoint addresses look like
//
//     tcp://127.0.0.1:40123/hepnos-server-0
//
// so a Bedrock descriptor produced by one process is directly usable as a
// client connection document in another. Messages are length-prefixed frames;
// one-sided bulk transfers become a request/response pair handled by the
// region owner's fabric (the RDMA emulation every TCP NA plugin does).
//
// Server process:                         Client process:
//   rpc::TcpFabric fabric;                  rpc::TcpFabric fabric;
//   bedrock::ServiceProcess::create(        auto store = DataStore::connect(
//       fabric, config);                        fabric, descriptor_json);
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/buffer.hpp"
#include "rpc/fabric.hpp"
#include "rpc/wire_format.hpp"

namespace hep::rpc {

class TcpFabric final : public Fabric {
  public:
    /// Bind and listen on host:port (port 0 = ephemeral). Throws on failure.
    explicit TcpFabric(const std::string& host = "127.0.0.1", std::uint16_t port = 0);
    ~TcpFabric() override;
    TcpFabric(const TcpFabric&) = delete;
    TcpFabric& operator=(const TcpFabric&) = delete;

    /// "tcp://host:port" — endpoint addresses are base_address() + "/" + name.
    [[nodiscard]] const std::string& base_address() const noexcept { return base_address_; }

    /// Register an endpoint under `name` (a bare name, not a URL); its
    /// address becomes base_address()/name. Null if taken.
    std::shared_ptr<Endpoint> create_endpoint(const std::string& name) override;

    Status deliver(const std::string& to, Message msg) override;
    Status bulk_access(const BulkRef& ref, std::uint64_t offset, std::uint64_t len, bool write,
                       void* local_dst, const void* local_src) override;
    /// Gathered write: the chain's segments go onto the socket as one frame
    /// tail (sendmsg scatter-gather), never flattened locally.
    Status bulk_access_chain(const BulkRef& ref, std::uint64_t offset,
                             const hep::BufferChain& src) override;
    void remove_endpoint(const std::string& address) override;
    [[nodiscard]] NetworkStats stats() const override;

    /// Seconds to wait for a bulk response before giving up.
    void set_bulk_timeout(double seconds) noexcept { bulk_timeout_s_ = seconds; }

  private:
    struct Connection {
        int fd = -1;
        std::mutex write_mutex;
        std::thread reader;
    };

    struct BulkSlot {
        std::mutex m;
        std::condition_variable cv;
        bool done = false;
        Status status;
        hep::BufferView data;  // read payload: a view anchored to the frame
    };

    void accept_loop();
    void reader_loop(Connection* conn);
    void handle_frame(Connection* conn, std::uint8_t kind, hep::Buffer frame);

    /// Existing or fresh outbound connection to "host:port".
    Result<Connection*> connection_to(const std::string& hostport);

    /// Reader-side teardown: close the socket and evict the connection from
    /// the routing maps so the next deliver() dials the peer afresh.
    void retire(Connection* conn);

    /// Sender-side eviction after a failed send: wake the reader (which will
    /// retire the socket) and drop the cached outbound entry immediately so
    /// the caller can redial without waiting for the reader to run.
    void abandon(const std::string& hostport, Connection* conn);

    /// Write one frame: [u32 header+tail][u8 kind][header][tail segments],
    /// gathered onto the socket with sendmsg (no local assembly of the tail).
    Status send_frame(Connection* conn, std::uint8_t kind, const std::string& header,
                      const hep::BufferChain& tail);

    /// Remote bulk request/response shared by bulk_access/bulk_access_chain:
    /// ships `req` (+ write data in `tail`), waits for the peer, and for
    /// reads copies the returned bytes into local_dst.
    Status bulk_roundtrip(const std::string& hostport, wire::BulkReqHeader req,
                          const hep::BufferChain& tail, void* local_dst);

    /// Split "tcp://host:port/name" -> (host:port, name); empty on error.
    static bool parse_address(const std::string& address, std::string& hostport,
                              std::string& name);

    std::string base_address_;   // tcp://host:port
    std::string hostport_;       // host:port
    int listen_fd_ = -1;
    std::thread accept_thread_;
    std::atomic<bool> stopping_{false};
    double bulk_timeout_s_ = 10.0;

    mutable std::mutex mutex_;
    std::map<std::string, std::shared_ptr<Endpoint>> locals_;   // by bare name
    std::map<std::string, std::unique_ptr<Connection>> outbound_;  // by host:port
    std::vector<std::unique_ptr<Connection>> inbound_;
    // Connections whose peer went away. Kept alive (senders may still hold
    // raw pointers; their sends fail fast on the closed fd) until the fabric
    // itself is destroyed, which joins the finished reader threads.
    std::vector<std::unique_ptr<Connection>> dead_;
    std::map<std::uint64_t, std::shared_ptr<BulkSlot>> bulk_pending_;
    std::atomic<std::uint64_t> next_bulk_seq_{1};
    NetworkStats stats_;
};

}  // namespace hep::rpc

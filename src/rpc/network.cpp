#include "rpc/network.hpp"

#include "common/logging.hpp"
#include "rpc/endpoint.hpp"

namespace hep::rpc {

Network::~Network() {
    // Shut endpoints down so their progress threads stop touching us.
    std::unordered_map<std::string, std::shared_ptr<Endpoint>> eps;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        eps = endpoints_;
    }
    for (auto& [name, ep] : eps) ep->shutdown();
}

std::shared_ptr<Endpoint> Network::create_endpoint(const std::string& address) {
    auto ep = Endpoint::make(*this, address);
    std::lock_guard<std::mutex> lock(mutex_);
    auto [it, inserted] = endpoints_.emplace(address, ep);
    if (!inserted) {
        HEP_LOG_ERROR("duplicate endpoint address %s", address.c_str());
        return nullptr;
    }
    return ep;
}

std::shared_ptr<Endpoint> Network::find(const std::string& address) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = endpoints_.find(address);
    return it == endpoints_.end() ? nullptr : it->second;
}

Status Network::deliver(const std::string& to, Message msg) {
    std::shared_ptr<Endpoint> target;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (partitioned_.count(msg.origin) || partitioned_.count(to)) {
            ++stats_.dropped;
            return Status::Unavailable("network partition between " + msg.origin + " and " + to);
        }
        // Drop injection applies to REQUESTS only: the caller observes a
        // clean timeout and can retry. Responses ride a reliable channel —
        // without per-call timers, a dropped response would strand the
        // sync-over-async caller forever, which is not the failure mode we
        // want to model (Mercury cancels such operations via timeout).
        if (msg.type == MessageType::kRequest && drop_rate_ > 0.0 &&
            drop_rng_.bernoulli(drop_rate_)) {
            ++stats_.dropped;
            return Status::Timeout("message dropped by fault injection");
        }
        auto it = endpoints_.find(to);
        if (it == endpoints_.end()) {
            ++stats_.dropped;
            return Status::Unavailable("no endpoint at address " + to);
        }
        target = it->second;
        ++stats_.messages;
        stats_.message_bytes += msg.wire_size();
    }
    if (target->stopped()) {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.dropped;
        return Status::Unavailable("endpoint " + to + " is shut down");
    }
    target->enqueue(std::move(msg));
    return Status::OK();
}

void Network::remove_endpoint(const std::string& address) {
    std::lock_guard<std::mutex> lock(mutex_);
    endpoints_.erase(address);
}

void Network::set_drop_rate(double p, std::uint64_t seed) {
    std::lock_guard<std::mutex> lock(mutex_);
    drop_rate_ = p;
    drop_rng_.reseed(seed);
}

void Network::set_partitioned(const std::string& address, bool partitioned) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (partitioned) partitioned_.insert(address);
    else partitioned_.erase(address);
}

NetworkStats Network::stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

Status Network::bulk_access(const BulkRef& ref, std::uint64_t offset, std::uint64_t len,
                            bool write, void* local_dst, const void* local_src) {
    auto owner = find(ref.endpoint);
    if (!owner) return Status::Unavailable("bulk owner " + ref.endpoint + " not reachable");
    Status st = owner->access_region(ref.id, offset, len, write, local_dst, local_src);
    if (st.ok()) {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.bulk_transfers;
        stats_.bulk_bytes += len;
    }
    return st;
}

Status Network::bulk_access_chain(const BulkRef& ref, std::uint64_t offset,
                                  const hep::BufferChain& src) {
    auto owner = find(ref.endpoint);
    if (!owner) return Status::Unavailable("bulk owner " + ref.endpoint + " not reachable");
    std::uint64_t at = offset;
    for (const auto& seg : src.segments()) {
        Status st = owner->access_region(ref.id, at, seg.size(), /*write=*/true, nullptr,
                                         seg.data());
        if (!st.ok()) return st;
        at += seg.size();
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.bulk_transfers;
        stats_.bulk_bytes += src.size();
    }
    return Status::OK();
}

}  // namespace hep::rpc

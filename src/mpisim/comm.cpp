#include "mpisim/comm.hpp"

#include <exception>
#include <thread>

namespace hep::mpisim {

void Comm::barrier() {
    std::unique_lock<std::mutex> lock(state_->mutex);
    const std::uint64_t gen = state_->generation;
    if (++state_->arrived == state_->size) {
        state_->arrived = 0;
        ++state_->generation;
        lock.unlock();
        state_->cv.notify_all();
        return;
    }
    state_->cv.wait(lock, [&] { return state_->generation != gen; });
}

void Comm::stage(std::string payload) {
    {
        std::lock_guard<std::mutex> lock(state_->mutex);
        state_->slots[static_cast<std::size_t>(rank_)] = std::move(payload);
    }
    barrier();  // all slots populated
}

void run_ranks(int n, const std::function<void(Comm&)>& body) {
    auto state = std::make_shared<detail::CommState>(n);
    std::vector<std::thread> threads;
    std::vector<std::exception_ptr> errors(static_cast<std::size_t>(n));
    threads.reserve(static_cast<std::size_t>(n));
    for (int r = 0; r < n; ++r) {
        threads.emplace_back([&, r] {
            Comm comm(state, r);
            try {
                body(comm);
            } catch (...) {
                errors[static_cast<std::size_t>(r)] = std::current_exception();
                // A crashed rank would hang collectives; there is no
                // recovery in MPI either. Tests keep bodies exception-free
                // past the first collective.
            }
        });
    }
    for (auto& t : threads) t.join();
    for (auto& e : errors) {
        if (e) std::rethrow_exception(e);
    }
}

}  // namespace hep::mpisim

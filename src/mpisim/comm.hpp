// mpisim: a minimal MPI substitute for the HEPnOS client applications
// (paper §III-B: "The HEPnOS-based application uses MPI"). Ranks are threads
// of one process; the Comm object provides the collective operations the
// selection application needs: barrier, reduce-to-root, gather, broadcast,
// and MPI_Wtime-style timing.
//
// Usage:
//   mpisim::run_ranks(8, [&](mpisim::Comm& comm) {
//       ... comm.rank(), comm.barrier(), comm.gather(...) ...
//   });
#pragma once

#include <any>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "serial/archive.hpp"

namespace hep::mpisim {

namespace detail {

/// State shared by all ranks of one communicator.
struct CommState {
    explicit CommState(int size) : size(size), slots(size) {}

    const int size;

    // Reusable two-phase barrier.
    std::mutex mutex;
    std::condition_variable cv;
    int arrived = 0;
    std::uint64_t generation = 0;

    // Collective staging area: one serialized payload per rank.
    std::vector<std::string> slots;

    // Cross-rank shared objects (e.g. the ParallelEventProcessor queue).
    std::mutex shared_mutex;
    std::map<std::string, std::shared_ptr<void>> shared;
};

}  // namespace detail

class Comm {
  public:
    Comm(std::shared_ptr<detail::CommState> state, int rank)
        : state_(std::move(state)), rank_(rank) {}

    [[nodiscard]] int rank() const noexcept { return rank_; }
    [[nodiscard]] int size() const noexcept { return state_->size; }

    /// MPI_Barrier.
    void barrier();

    /// MPI_Wtime: seconds since an arbitrary epoch, monotonic.
    static double wtime() {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now().time_since_epoch())
            .count();
    }

    /// MPI_Gather to `root`: returns all ranks' values at root (empty
    /// elsewhere). T must be serializable.
    template <typename T>
    std::vector<T> gather(const T& value, int root = 0) {
        stage(serial::to_string(value));
        std::vector<T> out;
        if (rank_ == root) {
            out.resize(static_cast<std::size_t>(size()));
            for (int r = 0; r < size(); ++r) {
                serial::from_string(state_->slots[static_cast<std::size_t>(r)], out[r]);
            }
        }
        barrier();  // slots free for reuse after everyone has passed
        return out;
    }

    /// MPI_Bcast from `root`.
    template <typename T>
    void bcast(T& value, int root = 0) {
        if (rank_ == root) {
            std::lock_guard<std::mutex> lock(state_->mutex);
            state_->slots[static_cast<std::size_t>(root)] = serial::to_string(value);
        }
        barrier();
        if (rank_ != root) {
            serial::from_string(state_->slots[static_cast<std::size_t>(root)], value);
        }
        barrier();
    }

    /// MPI_Reduce(sum) to root, then optionally read via gather semantics.
    template <typename T>
    T reduce_sum(const T& value, int root = 0) {
        auto all = gather(value, root);
        T total{};
        if (rank_ == root) {
            for (const auto& v : all) total += v;
        }
        return total;
    }

    /// Reduce for containers: concatenates vectors at the root
    /// (the selection app reduces accepted-slice ID lists to rank 0).
    template <typename T>
    std::vector<T> reduce_concat(const std::vector<T>& value, int root = 0) {
        auto all = gather(value, root);
        std::vector<T> out;
        if (rank_ == root) {
            for (auto& v : all) out.insert(out.end(), v.begin(), v.end());
        }
        return out;
    }

    /// A named object shared by all ranks, created once by whoever asks
    /// first (models state that would live in a sidecar service).
    template <typename T, typename... Args>
    std::shared_ptr<T> shared_object(const std::string& name, Args&&... args) {
        std::lock_guard<std::mutex> lock(state_->shared_mutex);
        auto it = state_->shared.find(name);
        if (it == state_->shared.end()) {
            auto obj = std::make_shared<T>(std::forward<Args>(args)...);
            state_->shared[name] = obj;
            return obj;
        }
        return std::static_pointer_cast<T>(it->second);
    }

  private:
    void stage(std::string payload);

    std::shared_ptr<detail::CommState> state_;
    int rank_;
};

/// Launch `n` ranks (threads) running `body`. Returns when all have finished.
/// Exceptions in a rank are rethrown (the first one) after all ranks join.
void run_ranks(int n, const std::function<void(Comm&)>& body);

}  // namespace hep::mpisim

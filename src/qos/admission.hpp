// Server-side admission control & QoS (ISSUE 5 tentpole).
//
// One AdmissionController guards a service process's whole RPC surface. It
// runs in two places on the request path:
//
//  1. At RPC dispatch (on the endpoint's progress thread, BEFORE a handler
//     ULT is created): validate the QoS stamp, early-drop requests whose
//     propagated deadline already expired in transit, debit the tenant's
//     token bucket, and shed with Status::Overloaded (+ retry-after hint)
//     when the service is past its shed threshold. Rejected requests never
//     burn a handler ULT.
//
//  2. In the handler ULT (margo's dispatch wrapper): measure queue wait
//     (ULT creation -> first run) separately from handler execution time,
//     early-drop requests that expired while queued, and apply the tier-1
//     slowdown (cooperative yields for bulk classes) when the inflight count
//     crosses the slowdown threshold — the same two-tier scheme as the LSM
//     write path's slowdown/stop backpressure.
//
// Class 0 (control: replication ships, failover probes) is exempt from
// token buckets and shedding, so failover never starves behind tenant load.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "common/status.hpp"
#include "qos/context.hpp"

namespace hep::qos {

using Clock = std::chrono::steady_clock;

/// Continuous-refill token bucket (tokens/second + burst capacity).
class TokenBucket {
  public:
    TokenBucket(double rate, double burst) : rate_(rate), burst_(burst), tokens_(burst) {}

    /// Take one token. Returns empty on success; otherwise the milliseconds
    /// until a token will be available (the shed retry-after hint).
    std::optional<std::uint32_t> try_take(Clock::time_point now);

    [[nodiscard]] double level() const;
    [[nodiscard]] double rate() const noexcept { return rate_; }

  private:
    mutable std::mutex mutex_;
    double rate_;
    double burst_;
    double tokens_;
    Clock::time_point last_{};
    bool started_ = false;
};

/// Per-tenant rate limit; rate 0 = unlimited (no bucket).
struct TenantLimit {
    double rate = 0;
    double burst = 0;
};

struct AdmissionOptions {
    /// Weighted-fair scheduling weights per priority class (control,
    /// interactive, batch, bulk). Every weight must be >= 1 so no class can
    /// starve outright; the ratios set how handler slots divide under load.
    std::vector<std::uint32_t> weights = {32, 16, 4, 1};
    /// Tier 1: when this many admitted requests are in flight, classes >=
    /// `slowdown_min_class` pause (cooperative yields) before executing.
    std::uint32_t slowdown_inflight = 64;
    /// Tier 2: past this, non-control requests are shed with Overloaded.
    std::uint32_t shed_inflight = 256;
    /// Retry-after hint attached to queue-depth sheds.
    std::uint32_t retry_after_ms = 25;
    /// First class subject to the tier-1 slowdown (default: batch and bulk).
    std::uint8_t slowdown_min_class = kClassBatch;
    /// Upper bound on one request's slowdown pause.
    std::uint32_t max_slowdown_ms = 20;
    /// Applied to tenants without an explicit entry; rate 0 = unlimited.
    TenantLimit default_limit;
    std::map<std::string, TenantLimit> tenant_limits;

    /// Parse the bedrock "qos" knob; missing fields keep their defaults.
    static AdmissionOptions from_json(const json::Value& cfg);
};

/// Compact log2-bucketed latency histogram (microsecond samples). A local
/// clone of symbio::Histogram: the qos library sits below margo in the link
/// order, so it cannot reuse symbio's (symbio links margo links qos).
class LatencyHist {
  public:
    static constexpr std::size_t kBuckets = 40;

    void observe_us(double us) noexcept;
    [[nodiscard]] std::uint64_t count() const noexcept {
        return count_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] double mean_us() const noexcept;
    /// Upper bound of the bucket holding the q-quantile (q in [0,1]).
    [[nodiscard]] double quantile_upper_bound_us(double q) const noexcept;
    [[nodiscard]] json::Value to_json() const;

  private:
    std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
    std::atomic<std::uint64_t> count_{0};
    std::atomic<double> sum_{0};
};

/// Outcome of the ULT-side start check.
enum class StartVerdict { kRun, kExpiredInQueue };

class AdmissionController {
  public:
    explicit AdmissionController(AdmissionOptions opts);

    [[nodiscard]] const AdmissionOptions& options() const noexcept { return opts_; }

    /// Dispatch-time admission (progress thread; called once per request
    /// BEFORE the handler ULT exists). OK = admitted (inflight incremented);
    /// otherwise the returned status is the error response: InvalidArgument
    /// (malformed stamp), DeadlineExceeded (expired on arrival) or
    /// Overloaded (+ retry-after hint).
    Status admit(std::uint16_t provider, const std::string& tenant, std::uint8_t cls,
                 std::uint32_t budget_ms, Clock::time_point arrival);

    /// ULT-side start check: records the class's queue delay and drops
    /// requests that expired while queued (decrements inflight itself when
    /// it returns kExpiredInQueue — do not call on_complete for those).
    StartVerdict on_start(std::uint16_t provider, std::uint8_t cls, std::uint32_t budget_ms,
                          Clock::time_point arrival, Clock::time_point enqueued);

    /// Handler finished (any outcome): records exec time, decrements inflight.
    void on_complete(std::uint8_t cls, double exec_us);

    /// Tier-1 backpressure: true while `cls` should keep yielding.
    [[nodiscard]] bool should_slow(std::uint8_t cls) const noexcept;

    /// Cooperative pause for slowed classes, bounded by max_slowdown_ms.
    /// Yields the calling ULT so higher classes run; safe on plain threads.
    void slowdown_pause(std::uint8_t cls);

    /// Normalize a wire class: unset -> batch; out-of-range -> nullopt.
    [[nodiscard]] static std::optional<std::uint8_t> normalize_class(std::uint8_t cls) noexcept;

    // ---- introspection ------------------------------------------------------
    [[nodiscard]] std::uint32_t inflight() const noexcept {
        return inflight_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t admitted() const noexcept { return total_.admitted.load(); }
    [[nodiscard]] std::uint64_t shed() const noexcept { return total_.shed.load(); }
    [[nodiscard]] std::uint64_t expired() const noexcept {
        return total_.expired_on_arrival.load() + total_.expired_in_queue.load();
    }
    [[nodiscard]] std::uint64_t malformed() const noexcept { return total_.malformed.load(); }
    [[nodiscard]] std::uint64_t slowdowns() const noexcept { return total_.slowdowns.load(); }

    /// Symbio source body for one provider: that provider's admission
    /// counters plus the shared per-class queue-delay/exec histograms,
    /// inflight level and per-tenant token-bucket levels.
    [[nodiscard]] json::Value stats_json(std::uint16_t provider) const;
    /// Aggregate over all providers.
    [[nodiscard]] json::Value stats_json() const;

  private:
    struct Counters {
        std::atomic<std::uint64_t> admitted{0};
        std::atomic<std::uint64_t> shed{0};
        std::atomic<std::uint64_t> expired_on_arrival{0};
        std::atomic<std::uint64_t> expired_in_queue{0};
        std::atomic<std::uint64_t> malformed{0};
        std::atomic<std::uint64_t> slowdowns{0};

        [[nodiscard]] json::Value to_json() const;
    };

    TokenBucket* bucket_for(const std::string& tenant);
    Counters& provider_counters(std::uint16_t provider);

    AdmissionOptions opts_;
    std::atomic<std::uint32_t> inflight_{0};

    Counters total_;
    mutable std::mutex providers_mutex_;
    std::map<std::uint16_t, std::unique_ptr<Counters>> per_provider_;

    mutable std::mutex buckets_mutex_;
    std::map<std::string, std::unique_ptr<TokenBucket>> buckets_;

    std::array<LatencyHist, kNumClasses> queue_delay_;
    std::array<LatencyHist, kNumClasses> exec_time_;
    std::array<std::atomic<std::uint64_t>, kNumClasses> admitted_by_class_{};
};

}  // namespace hep::qos

#include "qos/admission.hpp"

#include <algorithm>
#include <cmath>

#include "abt/ult.hpp"

namespace hep::qos {

// ---- TokenBucket ------------------------------------------------------------

std::optional<std::uint32_t> TokenBucket::try_take(Clock::time_point now) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!started_) {
        last_ = now;
        started_ = true;
    }
    if (now > last_) {
        const double elapsed = std::chrono::duration<double>(now - last_).count();
        tokens_ = std::min(burst_, tokens_ + elapsed * rate_);
        last_ = now;
    }
    if (tokens_ >= 1.0) {
        tokens_ -= 1.0;
        return std::nullopt;
    }
    const double deficit = 1.0 - tokens_;
    const double wait_ms = rate_ > 0 ? (deficit / rate_) * 1000.0 : 1000.0;
    return static_cast<std::uint32_t>(std::max(1.0, std::ceil(wait_ms)));
}

double TokenBucket::level() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return tokens_;
}

// ---- AdmissionOptions -------------------------------------------------------

AdmissionOptions AdmissionOptions::from_json(const json::Value& cfg) {
    AdmissionOptions opts;
    if (!cfg.is_object()) return opts;

    if (cfg["weights"].is_array()) {
        std::vector<std::uint32_t> weights;
        for (std::size_t i = 0; i < cfg["weights"].size() && i < kNumClasses; ++i) {
            const auto w = cfg["weights"].at(i).as_int(1);
            weights.push_back(static_cast<std::uint32_t>(std::max<std::int64_t>(1, w)));
        }
        if (!weights.empty()) {
            while (weights.size() < kNumClasses) weights.push_back(1);
            opts.weights = std::move(weights);
        }
    }
    if (cfg["slowdown_inflight"].is_number())
        opts.slowdown_inflight =
            static_cast<std::uint32_t>(std::max<std::int64_t>(1, cfg["slowdown_inflight"].as_int()));
    if (cfg["shed_inflight"].is_number())
        opts.shed_inflight =
            static_cast<std::uint32_t>(std::max<std::int64_t>(1, cfg["shed_inflight"].as_int()));
    if (cfg["retry_after_ms"].is_number())
        opts.retry_after_ms =
            static_cast<std::uint32_t>(std::max<std::int64_t>(1, cfg["retry_after_ms"].as_int()));
    if (cfg["slowdown_min_class"].is_string()) {
        if (auto cls = parse_class(cfg["slowdown_min_class"].as_string())) {
            opts.slowdown_min_class = *cls;
        }
    }
    if (cfg["max_slowdown_ms"].is_number())
        opts.max_slowdown_ms =
            static_cast<std::uint32_t>(std::max<std::int64_t>(0, cfg["max_slowdown_ms"].as_int()));

    auto parse_limit = [](const json::Value& v) {
        TenantLimit limit;
        limit.rate = std::max(0.0, v["rate"].as_double());
        limit.burst = v["burst"].is_number() ? std::max(1.0, v["burst"].as_double())
                                             : std::max(1.0, limit.rate);
        return limit;
    };
    if (cfg["default_limit"].is_object()) opts.default_limit = parse_limit(cfg["default_limit"]);
    if (cfg["tenants"].is_object()) {
        // Walk the tenant table via dump/parse-free access: json::Object is a
        // std::map but the const API only exposes operator[], so go through a
        // mutable copy.
        json::Value tenants = cfg["tenants"];
        for (const auto& [name, limit] : tenants.object()) {
            if (limit.is_object()) opts.tenant_limits[name] = parse_limit(limit);
        }
    }
    return opts;
}

// ---- LatencyHist ------------------------------------------------------------

namespace {

std::size_t bucket_index_us(double us) noexcept {
    if (us < 1.0) return 0;
    const auto idx = static_cast<std::size_t>(std::log2(us)) + 1;
    return std::min(idx, LatencyHist::kBuckets - 1);
}

double bucket_upper_us(std::size_t idx) noexcept {
    if (idx == 0) return 1.0;
    return std::ldexp(1.0, static_cast<int>(idx));
}

}  // namespace

void LatencyHist::observe_us(double us) noexcept {
    buckets_[bucket_index_us(us)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    double sum = sum_.load(std::memory_order_relaxed);
    while (!sum_.compare_exchange_weak(sum, sum + us, std::memory_order_relaxed)) {}
}

double LatencyHist::mean_us() const noexcept {
    const auto n = count_.load(std::memory_order_relaxed);
    return n == 0 ? 0.0 : sum_.load(std::memory_order_relaxed) / static_cast<double>(n);
}

double LatencyHist::quantile_upper_bound_us(double q) const noexcept {
    const auto n = count_.load(std::memory_order_relaxed);
    if (n == 0) return 0.0;
    const auto target = static_cast<std::uint64_t>(q * static_cast<double>(n));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
        seen += buckets_[i].load(std::memory_order_relaxed);
        if (seen > target) return bucket_upper_us(i);
    }
    return bucket_upper_us(kBuckets - 1);
}

json::Value LatencyHist::to_json() const {
    auto v = json::Value::make_object();
    v["count"] = count();
    v["mean_us"] = mean_us();
    v["p50_us"] = quantile_upper_bound_us(0.50);
    v["p99_us"] = quantile_upper_bound_us(0.99);
    return v;
}

// ---- AdmissionController ----------------------------------------------------

AdmissionController::AdmissionController(AdmissionOptions opts) : opts_(std::move(opts)) {
    if (opts_.weights.size() < kNumClasses) opts_.weights.resize(kNumClasses, 1);
    for (auto& w : opts_.weights) w = std::max<std::uint32_t>(1, w);
}

std::optional<std::uint8_t> AdmissionController::normalize_class(std::uint8_t cls) noexcept {
    if (cls == kClassUnset) return kClassBatch;  // legacy / unclassified senders
    if (cls >= kNumClasses) return std::nullopt;
    return cls;
}

AdmissionController::Counters& AdmissionController::provider_counters(std::uint16_t provider) {
    std::lock_guard<std::mutex> lock(providers_mutex_);
    auto& slot = per_provider_[provider];
    if (!slot) slot = std::make_unique<Counters>();
    return *slot;
}

TokenBucket* AdmissionController::bucket_for(const std::string& tenant) {
    std::lock_guard<std::mutex> lock(buckets_mutex_);
    auto it = buckets_.find(tenant);
    if (it != buckets_.end()) return it->second.get();

    TenantLimit limit = opts_.default_limit;
    if (auto lim = opts_.tenant_limits.find(tenant); lim != opts_.tenant_limits.end()) {
        limit = lim->second;
    }
    if (limit.rate <= 0) {
        buckets_.emplace(tenant, nullptr);  // unlimited: cache the decision
        return nullptr;
    }
    auto bucket = std::make_unique<TokenBucket>(limit.rate, std::max(1.0, limit.burst));
    TokenBucket* raw = bucket.get();
    buckets_.emplace(tenant, std::move(bucket));
    return raw;
}

Status AdmissionController::admit(std::uint16_t provider, const std::string& tenant,
                                  std::uint8_t cls, std::uint32_t budget_ms,
                                  Clock::time_point arrival) {
    Counters& pc = provider_counters(provider);

    // Malformed stamps are rejected before any resource is consumed. The
    // wire can carry arbitrary bytes (see fuzz_test); a bad stamp must be a
    // clean InvalidArgument, never a crash or a mis-bucketed request.
    const auto norm = normalize_class(cls);
    if (!norm || tenant.size() > kMaxTenantLen) {
        pc.malformed.fetch_add(1, std::memory_order_relaxed);
        total_.malformed.fetch_add(1, std::memory_order_relaxed);
        return Status::InvalidArgument(!norm ? "qos: priority class out of range"
                                             : "qos: tenant name too long");
    }
    const std::uint8_t klass = *norm;

    // Expired on arrival: the client's deadline budget ran out in transit
    // (or in the socket buffer). Dropping here keeps dead work away from the
    // backend entirely.
    if (budget_ms > 0 && Clock::now() >= arrival + std::chrono::milliseconds(budget_ms)) {
        pc.expired_on_arrival.fetch_add(1, std::memory_order_relaxed);
        total_.expired_on_arrival.fetch_add(1, std::memory_order_relaxed);
        return Status::DeadlineExceeded("qos: deadline expired before dispatch");
    }

    if (klass != kClassControl) {
        // Tier 2 shed: queue depth says the service is past saturation.
        const auto inflight = inflight_.load(std::memory_order_relaxed);
        if (inflight >= opts_.shed_inflight) {
            pc.shed.fetch_add(1, std::memory_order_relaxed);
            total_.shed.fetch_add(1, std::memory_order_relaxed);
            return make_overloaded(opts_.retry_after_ms, "qos: inflight limit reached");
        }
        // Per-tenant token bucket.
        if (TokenBucket* bucket = bucket_for(tenant)) {
            if (auto wait_ms = bucket->try_take(Clock::now())) {
                pc.shed.fetch_add(1, std::memory_order_relaxed);
                total_.shed.fetch_add(1, std::memory_order_relaxed);
                return make_overloaded(*wait_ms, "qos: tenant rate limit");
            }
        }
    }

    inflight_.fetch_add(1, std::memory_order_relaxed);
    pc.admitted.fetch_add(1, std::memory_order_relaxed);
    total_.admitted.fetch_add(1, std::memory_order_relaxed);
    admitted_by_class_[klass].fetch_add(1, std::memory_order_relaxed);
    return Status::OK();
}

StartVerdict AdmissionController::on_start(std::uint16_t provider, std::uint8_t cls,
                                           std::uint32_t budget_ms, Clock::time_point arrival,
                                           Clock::time_point enqueued) {
    const std::uint8_t klass = normalize_class(cls).value_or(kClassBatch);
    const auto now = Clock::now();
    const double queue_us =
        std::chrono::duration<double, std::micro>(now - enqueued).count();
    queue_delay_[klass].observe_us(std::max(0.0, queue_us));

    if (budget_ms > 0 && now >= arrival + std::chrono::milliseconds(budget_ms)) {
        Counters& pc = provider_counters(provider);
        pc.expired_in_queue.fetch_add(1, std::memory_order_relaxed);
        total_.expired_in_queue.fetch_add(1, std::memory_order_relaxed);
        inflight_.fetch_sub(1, std::memory_order_relaxed);
        return StartVerdict::kExpiredInQueue;
    }
    return StartVerdict::kRun;
}

void AdmissionController::on_complete(std::uint8_t cls, double exec_us) {
    const std::uint8_t klass = normalize_class(cls).value_or(kClassBatch);
    exec_time_[klass].observe_us(std::max(0.0, exec_us));
    inflight_.fetch_sub(1, std::memory_order_relaxed);
}

bool AdmissionController::should_slow(std::uint8_t cls) const noexcept {
    const std::uint8_t klass = normalize_class(cls).value_or(kClassBatch);
    if (klass < opts_.slowdown_min_class) return false;
    return inflight_.load(std::memory_order_relaxed) >= opts_.slowdown_inflight;
}

void AdmissionController::slowdown_pause(std::uint8_t cls) {
    if (!should_slow(cls)) return;
    total_.slowdowns.fetch_add(1, std::memory_order_relaxed);
    const auto give_up = Clock::now() + std::chrono::milliseconds(opts_.max_slowdown_ms);
    while (should_slow(cls) && Clock::now() < give_up) {
        abt::yield();  // let higher classes use the xstream
    }
}

json::Value AdmissionController::Counters::to_json() const {
    auto v = json::Value::make_object();
    v["admitted"] = admitted.load(std::memory_order_relaxed);
    v["shed"] = shed.load(std::memory_order_relaxed);
    v["expired_on_arrival"] = expired_on_arrival.load(std::memory_order_relaxed);
    v["expired_in_queue"] = expired_in_queue.load(std::memory_order_relaxed);
    v["malformed"] = malformed.load(std::memory_order_relaxed);
    v["slowdowns"] = slowdowns.load(std::memory_order_relaxed);
    return v;
}

json::Value AdmissionController::stats_json(std::uint16_t provider) const {
    auto v = const_cast<AdmissionController*>(this)->provider_counters(provider).to_json();
    v["inflight"] = static_cast<std::uint64_t>(inflight());
    auto classes = json::Value::make_object();
    for (unsigned c = 0; c < kNumClasses; ++c) {
        auto entry = json::Value::make_object();
        entry["admitted"] = admitted_by_class_[c].load(std::memory_order_relaxed);
        entry["queue_delay"] = queue_delay_[c].to_json();
        entry["exec_time"] = exec_time_[c].to_json();
        classes[std::string(class_name(static_cast<std::uint8_t>(c)))] = std::move(entry);
    }
    v["classes"] = std::move(classes);
    auto buckets = json::Value::make_object();
    {
        std::lock_guard<std::mutex> lock(buckets_mutex_);
        for (const auto& [tenant, bucket] : buckets_) {
            if (bucket) buckets[tenant] = bucket->level();
        }
    }
    v["token_buckets"] = std::move(buckets);
    return v;
}

json::Value AdmissionController::stats_json() const {
    auto v = total_.to_json();
    v["inflight"] = static_cast<std::uint64_t>(inflight());
    return v;
}

}  // namespace hep::qos

// Wire-level QoS vocabulary shared by clients, the RPC substrate and the
// server-side admission controller (src/qos/admission.hpp).
//
// Every RPC carries a QoS stamp in its wire header: the tenant it belongs
// to, a priority class, and the remaining deadline budget the client armed
// for the call. Servers use the stamp to (a) schedule the handler ULT in a
// weighted-fair priority pool, (b) rate-limit tenants with token buckets,
// and (c) drop requests whose deadline already expired instead of burning a
// handler on dead work.
//
// This header is dependency-free on purpose: rpc/message.hpp includes it to
// define the wire fields, so it must not pull in abt/margo/symbio.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "common/status.hpp"

namespace hep::qos {

/// Priority classes, highest priority first. Class 0 is reserved for
/// control-plane traffic (replication ships, failover probes, group
/// bootstrap): it is exempt from token buckets and shedding so failover can
/// never starve behind tenant load.
enum PriorityClass : std::uint8_t {
    kClassControl = 0,      // replication / failover / membership
    kClassInteractive = 1,  // latency-sensitive point ops (PEP gets, puts)
    kClassBatch = 2,        // scans, queries, prefetch fills
    kClassBulk = 3,         // saturating ingest (write batches, loaders)
};
inline constexpr unsigned kNumClasses = 4;

/// Wire value meaning "the sender did not classify this call"; the endpoint
/// substitutes its default tag (see rpc::Endpoint::set_default_qos).
inline constexpr std::uint8_t kClassUnset = 0xFF;

/// Longest tenant name the server accepts; longer ones are rejected as
/// malformed before any handler runs.
inline constexpr std::size_t kMaxTenantLen = 64;

[[nodiscard]] inline std::string_view class_name(std::uint8_t cls) noexcept {
    switch (cls) {
        case kClassControl: return "control";
        case kClassInteractive: return "interactive";
        case kClassBatch: return "batch";
        case kClassBulk: return "bulk";
        default: return "unset";
    }
}

/// Parse a class from its config-file spelling; empty optional on garbage.
[[nodiscard]] inline std::optional<std::uint8_t> parse_class(std::string_view name) noexcept {
    if (name == "control") return kClassControl;
    if (name == "interactive") return kClassInteractive;
    if (name == "batch") return kClassBatch;
    if (name == "bulk") return kClassBulk;
    return std::nullopt;
}

/// The per-call classification a client attaches to an RPC. A
/// default-constructed tag means "unclassified": the endpoint fills in its
/// connection-wide default before the message hits the wire.
struct QosTag {
    std::string tenant;                 // "" = unclassified
    std::uint8_t cls = kClassUnset;     // PriorityClass or kClassUnset

    [[nodiscard]] bool set() const noexcept { return cls != kClassUnset; }
};

// ---- Overloaded status + retry-after hint ----------------------------------
//
// A shedding server answers Status::Overloaded whose message carries a
// machine-readable retry-after hint. The client retry path parses the hint
// and waits that long (instead of its generic exponential backoff) before
// re-issuing, and trips a per-server circuit breaker so a shedding server is
// not hammered in the meantime.

inline constexpr std::string_view kRetryAfterKey = "retry_after_ms=";

/// Build the Overloaded status a shedding server responds with.
[[nodiscard]] inline Status make_overloaded(std::uint32_t retry_after_ms,
                                            std::string_view why = "server overloaded") {
    std::string msg(why);
    msg += "; ";
    msg += kRetryAfterKey;
    msg += std::to_string(retry_after_ms);
    return Status::Overloaded(std::move(msg));
}

/// Extract the retry-after hint from an Overloaded status (empty optional
/// when the status is not Overloaded or carries no hint).
[[nodiscard]] inline std::optional<std::uint32_t> retry_after_ms(const Status& st) noexcept {
    if (st.code() != StatusCode::kOverloaded) return std::nullopt;
    const std::string& msg = st.message();
    const auto pos = msg.find(kRetryAfterKey);
    if (pos == std::string::npos) return std::nullopt;
    std::uint64_t value = 0;
    bool any = false;
    for (std::size_t i = pos + kRetryAfterKey.size(); i < msg.size(); ++i) {
        const char c = msg[i];
        if (c < '0' || c > '9') break;
        value = value * 10 + static_cast<std::uint64_t>(c - '0');
        any = true;
        if (value > 0xFFFFFFFFull) return std::nullopt;
    }
    if (!any) return std::nullopt;
    return static_cast<std::uint32_t>(value);
}

}  // namespace hep::qos

// Client-side QoS: per-DataStore classification policy, a per-server circuit
// breaker for Overloaded responses, and client-local shed/retry counters.
//
// The client stamps every RPC from its QosPolicy (tenant name + a class per
// operation kind); the yokan DatabaseHandle retry path consults the breaker
// before issuing and feeds it every Overloaded response, so a shedding server
// gets a quiet period of exactly its own retry-after hint instead of an
// instant retry storm.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "common/json.hpp"
#include "common/status.hpp"
#include "qos/context.hpp"

namespace hep::qos {

/// How a client classifies its operations. Parsed from the DataStore config's
/// "qos" block; every field is optional and falls back to the defaults below.
struct QosPolicy {
    std::string tenant = "default";
    std::uint8_t point_class = kClassInteractive;  // get/put/exists/length/erase
    std::uint8_t scan_class = kClassBatch;         // scans, list, count, queries
    std::uint8_t bulk_class = kClassBulk;          // write batches, multi ops
    /// Cap on Overloaded-driven retries per op (on top of failover retries).
    std::uint32_t max_overload_retries = 8;
    /// Clamp applied to server retry-after hints (defensive: a bad hint must
    /// not park the client for minutes).
    std::uint32_t max_retry_after_ms = 1000;

    static QosPolicy from_json(const json::Value& cfg);
    [[nodiscard]] json::Value to_json() const;
};

/// Per-server circuit breaker. While a server's breaker is open, calls to it
/// fail fast locally with the same Overloaded status (remaining open window
/// as the retry-after hint) instead of going to the wire.
class CircuitBreaker {
  public:
    using Clock = std::chrono::steady_clock;

    /// Record an Overloaded response from `server`: open its breaker for the
    /// server-provided retry-after window.
    void trip(const std::string& server, std::uint32_t retry_after_ms);

    /// Milliseconds until `server`'s breaker closes; empty if closed now.
    [[nodiscard]] std::optional<std::uint32_t> open_for(const std::string& server) const;

    /// Successful response: close the breaker immediately.
    void reset(const std::string& server);

    [[nodiscard]] std::uint64_t trips() const noexcept {
        return trips_.load(std::memory_order_relaxed);
    }

  private:
    mutable std::mutex mutex_;
    std::map<std::string, Clock::time_point> open_until_;
    std::atomic<std::uint64_t> trips_{0};
};

/// Shared per-DataStore client QoS state: the policy, the breaker and the
/// counters surfaced through the "qos/client" symbio source.
class ClientQos {
  public:
    explicit ClientQos(QosPolicy policy) : policy_(std::move(policy)) {}

    [[nodiscard]] const QosPolicy& policy() const noexcept { return policy_; }
    [[nodiscard]] CircuitBreaker& breaker() noexcept { return breaker_; }

    [[nodiscard]] QosTag point_tag() const { return {policy_.tenant, policy_.point_class}; }
    [[nodiscard]] QosTag scan_tag() const { return {policy_.tenant, policy_.scan_class}; }
    [[nodiscard]] QosTag bulk_tag() const { return {policy_.tenant, policy_.bulk_class}; }

    void note_overloaded() { overloaded_.fetch_add(1, std::memory_order_relaxed); }
    void note_retry_success() { retry_successes_.fetch_add(1, std::memory_order_relaxed); }
    void note_fast_fail() { fast_fails_.fetch_add(1, std::memory_order_relaxed); }

    [[nodiscard]] std::uint64_t overloaded_seen() const noexcept {
        return overloaded_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t retry_successes() const noexcept {
        return retry_successes_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t fast_fails() const noexcept {
        return fast_fails_.load(std::memory_order_relaxed);
    }

    [[nodiscard]] json::Value stats_json() const;

  private:
    QosPolicy policy_;
    CircuitBreaker breaker_;
    std::atomic<std::uint64_t> overloaded_{0};       // Overloaded responses seen
    std::atomic<std::uint64_t> retry_successes_{0};  // ops that succeeded after a shed
    std::atomic<std::uint64_t> fast_fails_{0};       // calls skipped by an open breaker
};

}  // namespace hep::qos

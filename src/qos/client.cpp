#include "qos/client.hpp"

#include <algorithm>

namespace hep::qos {

QosPolicy QosPolicy::from_json(const json::Value& cfg) {
    QosPolicy policy;
    if (!cfg.is_object()) return policy;
    if (cfg["tenant"].is_string() && !cfg["tenant"].as_string().empty()) {
        policy.tenant = cfg["tenant"].as_string().substr(0, kMaxTenantLen);
    }
    auto pick = [](const json::Value& v, std::uint8_t fallback) {
        if (v.is_string()) {
            if (auto cls = parse_class(v.as_string())) return *cls;
        }
        return fallback;
    };
    policy.point_class = pick(cfg["point_class"], policy.point_class);
    policy.scan_class = pick(cfg["scan_class"], policy.scan_class);
    policy.bulk_class = pick(cfg["bulk_class"], policy.bulk_class);
    if (cfg["max_overload_retries"].is_number()) {
        policy.max_overload_retries = static_cast<std::uint32_t>(
            std::max<std::int64_t>(0, cfg["max_overload_retries"].as_int()));
    }
    if (cfg["max_retry_after_ms"].is_number()) {
        policy.max_retry_after_ms = static_cast<std::uint32_t>(
            std::max<std::int64_t>(1, cfg["max_retry_after_ms"].as_int()));
    }
    return policy;
}

json::Value QosPolicy::to_json() const {
    auto v = json::Value::make_object();
    v["tenant"] = tenant;
    v["point_class"] = std::string(class_name(point_class));
    v["scan_class"] = std::string(class_name(scan_class));
    v["bulk_class"] = std::string(class_name(bulk_class));
    v["max_overload_retries"] = static_cast<std::uint64_t>(max_overload_retries);
    v["max_retry_after_ms"] = static_cast<std::uint64_t>(max_retry_after_ms);
    return v;
}

void CircuitBreaker::trip(const std::string& server, std::uint32_t retry_after_ms) {
    const auto until = Clock::now() + std::chrono::milliseconds(retry_after_ms);
    std::lock_guard<std::mutex> lock(mutex_);
    auto& slot = open_until_[server];
    if (until > slot) slot = until;
    trips_.fetch_add(1, std::memory_order_relaxed);
}

std::optional<std::uint32_t> CircuitBreaker::open_for(const std::string& server) const {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = open_until_.find(server);
    if (it == open_until_.end()) return std::nullopt;
    const auto now = Clock::now();
    if (now >= it->second) return std::nullopt;
    const auto left =
        std::chrono::duration_cast<std::chrono::milliseconds>(it->second - now).count();
    return static_cast<std::uint32_t>(std::max<std::int64_t>(1, left));
}

void CircuitBreaker::reset(const std::string& server) {
    std::lock_guard<std::mutex> lock(mutex_);
    open_until_.erase(server);
}

json::Value ClientQos::stats_json() const {
    auto v = json::Value::make_object();
    v["policy"] = policy_.to_json();
    v["overloaded_seen"] = overloaded_seen();
    v["retry_successes"] = retry_successes();
    v["breaker_fast_fails"] = fast_fails();
    v["breaker_trips"] = breaker_.trips();
    return v;
}

}  // namespace hep::qos

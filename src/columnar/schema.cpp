#include "columnar/schema.hpp"

#include <typeinfo>
#include <vector>

#include "nova/types.hpp"

namespace hep::columnar {

std::string_view to_string(MemberType t) noexcept {
    switch (t) {
        case MemberType::kUInt8: return "u8";
        case MemberType::kInt32: return "i32";
        case MemberType::kUInt32: return "u32";
        case MemberType::kInt64: return "i64";
        case MemberType::kUInt64: return "u64";
        case MemberType::kFloat32: return "f32";
        case MemberType::kFloat64: return "f64";
    }
    return "?";
}

Result<MemberType> member_type_from_htf(htf::ColumnType t) noexcept {
    switch (t) {
        case htf::ColumnType::kInt32: return MemberType::kInt32;
        case htf::ColumnType::kInt64: return MemberType::kInt64;
        case htf::ColumnType::kUInt32: return MemberType::kUInt32;
        case htf::ColumnType::kUInt64: return MemberType::kUInt64;
        case htf::ColumnType::kFloat32: return MemberType::kFloat32;
        case htf::ColumnType::kFloat64: return MemberType::kFloat64;
    }
    return Status::InvalidArgument("HTF column type has no columnar member type");
}

Status StructSchema::validate() const {
    if (members.empty()) return Status::InvalidArgument("schema has no members");
    if (members.size() > 1024) return Status::InvalidArgument("schema has too many members");
    for (const auto& m : members) {
        if (m.name.empty() || m.name.front() == '@') {
            return Status::InvalidArgument("schema member needs a plain name");
        }
        if (m.name.find('/') != std::string::npos) {
            return Status::InvalidArgument("schema member name must not contain '/'");
        }
        if (!valid_member_type(static_cast<std::uint8_t>(m.type))) {
            return Status::InvalidArgument("schema member has an unknown type");
        }
    }
    return Status::OK();
}

StructSchema nova_slice_schema() {
    StructSchema s;
    s.name = "nova::Slice";
    s.members = {
        {"index", MemberType::kUInt32},        {"nhits", MemberType::kUInt32},
        {"cal_e", MemberType::kFloat32},       {"vtx_x", MemberType::kFloat32},
        {"vtx_y", MemberType::kFloat32},       {"vtx_z", MemberType::kFloat32},
        {"track_len", MemberType::kFloat32},   {"epi0_score", MemberType::kFloat32},
        {"muon_score", MemberType::kFloat32},  {"cosmic_score", MemberType::kFloat32},
        {"time_ns", MemberType::kFloat32},     {"contained", MemberType::kUInt8},
    };
    return s;
}

SchemaRegistry SchemaRegistry::with_builtins() {
    SchemaRegistry r;
    // Same name product_type_name<std::vector<nova::Slice>>() produces — the
    // registry key must match the type component of the product keys the
    // write batch sees.
    r.register_schema(typeid(std::vector<nova::Slice>).name(), nova_slice_schema());
    return r;
}

}  // namespace hep::columnar

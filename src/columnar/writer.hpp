// ColumnWriter: the write-side half of the columnar layout.
//
// Sits inside a WriteBatch (see hepnos/write_batch.cpp) and observes every
// product put the batch accepts. Event-level products whose TYPE has a
// registered schema are buffered per (target database, dataset, product);
// when a buffer reaches chunk_rows events it is shredded into compressed
// column chunks which are emitted back into the SAME batch group — the
// chunks ride the normal zero-copy put_multi/put_packed path and land
// co-located with the blobs they mirror. Unschematized or non-parsing
// products are simply left alone: they stay blob-only and the scan's blob
// fallback covers them (the compatibility contract in chunk.hpp).
//
// flush() shreds leftover buffers that still hold >= min_batch events;
// smaller remainders are dropped (blob-only) rather than producing chunks
// whose metadata overhead outweighs their columns.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "columnar/chunk.hpp"
#include "columnar/schema.hpp"
#include "common/buffer.hpp"
#include "common/json.hpp"
#include "yokan/client.hpp"

namespace hep::columnar {

/// The bedrock "columnar" knob, advertised verbatim in the connection
/// document so every client of a deployment shreds the same way.
struct WriterOptions {
    bool enabled = false;
    std::uint64_t chunk_rows = 256;  // events per chunk
    std::uint64_t min_batch = 16;    // smallest chunk worth emitting at flush
    std::string compression = "auto";

    static WriterOptions from_json(const json::Value& cfg);
    [[nodiscard]] json::Value to_json() const;
};

/// Client-side shredding counters; exposed through symbio as
/// "columnar/client".
struct WriterCounters {
    std::atomic<std::uint64_t> events_buffered{0};
    std::atomic<std::uint64_t> events_shredded{0};
    std::atomic<std::uint64_t> events_dropped{0};  // < min_batch at flush
    std::atomic<std::uint64_t> events_unschematized{0};
    std::atomic<std::uint64_t> chunks_written{0};
    std::atomic<std::uint64_t> columns_written{0};
    std::atomic<std::uint64_t> bytes_raw{0};
    std::atomic<std::uint64_t> bytes_compressed{0};

    [[nodiscard]] json::Value snapshot() const;
};

class ColumnWriter {
  public:
    /// Emits one chunk key/value into the owning batch, targeted at the SAME
    /// database as the products it mirrors.
    using Emit = std::function<void(const yokan::DatabaseHandle&, std::string, hep::Buffer)>;

    ColumnWriter(WriterOptions options, SchemaRegistry registry,
                 std::shared_ptr<WriterCounters> counters, Emit emit);

    /// Observe a product put targeted at `handle`. Ignores keys that are not
    /// event-level product keys of a registered type (including chunk keys
    /// the writer itself emitted). The Buffer is retained until the batch
    /// containing its event shreds or drops.
    void observe(const yokan::DatabaseHandle& handle, std::string_view key,
                 const hep::Buffer& value);

    /// Shred every buffer holding >= min_batch events; drop the rest.
    void flush();

    [[nodiscard]] const WriterOptions& options() const noexcept { return options_; }

  private:
    struct Buffered {
        std::uint64_t run, subrun, event;
        hep::Buffer blob;
    };
    struct Group {
        yokan::DatabaseHandle handle;
        const StructSchema* schema = nullptr;
        std::string uuid;    // raw dataset uuid bytes
        std::string suffix;  // "<label>#<type>"
        std::vector<Buffered> events;
    };

    void emit_chunk(Group& group);

    WriterOptions options_;
    SchemaRegistry registry_;
    std::shared_ptr<WriterCounters> counters_;
    Emit emit_;
    std::map<std::string, Group> groups_;  // keyed by target + dataset + product
    std::uint64_t next_chunk_id_;
};

}  // namespace hep::columnar

// Column chunks: the storage unit of the columnar layout.
//
// A chunk shreds the serialized std::vector<T> products of up to chunk_rows
// EVENTS into one compressed column per member plus a metadata record, all
// stored as ordinary keys in the SAME products database as the blobs they
// mirror (placement therefore co-locates a chunk with its events):
//
//   col/<dataset uuid><label>#<type>/@meta/<chunkid BE64>   -> ChunkMeta
//   col/<dataset uuid><label>#<type>/<member>/<chunkid BE64>-> ColumnBlock
//
// The "col/" prefix keeps chunks disjoint from the uuid-prefixed container
// and product key ranges, so every pre-existing scan (blob pushdown, event
// iteration, migration) is oblivious to them. Chunks are an acceleration
// copy, not the source of truth: the blob product remains stored and
// readable, which is the blob-fallback compatibility contract — a reader
// that has never heard of chunks sees exactly the data it always did.
//
// Bit-identity: shred() parses each blob strictly against the schema
// (u64 LE row count + rows of flat little-endian members — the src/serial
// wire format for vectors of flat structs) and reassemble_event() emits the
// exact original bytes, byte for byte. A blob that does not parse exactly is
// rejected and stays blob-only.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "columnar/schema.hpp"
#include "common/compression.hpp"
#include "common/status.hpp"

namespace hep::columnar {

inline constexpr std::string_view kColPrefix = "col/";
inline constexpr std::string_view kMetaMember = "@meta";
/// Dataset UUIDs are raw 16-byte strings inside keys.
inline constexpr std::size_t kUuidBytes = 16;

/// One compressed column payload: `count` elements of `width` bytes,
/// compressed with `codec`; `checksum` is fnv1a64 over the UNcompressed
/// bytes, verified after every decode.
struct ColumnBlock {
    std::uint8_t codec = 0;  // compress::Codec
    std::uint8_t width = 0;  // 1, 4 or 8
    std::uint64_t count = 0;
    std::uint64_t checksum = 0;
    std::string payload;

    template <typename A>
    void serialize(A& ar, unsigned /*version*/) {
        ar & codec & width & count & checksum & payload;
    }
    bool operator==(const ColumnBlock&) const = default;
};

/// How the writer picks codecs: auto tries them all per column and keeps the
/// smallest; the forced modes exist for the bedrock "compression" knob.
enum class CompressionMode : std::uint8_t {
    kAuto = 0,
    kRaw = 1,
    kVarint = 2,
    kDelta = 3,
};
Result<CompressionMode> parse_compression_mode(std::string_view name) noexcept;
std::string_view to_string(CompressionMode mode) noexcept;

/// Compress `count` elements of `width` bytes per `mode`.
ColumnBlock encode_block(const void* data, std::uint64_t count, std::size_t width,
                         CompressionMode mode);

/// Decompress into `out` (count*width bytes). Rejects bad codec/width,
/// payloads over the codec's size bound, non-exact consumption and checksum
/// mismatches — a corrupt block never crashes and never decodes silently.
Status decode_block(const ColumnBlock& block, void* out) noexcept;

/// Per-chunk metadata: the schema the columns follow plus the event
/// directory (coordinates and per-event row counts), itself stored as
/// compressed columns — metadata cost is what the pruned scan always pays,
/// so it is kept to a couple of bytes per event.
struct ChunkMeta {
    std::uint32_t format = 1;
    StructSchema schema;
    std::uint64_t num_events = 0;
    std::uint64_t total_rows = 0;
    ColumnBlock runs;        // u64 per event
    ColumnBlock subruns;     // u64 per event
    ColumnBlock events;      // u64 per event
    ColumnBlock row_counts;  // u32 per event

    template <typename A>
    void serialize(A& ar, unsigned /*version*/) {
        ar & format & schema & num_events & total_rows & runs & subruns & events & row_counts;
    }
};

/// ChunkMeta with the event directory decoded and offset-summed — what the
/// scan and the reassembler actually walk.
struct DecodedMeta {
    ChunkMeta meta;
    std::vector<std::uint64_t> runs;
    std::vector<std::uint64_t> subruns;
    std::vector<std::uint64_t> events;
    std::vector<std::uint32_t> row_counts;
    std::vector<std::uint64_t> row_offsets;  // prefix sums, size num_events+1
};

/// Parse + decode a serialized ChunkMeta value. Total: corrupt input yields
/// Corruption, never a crash.
Result<DecodedMeta> decode_meta(std::string_view value);

// ---- keys ------------------------------------------------------------------

/// "col/<uuid><suffix>/<member>/<chunkid BE64>"; `suffix` is the
/// "<label>#<type>" product-key tail, `uuid` the raw 16 dataset bytes.
std::string chunk_key(std::string_view uuid, std::string_view suffix, std::string_view member,
                      std::uint64_t chunk_id);

/// Scan prefix covering every @meta key of (dataset-prefix, product). The
/// dataset prefix may be shorter than a full uuid (it is whatever OpenReq
/// scopes the scan with); the per-key matcher below checks full structure.
std::string meta_scan_prefix(std::string_view dataset_prefix);

/// True iff `key` is a chunk @meta key for the given product suffix;
/// extracts the dataset uuid and chunk id.
bool parse_meta_key(std::string_view key, std::string_view suffix, std::string_view& uuid,
                    std::uint64_t& chunk_id) noexcept;

// ---- shred / reassemble ----------------------------------------------------

/// One event's product blob queued for shredding.
struct EventBlob {
    std::uint64_t run = 0;
    std::uint64_t subrun = 0;
    std::uint64_t event = 0;
    std::string_view blob;  // serialized std::vector<RowStruct> bytes
};

struct ShreddedChunk {
    ChunkMeta meta;
    /// Member-name -> compressed column, in schema member order.
    std::vector<std::pair<std::string, ColumnBlock>> columns;
    std::uint64_t raw_bytes = 0;         // uncompressed column bytes
    std::uint64_t compressed_bytes = 0;  // stored payload bytes
};

/// Shred a batch of blobs per `schema`. Every blob must parse exactly as
/// u64 count + count*row_width bytes; otherwise InvalidArgument (the caller
/// leaves those events blob-only).
Result<ShreddedChunk> shred(const StructSchema& schema, const std::vector<EventBlob>& batch,
                            CompressionMode mode);

/// Decoded member columns of one chunk, raw bytes per member (schema order,
/// total_rows elements each). Missing members are empty strings.
using RawColumns = std::vector<std::string>;

/// Reassemble the original serialized blob of event `index` bit-identically
/// from fully decoded raw columns (every member present).
Result<std::string> reassemble_event(const DecodedMeta& meta, const RawColumns& columns,
                                     std::size_t index);

/// Widen one decoded member column (raw little-endian `type` elements) into
/// doubles rows [begin, end). Conversions are exact, matching
/// nova::slice_fields — comparisons over the widened values agree bit for
/// bit with comparisons over the original members.
void widen_to_doubles(MemberType type, const std::string& raw, std::size_t begin,
                      std::size_t end, double* out) noexcept;

}  // namespace hep::columnar

#include "columnar/chunk.hpp"

#include <cstring>

#include "common/endian.hpp"
#include "common/hash.hpp"
#include "serial/archive.hpp"

namespace hep::columnar {

Result<CompressionMode> parse_compression_mode(std::string_view name) noexcept {
    if (name.empty() || name == "auto") return CompressionMode::kAuto;
    if (name == "raw") return CompressionMode::kRaw;
    if (name == "varint") return CompressionMode::kVarint;
    if (name == "delta") return CompressionMode::kDelta;
    return Status::InvalidArgument("unknown compression mode '" + std::string(name) + "'");
}

std::string_view to_string(CompressionMode mode) noexcept {
    switch (mode) {
        case CompressionMode::kAuto: return "auto";
        case CompressionMode::kRaw: return "raw";
        case CompressionMode::kVarint: return "varint";
        case CompressionMode::kDelta: return "delta";
    }
    return "?";
}

ColumnBlock encode_block(const void* data, std::uint64_t count, std::size_t width,
                         CompressionMode mode) {
    ColumnBlock block;
    block.width = static_cast<std::uint8_t>(width);
    block.count = count;
    block.checksum = fnv1a64(std::string_view(static_cast<const char*>(data), count * width));
    if (mode == CompressionMode::kAuto) {
        auto [codec, payload] = compress::compress_auto(data, count, width);
        block.codec = static_cast<std::uint8_t>(codec);
        block.payload = std::move(payload);
        return block;
    }
    const auto codec = static_cast<compress::Codec>(static_cast<std::uint8_t>(mode) - 1);
    auto payload = compress::compress(codec, data, count, width);
    if (payload.ok()) {
        block.codec = static_cast<std::uint8_t>(codec);
        block.payload = std::move(*payload);
    } else {
        block.codec = static_cast<std::uint8_t>(compress::Codec::kRaw);
        block.payload.assign(static_cast<const char*>(data), count * width);
    }
    return block;
}

Status decode_block(const ColumnBlock& block, void* out) noexcept {
    if (!compress::valid_codec(block.codec)) {
        return Status::Corruption("column block carries an unknown codec");
    }
    if (!compress::valid_width(block.width)) {
        return Status::Corruption("column block carries an unsupported width");
    }
    Status st = compress::decompress(static_cast<compress::Codec>(block.codec), block.payload,
                                     block.count, block.width, out);
    if (!st.ok()) return st;
    const std::string_view raw(static_cast<const char*>(out), block.count * block.width);
    if (fnv1a64(raw) != block.checksum) {
        return Status::Corruption("column block checksum mismatch");
    }
    return Status::OK();
}

namespace {

/// Bounded elements per block: a hostile count must not drive a giant
/// allocation before the payload size bound rejects it. 2^28 rows * 8 bytes
/// = 2 GiB is far above any real chunk.
constexpr std::uint64_t kMaxBlockElems = 1ull << 28;

Result<std::string> decode_block_to_string(const ColumnBlock& block) {
    if (block.count > kMaxBlockElems) {
        return Status::Corruption("column block claims an absurd element count");
    }
    // Reject before allocating: a truncated payload cannot possibly hold
    // count elements of any codec (each element costs >= 1 byte, raw costs
    // width) and an oversized one violates the codec bound.
    if (block.codec == static_cast<std::uint8_t>(compress::Codec::kRaw)) {
        if (block.payload.size() != block.count * block.width) {
            return Status::Corruption("raw column payload has wrong size");
        }
    } else if (block.payload.size() < block.count) {
        return Status::Corruption("column payload too short for its element count");
    }
    std::string raw;
    raw.resize(block.count * block.width);
    if (Status st = decode_block(block, raw.data()); !st.ok()) return st;
    return raw;
}

template <typename T>
Result<std::vector<T>> decode_block_typed(const ColumnBlock& block) {
    if (block.width != sizeof(T)) {
        return Status::Corruption("column block width does not match the expected type");
    }
    auto raw = decode_block_to_string(block);
    if (!raw.ok()) return raw.status();
    std::vector<T> out(block.count);
    if (block.count > 0) std::memcpy(out.data(), raw->data(), raw->size());
    return out;
}

}  // namespace

Result<DecodedMeta> decode_meta(std::string_view value) {
    ChunkMeta meta;
    try {
        serial::from_string(value, meta);
    } catch (const serial::SerializationError& e) {
        return Status::Corruption(std::string("chunk meta undecodable: ") + e.what());
    }
    if (meta.format != 1) {
        return Status::Corruption("chunk meta has unknown format " +
                                  std::to_string(meta.format));
    }
    if (Status st = meta.schema.validate(); !st.ok()) {
        return Status::Corruption("chunk meta schema invalid: " + st.to_string());
    }
    if (meta.num_events == 0 || meta.num_events > kMaxBlockElems) {
        return Status::Corruption("chunk meta has a bad event count");
    }
    if (meta.runs.count != meta.num_events || meta.subruns.count != meta.num_events ||
        meta.events.count != meta.num_events || meta.row_counts.count != meta.num_events) {
        return Status::Corruption("chunk meta directory columns disagree on length");
    }
    DecodedMeta out;
    auto runs = decode_block_typed<std::uint64_t>(meta.runs);
    if (!runs.ok()) return runs.status();
    auto subruns = decode_block_typed<std::uint64_t>(meta.subruns);
    if (!subruns.ok()) return subruns.status();
    auto events = decode_block_typed<std::uint64_t>(meta.events);
    if (!events.ok()) return events.status();
    auto counts = decode_block_typed<std::uint32_t>(meta.row_counts);
    if (!counts.ok()) return counts.status();
    out.runs = std::move(*runs);
    out.subruns = std::move(*subruns);
    out.events = std::move(*events);
    out.row_counts = std::move(*counts);
    out.row_offsets.resize(meta.num_events + 1);
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < out.row_counts.size(); ++i) {
        out.row_offsets[i] = total;
        total += out.row_counts[i];
    }
    out.row_offsets.back() = total;
    if (total != meta.total_rows) {
        return Status::Corruption("chunk meta row counts do not sum to total_rows");
    }
    out.meta = std::move(meta);
    return out;
}

// ---- keys ------------------------------------------------------------------

std::string chunk_key(std::string_view uuid, std::string_view suffix, std::string_view member,
                      std::uint64_t chunk_id) {
    std::string key;
    key.reserve(kColPrefix.size() + uuid.size() + suffix.size() + member.size() + 10);
    key.append(kColPrefix);
    key.append(uuid);
    key.append(suffix);
    key.push_back('/');
    key.append(member);
    key.push_back('/');
    append_be64(key, chunk_id);
    return key;
}

std::string meta_scan_prefix(std::string_view dataset_prefix) {
    std::string prefix(kColPrefix);
    prefix.append(dataset_prefix);
    return prefix;
}

bool parse_meta_key(std::string_view key, std::string_view suffix, std::string_view& uuid,
                    std::uint64_t& chunk_id) noexcept {
    // col/ + uuid(16) + suffix + '/' + @meta + '/' + BE64(8)
    const std::size_t want =
        kColPrefix.size() + kUuidBytes + suffix.size() + 1 + kMetaMember.size() + 1 + 8;
    if (key.size() != want) return false;
    if (key.substr(0, kColPrefix.size()) != kColPrefix) return false;
    std::size_t pos = kColPrefix.size();
    uuid = key.substr(pos, kUuidBytes);
    pos += kUuidBytes;
    if (key.substr(pos, suffix.size()) != suffix) return false;
    pos += suffix.size();
    if (key[pos] != '/') return false;
    ++pos;
    if (key.substr(pos, kMetaMember.size()) != kMetaMember) return false;
    pos += kMetaMember.size();
    if (key[pos] != '/') return false;
    ++pos;
    chunk_id = decode_be64(key.substr(pos, 8));
    return true;
}

// ---- shred / reassemble ----------------------------------------------------

Result<ShreddedChunk> shred(const StructSchema& schema, const std::vector<EventBlob>& batch,
                            CompressionMode mode) {
    if (Status st = schema.validate(); !st.ok()) return st;
    if (batch.empty()) return Status::InvalidArgument("cannot shred an empty batch");

    const std::size_t row_width = schema.row_width();
    std::uint64_t total_rows = 0;
    std::vector<std::uint32_t> row_counts;
    row_counts.reserve(batch.size());
    for (const auto& ev : batch) {
        if (ev.blob.size() < 8) {
            return Status::InvalidArgument("product blob shorter than its row count");
        }
        std::uint64_t count = 0;
        std::memcpy(&count, ev.blob.data(), 8);  // serial writes LE; we run LE
        if (ev.blob.size() != 8 + count * row_width) {
            return Status::InvalidArgument("product blob does not match the schema layout");
        }
        if (count > 0xFFFFFFFFull) {
            return Status::InvalidArgument("product has too many rows for a chunk");
        }
        row_counts.push_back(static_cast<std::uint32_t>(count));
        total_rows += count;
    }

    // Scatter: one flat little-endian array per member.
    std::vector<std::string> member_bytes(schema.members.size());
    for (std::size_t m = 0; m < schema.members.size(); ++m) {
        member_bytes[m].resize(total_rows * width_of(schema.members[m].type));
    }
    std::uint64_t row = 0;
    for (const auto& ev : batch) {
        const char* p = ev.blob.data() + 8;
        const std::uint64_t rows_here = (ev.blob.size() - 8) / row_width;
        for (std::uint64_t r = 0; r < rows_here; ++r, ++row) {
            for (std::size_t m = 0; m < schema.members.size(); ++m) {
                const std::size_t w = width_of(schema.members[m].type);
                std::memcpy(member_bytes[m].data() + row * w, p, w);
                p += w;
            }
        }
    }

    ShreddedChunk out;
    out.meta.schema = schema;
    out.meta.num_events = batch.size();
    out.meta.total_rows = total_rows;
    std::vector<std::uint64_t> runs, subruns, events;
    runs.reserve(batch.size());
    subruns.reserve(batch.size());
    events.reserve(batch.size());
    for (const auto& ev : batch) {
        runs.push_back(ev.run);
        subruns.push_back(ev.subrun);
        events.push_back(ev.event);
    }
    out.meta.runs = encode_block(runs.data(), runs.size(), 8, mode);
    out.meta.subruns = encode_block(subruns.data(), subruns.size(), 8, mode);
    out.meta.events = encode_block(events.data(), events.size(), 8, mode);
    out.meta.row_counts = encode_block(row_counts.data(), row_counts.size(), 4, mode);

    out.columns.reserve(schema.members.size());
    for (std::size_t m = 0; m < schema.members.size(); ++m) {
        const std::size_t w = width_of(schema.members[m].type);
        ColumnBlock block = encode_block(member_bytes[m].data(), total_rows, w, mode);
        out.raw_bytes += member_bytes[m].size();
        out.compressed_bytes += block.payload.size();
        out.columns.emplace_back(schema.members[m].name, std::move(block));
    }
    return out;
}

Result<std::string> reassemble_event(const DecodedMeta& meta, const RawColumns& columns,
                                     std::size_t index) {
    if (index >= meta.meta.num_events) {
        return Status::InvalidArgument("event index out of range for chunk");
    }
    const StructSchema& schema = meta.meta.schema;
    if (columns.size() != schema.members.size()) {
        return Status::InvalidArgument("reassembly needs every member column");
    }
    const std::uint64_t begin = meta.row_offsets[index];
    const std::uint64_t end = meta.row_offsets[index + 1];
    for (std::size_t m = 0; m < schema.members.size(); ++m) {
        if (columns[m].size() != meta.meta.total_rows * width_of(schema.members[m].type)) {
            return Status::Corruption("member column has the wrong decoded size");
        }
    }
    std::string blob;
    blob.resize(8 + (end - begin) * schema.row_width());
    const std::uint64_t count = end - begin;
    std::memcpy(blob.data(), &count, 8);  // LE, matching serial's vector prefix
    char* p = blob.data() + 8;
    for (std::uint64_t r = begin; r < end; ++r) {
        for (std::size_t m = 0; m < schema.members.size(); ++m) {
            const std::size_t w = width_of(schema.members[m].type);
            std::memcpy(p, columns[m].data() + r * w, w);
            p += w;
        }
    }
    return blob;
}

void widen_to_doubles(MemberType type, const std::string& raw, std::size_t begin,
                      std::size_t end, double* out) noexcept {
    const std::size_t w = width_of(type);
    const char* base = raw.data() + begin * w;
    switch (type) {
        case MemberType::kUInt8:
            for (std::size_t i = 0; i < end - begin; ++i) {
                out[i] = static_cast<unsigned char>(base[i]);
            }
            break;
        case MemberType::kInt32:
            for (std::size_t i = 0; i < end - begin; ++i) {
                std::int32_t v;
                std::memcpy(&v, base + i * 4, 4);
                out[i] = v;
            }
            break;
        case MemberType::kUInt32:
            for (std::size_t i = 0; i < end - begin; ++i) {
                std::uint32_t v;
                std::memcpy(&v, base + i * 4, 4);
                out[i] = v;
            }
            break;
        case MemberType::kInt64:
            for (std::size_t i = 0; i < end - begin; ++i) {
                std::int64_t v;
                std::memcpy(&v, base + i * 8, 8);
                out[i] = static_cast<double>(v);
            }
            break;
        case MemberType::kUInt64:
            for (std::size_t i = 0; i < end - begin; ++i) {
                std::uint64_t v;
                std::memcpy(&v, base + i * 8, 8);
                out[i] = static_cast<double>(v);
            }
            break;
        case MemberType::kFloat32:
            for (std::size_t i = 0; i < end - begin; ++i) {
                float v;
                std::memcpy(&v, base + i * 4, 4);
                out[i] = v;
            }
            break;
        case MemberType::kFloat64:
            for (std::size_t i = 0; i < end - begin; ++i) {
                std::memcpy(&out[i], base + i * 8, 8);
            }
            break;
    }
}

}  // namespace hep::columnar

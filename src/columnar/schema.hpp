// Column schemas for the columnar product codec (the RNTuple-style layout).
//
// A StructSchema describes one "row struct" — the element type of a
// std::vector<T> product — as an ordered list of fixed-width members. The
// order is load-bearing twice over: it is the member order of the serialized
// blob (src/serial writes arithmetic members in declaration order, flat and
// little-endian), AND the field numbering the query evaluators expose
// (member i of the schema is field i of the evaluator), which is what lets
// the vectorized scan feed decompressed columns straight into a
// FilterProgram.
//
// Schemas come from two places: built-ins registered in code (nova::Slice),
// and HTF schema introspection via dataloader::columnar_schema_for_group —
// the same machinery HDF2HEPnOS uses to deduce classes from files.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"
#include "htf/htf.hpp"

namespace hep::columnar {

/// Wire types a member can have. Matches what src/serial emits for the
/// corresponding C++ member: fixed width, little-endian, floats as IEEE bit
/// patterns. Append only — the values are stored inside chunk metadata.
enum class MemberType : std::uint8_t {
    kUInt8 = 1,
    kInt32 = 2,
    kUInt32 = 3,
    kInt64 = 4,
    kUInt64 = 5,
    kFloat32 = 6,
    kFloat64 = 7,
};

std::string_view to_string(MemberType t) noexcept;

inline constexpr std::size_t width_of(MemberType t) noexcept {
    switch (t) {
        case MemberType::kUInt8: return 1;
        case MemberType::kInt32:
        case MemberType::kUInt32:
        case MemberType::kFloat32: return 4;
        case MemberType::kInt64:
        case MemberType::kUInt64:
        case MemberType::kFloat64: return 8;
    }
    return 0;
}

inline constexpr bool valid_member_type(std::uint8_t t) noexcept {
    return t >= static_cast<std::uint8_t>(MemberType::kUInt8) &&
           t <= static_cast<std::uint8_t>(MemberType::kFloat64);
}

/// The HTF column type carrying the same wire representation. u8 members
/// have no HTF counterpart (HDF5 tables store them widened), so the mapping
/// is partial in that direction only.
Result<MemberType> member_type_from_htf(htf::ColumnType t) noexcept;

struct Member {
    std::string name;
    MemberType type = MemberType::kUInt8;

    template <typename A>
    void serialize(A& ar, unsigned /*version*/) {
        ar & name & type;
    }
    bool operator==(const Member&) const = default;
};

struct StructSchema {
    std::string name;  // diagnostic only, e.g. "nova::Slice"
    std::vector<Member> members;

    /// Serialized bytes of one row: the flat sum of member widths.
    [[nodiscard]] std::size_t row_width() const noexcept {
        std::size_t w = 0;
        for (const auto& m : members) w += width_of(m.type);
        return w;
    }

    /// A schema decoded from the wire must be structurally sound before any
    /// width arithmetic trusts it.
    [[nodiscard]] Status validate() const;

    template <typename A>
    void serialize(A& ar, unsigned /*version*/) {
        ar & name & members;
    }
    bool operator==(const StructSchema&) const = default;
};

/// Maps product TYPE names (the `type` component of a product key, i.e.
/// product_type_name<std::vector<T>>()) to the row schema of T. Only the
/// write side needs a registry — the scan side reads the schema out of each
/// chunk's metadata. Unregistered types simply stay blob-only.
class SchemaRegistry {
  public:
    void register_schema(std::string product_type, StructSchema schema) {
        schemas_[std::move(product_type)] = std::move(schema);
    }

    [[nodiscard]] const StructSchema* find(std::string_view product_type) const {
        auto it = schemas_.find(product_type);
        return it == schemas_.end() ? nullptr : &it->second;
    }

    [[nodiscard]] std::size_t size() const noexcept { return schemas_.size(); }

    /// Registry with the built-in schemas (nova slices).
    static SchemaRegistry with_builtins();

  private:
    std::map<std::string, StructSchema, std::less<>> schemas_;
};

/// The built-in row schema of nova::Slice, member order == SliceField order.
StructSchema nova_slice_schema();

}  // namespace hep::columnar

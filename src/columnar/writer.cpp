#include "columnar/writer.hpp"

#include <chrono>

#include "common/endian.hpp"
#include "common/hash.hpp"
#include "serial/archive.hpp"

namespace hep::columnar {

namespace {
// Event-level product keys: 16-byte dataset uuid + run/subrun/event BE64,
// then "<label>#<type>".
constexpr std::size_t kEventKeyBytes = kUuidBytes + 3 * 8;
}  // namespace

WriterOptions WriterOptions::from_json(const json::Value& cfg) {
    WriterOptions o;
    if (!cfg.is_object()) return o;
    o.enabled = cfg["enabled"].as_bool(true);
    o.chunk_rows = static_cast<std::uint64_t>(
        cfg["chunk_rows"].as_int(static_cast<std::int64_t>(o.chunk_rows)));
    if (o.chunk_rows == 0) o.chunk_rows = 1;
    o.min_batch = static_cast<std::uint64_t>(
        cfg["min_batch"].as_int(static_cast<std::int64_t>(o.min_batch)));
    if (o.min_batch == 0) o.min_batch = 1;
    if (o.min_batch > o.chunk_rows) o.min_batch = o.chunk_rows;
    if (!cfg["compression"].as_string().empty()) o.compression = cfg["compression"].as_string();
    if (!parse_compression_mode(o.compression).ok()) o.compression = "auto";
    return o;
}

json::Value WriterOptions::to_json() const {
    json::Value v = json::Value::make_object();
    v["enabled"] = enabled;
    v["chunk_rows"] = static_cast<std::int64_t>(chunk_rows);
    v["min_batch"] = static_cast<std::int64_t>(min_batch);
    v["compression"] = compression;
    return v;
}

json::Value WriterCounters::snapshot() const {
    json::Value v = json::Value::make_object();
    auto get = [](const std::atomic<std::uint64_t>& a) {
        return static_cast<std::int64_t>(a.load(std::memory_order_relaxed));
    };
    v["events_buffered"] = get(events_buffered);
    v["events_shredded"] = get(events_shredded);
    v["events_dropped"] = get(events_dropped);
    v["events_unschematized"] = get(events_unschematized);
    v["chunks_written"] = get(chunks_written);
    v["columns_written"] = get(columns_written);
    v["bytes_raw"] = get(bytes_raw);
    v["bytes_compressed"] = get(bytes_compressed);
    return v;
}

ColumnWriter::ColumnWriter(WriterOptions options, SchemaRegistry registry,
                           std::shared_ptr<WriterCounters> counters, Emit emit)
    : options_(std::move(options)),
      registry_(std::move(registry)),
      counters_(std::move(counters)),
      emit_(std::move(emit)) {
    // Chunk ids only need to be unique within (database, dataset, product);
    // several writers (loader ranks) may feed the same database, so start
    // from a salted counter rather than zero. Collisions would overwrite a
    // foreign chunk — 64 random-ish bits make that negligible.
    const auto ticks = static_cast<std::uint64_t>(
        std::chrono::steady_clock::now().time_since_epoch().count());
    next_chunk_id_ = mix64(ticks ^ fnv1a64({reinterpret_cast<const char*>(this), sizeof(void*)}));
}

void ColumnWriter::observe(const yokan::DatabaseHandle& handle, std::string_view key,
                           const hep::Buffer& value) {
    if (key.size() <= kEventKeyBytes) return;  // container key or shorter product
    if (key.substr(0, kColPrefix.size()) == kColPrefix) return;  // our own chunks
    const std::string_view suffix = key.substr(kEventKeyBytes);
    const std::size_t sep = suffix.rfind('#');
    if (sep == std::string_view::npos) return;  // not a product key
    const StructSchema* schema = registry_.find(suffix.substr(sep + 1));
    if (schema == nullptr) {
        counters_->events_unschematized.fetch_add(1, std::memory_order_relaxed);
        return;
    }

    std::string group_key;
    group_key.reserve(handle.server().size() + handle.name().size() + key.size());
    group_key.append(handle.server());
    group_key.push_back('|');
    group_key.append(std::to_string(handle.provider()));
    group_key.push_back('|');
    group_key.append(handle.name());
    group_key.push_back('|');
    group_key.append(key.substr(0, kUuidBytes));
    group_key.append(suffix);

    auto it = groups_.find(group_key);
    if (it == groups_.end()) {
        Group g;
        g.handle = handle;
        g.schema = schema;
        g.uuid = std::string(key.substr(0, kUuidBytes));
        g.suffix = std::string(suffix);
        it = groups_.emplace(std::move(group_key), std::move(g)).first;
    }
    Buffered b;
    b.run = decode_be64(key.substr(kUuidBytes, 8));
    b.subrun = decode_be64(key.substr(kUuidBytes + 8, 8));
    b.event = decode_be64(key.substr(kUuidBytes + 16, 8));
    b.blob = value;
    it->second.events.push_back(std::move(b));
    counters_->events_buffered.fetch_add(1, std::memory_order_relaxed);

    if (it->second.events.size() >= options_.chunk_rows) emit_chunk(it->second);
}

void ColumnWriter::emit_chunk(Group& group) {
    const CompressionMode mode =
        parse_compression_mode(options_.compression).value_or(CompressionMode::kAuto);
    std::vector<EventBlob> batch;
    batch.reserve(group.events.size());
    for (const auto& ev : group.events) {
        batch.push_back(EventBlob{ev.run, ev.subrun, ev.event,
                                  std::string_view(ev.blob.data(), ev.blob.size())});
    }
    auto shredded = shred(*group.schema, batch, mode);
    if (!shredded.ok()) {
        // Some blob in the batch does not match the schema (a hand-stored
        // product, a schema drift). Leave the whole batch blob-only — the
        // scan's fallback picks these events up.
        counters_->events_dropped.fetch_add(group.events.size(), std::memory_order_relaxed);
        group.events.clear();
        return;
    }

    const std::uint64_t chunk_id = next_chunk_id_++;
    emit_(group.handle, chunk_key(group.uuid, group.suffix, kMetaMember, chunk_id),
          hep::Buffer::adopt(serial::to_string(shredded->meta)));
    for (auto& [member, block] : shredded->columns) {
        emit_(group.handle, chunk_key(group.uuid, group.suffix, member, chunk_id),
              hep::Buffer::adopt(serial::to_string(block)));
    }

    counters_->events_shredded.fetch_add(group.events.size(), std::memory_order_relaxed);
    counters_->chunks_written.fetch_add(1, std::memory_order_relaxed);
    counters_->columns_written.fetch_add(shredded->columns.size(), std::memory_order_relaxed);
    counters_->bytes_raw.fetch_add(shredded->raw_bytes, std::memory_order_relaxed);
    counters_->bytes_compressed.fetch_add(shredded->compressed_bytes,
                                          std::memory_order_relaxed);
    group.events.clear();
}

void ColumnWriter::flush() {
    for (auto& [key, group] : groups_) {
        if (group.events.empty()) continue;
        if (group.events.size() >= options_.min_batch) {
            emit_chunk(group);
        } else {
            counters_->events_dropped.fetch_add(group.events.size(),
                                                std::memory_order_relaxed);
            group.events.clear();
        }
    }
}

}  // namespace hep::columnar

#include "yokan/client.hpp"

namespace hep::yokan {

using namespace proto;

Status DatabaseHandle::put(std::string_view key, std::string_view value, bool overwrite) const {
    auto r = engine_->forward<PutReq, Ack>(
        server_, "yokan_put", provider_,
        PutReq{db_, std::string(key), std::string(value), overwrite});
    return r.status();
}

Result<std::string> DatabaseHandle::get(std::string_view key) const {
    auto r = engine_->forward<KeyReq, GetResp>(server_, "yokan_get", provider_,
                                               KeyReq{db_, std::string(key)});
    if (!r.ok()) return r.status();
    return std::move(r->value);
}

Result<bool> DatabaseHandle::exists(std::string_view key) const {
    auto r = engine_->forward<KeyReq, ExistsResp>(server_, "yokan_exists", provider_,
                                                  KeyReq{db_, std::string(key)});
    if (!r.ok()) return r.status();
    return r->exists;
}

Result<std::uint64_t> DatabaseHandle::length(std::string_view key) const {
    auto r = engine_->forward<KeyReq, LengthResp>(server_, "yokan_length", provider_,
                                                  KeyReq{db_, std::string(key)});
    if (!r.ok()) return r.status();
    return r->length;
}

Status DatabaseHandle::erase(std::string_view key) const {
    auto r = engine_->forward<KeyReq, Ack>(server_, "yokan_erase", provider_,
                                           KeyReq{db_, std::string(key)});
    return r.status();
}

Result<std::vector<std::string>> DatabaseHandle::list_keys(std::string_view after,
                                                           std::string_view prefix,
                                                           std::size_t max) const {
    ListReq req{db_, std::string(after), std::string(prefix), max, false};
    auto r = engine_->forward<ListReq, ListKeysResp>(server_, "yokan_list_keys", provider_, req);
    if (!r.ok()) return r.status();
    return std::move(r->keys);
}

Result<std::vector<KeyValue>> DatabaseHandle::list_keyvals(std::string_view after,
                                                           std::string_view prefix,
                                                           std::size_t max) const {
    ListReq req{db_, std::string(after), std::string(prefix), max, true};
    auto r = engine_->forward<ListReq, ListKeyValsResp>(server_, "yokan_list_keyvals", provider_,
                                                        req);
    if (!r.ok()) return r.status();
    return std::move(r->items);
}

Result<std::uint64_t> DatabaseHandle::count() const {
    auto r = engine_->forward<CountReq, CountResp>(server_, "yokan_count", provider_,
                                                   CountReq{db_});
    if (!r.ok()) return r.status();
    return r->count;
}

Result<std::uint64_t> DatabaseHandle::erase_multi(const std::vector<std::string>& keys) const {
    auto r = engine_->forward<EraseMultiReq, EraseMultiResp>(server_, "yokan_erase_multi",
                                                             provider_, {db_, keys});
    if (!r.ok()) return r.status();
    return r->erased;
}

Result<std::uint64_t> DatabaseHandle::put_multi(const std::vector<KeyValue>& items,
                                                bool overwrite) const {
    std::string packed;
    std::size_t total = 0;
    for (const auto& kv : items) total += kv.key.size() + kv.value.size() + 8;
    packed.reserve(total);
    for (const auto& kv : items) pack_entry(packed, kv.key, kv.value);

    rpc::BulkRef bulk = engine_->endpoint().expose(packed.data(), packed.size());
    PutMultiReq req{db_, bulk, items.size(), packed.size(), overwrite};
    auto r = engine_->endpoint().call(server_, "yokan_put_multi", provider_,
                                      serial::to_string(req));
    engine_->endpoint().unexpose(bulk);
    if (!r.ok()) return r.status();
    PutMultiResp resp;
    try {
        serial::from_string(*r, resp);
    } catch (const serial::SerializationError& e) {
        return Status::Corruption(e.what());
    }
    return resp.stored;
}

Result<std::vector<std::optional<std::string>>> DatabaseHandle::get_multi(
    const std::vector<std::string>& keys, std::size_t buffer_hint) const {
    std::string buffer(buffer_hint, '\0');
    for (int attempt = 0; attempt < 2; ++attempt) {
        rpc::BulkRef bulk = engine_->endpoint().expose(buffer.data(), buffer.size());
        GetMultiReq req{db_, keys, bulk};
        auto r = engine_->endpoint().call(server_, "yokan_get_multi", provider_,
                                          serial::to_string(req));
        engine_->endpoint().unexpose(bulk);
        if (!r.ok()) return r.status();
        GetMultiResp resp;
        try {
            serial::from_string(*r, resp);
        } catch (const serial::SerializationError& e) {
            return Status::Corruption(e.what());
        }
        if (resp.sizes.size() != keys.size()) {
            return Status::Internal("get_multi size vector mismatch");
        }
        if (!resp.written) {
            // Buffer was too small; retry once with the exact size.
            buffer.assign(resp.needed, '\0');
            continue;
        }
        std::vector<std::optional<std::string>> out;
        out.reserve(keys.size());
        std::size_t offset = 0;
        for (std::uint32_t size : resp.sizes) {
            if (size == kMissing) {
                out.emplace_back(std::nullopt);
            } else {
                out.emplace_back(buffer.substr(offset, size));
                offset += size;
            }
        }
        return out;
    }
    return Status::Internal("get_multi retry with exact buffer size still failed");
}

}  // namespace hep::yokan

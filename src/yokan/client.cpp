#include "yokan/client.hpp"

namespace hep::yokan {

using namespace proto;

Status DatabaseHandle::put(std::string_view key, std::string_view value, bool overwrite,
                           std::uint32_t epoch) const {
    auto r = with_failover<Ack>(false, [&](const std::string& server, rpc::ProviderId provider,
                                           const std::string& db) -> Result<Ack> {
        return engine_->forward<PutReq, Ack>(
            server, "yokan_put", provider,
            PutReq{db, std::string(key), std::string(value), overwrite, epoch}, deadline(),
            point_tag());
    });
    return r.status();
}

Status DatabaseHandle::put(std::string_view key, hep::Buffer value, bool overwrite,
                           std::uint32_t epoch) const {
    auto r = with_failover<Ack>(false, [&](const std::string& server, rpc::ProviderId provider,
                                           const std::string& db) -> Result<Ack> {
        return engine_->forward<PutViewReq, Ack>(
            server, "yokan_put_owned", provider,
            PutViewReq{db, std::string(key), value, overwrite, epoch}, deadline(), point_tag());
    });
    return r.status();
}

Result<std::string> DatabaseHandle::get(std::string_view key) const {
    auto r = get_view(key);
    if (!r.ok()) return r.status();
    hep::count_buffer_copy(r->size());
    return std::string(r->sv());
}

Result<hep::BufferView> DatabaseHandle::get_view(std::string_view key) const {
    auto r = with_failover<GetResp>(true, [&](const std::string& server, rpc::ProviderId provider,
                                              const std::string& db) -> Result<GetResp> {
        return engine_->forward<KeyReq, GetResp>(server, "yokan_get", provider,
                                                 KeyReq{db, std::string(key), pin_}, deadline(),
                                                 point_tag());
    });
    if (!r.ok()) return r.status();
    return std::move(r->value);
}

Result<proto::GetSeqResp> DatabaseHandle::get_view_vs(std::string_view key) const {
    return with_failover<GetSeqResp>(
        true, [&](const std::string& server, rpc::ProviderId provider,
                  const std::string& db) -> Result<GetSeqResp> {
            return engine_->forward<KeyReq, GetSeqResp>(server, "yokan_get_vs", provider,
                                                        KeyReq{db, std::string(key), pin_}, deadline(),
                                                        point_tag());
        });
}

Result<std::uint64_t> DatabaseHandle::mutation_seq() const {
    auto r = with_failover<SeqResp>(
        true, [&](const std::string& server, rpc::ProviderId provider,
                  const std::string& db) -> Result<SeqResp> {
            return engine_->forward<CountReq, SeqResp>(server, "yokan_seq", provider,
                                                       CountReq{db}, deadline(), point_tag());
        });
    if (!r.ok()) return r.status();
    return r->seq;
}

Result<bool> DatabaseHandle::exists(std::string_view key) const {
    auto r = with_failover<ExistsResp>(
        true, [&](const std::string& server, rpc::ProviderId provider,
                  const std::string& db) -> Result<ExistsResp> {
            return engine_->forward<KeyReq, ExistsResp>(server, "yokan_exists", provider,
                                                        KeyReq{db, std::string(key), pin_}, deadline(),
                                                        point_tag());
        });
    if (!r.ok()) return r.status();
    return r->exists;
}

Result<std::uint64_t> DatabaseHandle::length(std::string_view key) const {
    auto r = with_failover<LengthResp>(
        true, [&](const std::string& server, rpc::ProviderId provider,
                  const std::string& db) -> Result<LengthResp> {
            return engine_->forward<KeyReq, LengthResp>(server, "yokan_length", provider,
                                                        KeyReq{db, std::string(key), pin_}, deadline(),
                                                        point_tag());
        });
    if (!r.ok()) return r.status();
    return r->length;
}

Status DatabaseHandle::erase(std::string_view key) const {
    auto r = with_failover<Ack>(false, [&](const std::string& server, rpc::ProviderId provider,
                                           const std::string& db) -> Result<Ack> {
        return engine_->forward<KeyReq, Ack>(server, "yokan_erase", provider,
                                             KeyReq{db, std::string(key)}, deadline(),
                                             point_tag());  // erase ignores the pin
    });
    return r.status();
}

Result<std::vector<std::string>> DatabaseHandle::list_keys(std::string_view after,
                                                           std::string_view prefix,
                                                           std::size_t max) const {
    auto r = with_failover<ListKeysResp>(
        true, [&](const std::string& server, rpc::ProviderId provider,
                  const std::string& db) -> Result<ListKeysResp> {
            ListReq req{db, std::string(after), std::string(prefix), max, false, pin_};
            return engine_->forward<ListReq, ListKeysResp>(server, "yokan_list_keys", provider,
                                                           req, deadline(), scan_tag());
        });
    if (!r.ok()) return r.status();
    return std::move(r->keys);
}

Result<std::vector<KeyValue>> DatabaseHandle::list_keyvals(std::string_view after,
                                                           std::string_view prefix,
                                                           std::size_t max) const {
    auto r = with_failover<ListKeyValsResp>(
        true, [&](const std::string& server, rpc::ProviderId provider,
                  const std::string& db) -> Result<ListKeyValsResp> {
            ListReq req{db, std::string(after), std::string(prefix), max, true, pin_};
            return engine_->forward<ListReq, ListKeyValsResp>(server, "yokan_list_keyvals",
                                                              provider, req, deadline(),
                                                              scan_tag());
        });
    if (!r.ok()) return r.status();
    return std::move(r->items);
}

Result<proto::ScanResp> DatabaseHandle::scan_page(std::string_view after,
                                                  std::string_view prefix, std::size_t max,
                                                  bool with_values) const {
    return with_failover<ScanResp>(
        true, [&](const std::string& server, rpc::ProviderId provider,
                  const std::string& db) -> Result<ScanResp> {
            ListReq req{db, std::string(after), std::string(prefix), max, with_values, pin_};
            return engine_->forward<ListReq, ScanResp>(server, "yokan_scan", provider, req,
                                                       deadline(), scan_tag());
        });
}

Result<std::uint64_t> DatabaseHandle::count() const {
    auto r = with_failover<CountResp>(
        true, [&](const std::string& server, rpc::ProviderId provider,
                  const std::string& db) -> Result<CountResp> {
            return engine_->forward<CountReq, CountResp>(server, "yokan_count", provider,
                                                         CountReq{db}, deadline(), scan_tag());
        });
    if (!r.ok()) return r.status();
    return r->count;
}

Result<std::uint64_t> DatabaseHandle::erase_multi(const std::vector<std::string>& keys) const {
    auto r = with_failover<EraseMultiResp>(
        false, [&](const std::string& server, rpc::ProviderId provider,
                   const std::string& db) -> Result<EraseMultiResp> {
            return engine_->forward<EraseMultiReq, EraseMultiResp>(server, "yokan_erase_multi",
                                                                   provider, {db, keys},
                                                                   deadline(), bulk_tag());
        });
    if (!r.ok()) return r.status();
    return r->erased;
}

Result<std::uint64_t> DatabaseHandle::put_multi(const std::vector<KeyValue>& items,
                                                bool overwrite, std::uint32_t epoch) const {
    std::string packed;
    std::size_t total = 0;
    for (const auto& kv : items) total += kv.key.size() + kv.value.size() + 8;
    packed.reserve(total);
    for (const auto& kv : items) pack_entry(packed, kv.key, kv.value);

    rpc::BulkRef bulk = engine_->endpoint().expose(packed.data(), packed.size());
    auto r = with_failover<PutMultiResp>(
        false, [&](const std::string& server, rpc::ProviderId provider,
                   const std::string& db) -> Result<PutMultiResp> {
            PutMultiReq req{db, bulk, items.size(), packed.size(), overwrite, epoch};
            auto raw = engine_->endpoint().call(server, "yokan_put_multi", provider,
                                                serial::to_string(req), deadline(),
                                                bulk_tag());
            if (!raw.ok()) return raw.status();
            PutMultiResp resp;
            try {
                serial::from_string(*raw, resp);
            } catch (const serial::SerializationError& e) {
                return Status::Corruption(e.what());
            }
            return resp;
        });
    engine_->endpoint().unexpose(bulk);
    if (!r.ok()) return r.status();
    return r->stored;
}

Result<std::uint64_t> DatabaseHandle::put_multi(const std::vector<BatchItem>& items,
                                                bool overwrite, std::uint32_t epoch) const {
    hep::BufferChain entries = pack_items(items);
    auto r = with_failover<PutMultiResp>(
        false, [&](const std::string& server, rpc::ProviderId provider,
                   const std::string& db) -> Result<PutMultiResp> {
            return engine_->forward<PutPackedReq, PutMultiResp>(
                server, "yokan_put_packed", provider,
                PutPackedReq{db, items.size(), overwrite, epoch, entries}, deadline(),
                bulk_tag());
        });
    if (!r.ok()) return r.status();
    return r->stored;
}

Result<std::vector<std::optional<std::string>>> DatabaseHandle::get_multi(
    const std::vector<std::string>& keys, std::size_t buffer_hint) const {
    std::string buffer(buffer_hint, '\0');
    for (int attempt = 0; attempt < 2; ++attempt) {
        rpc::BulkRef bulk = engine_->endpoint().expose(buffer.data(), buffer.size());
        auto r = with_failover<GetMultiResp>(
            true, [&](const std::string& server, rpc::ProviderId provider,
                      const std::string& db) -> Result<GetMultiResp> {
                GetMultiReq req{db, keys, bulk, pin_};
                auto raw = engine_->endpoint().call(server, "yokan_get_multi", provider,
                                                    serial::to_string(req), deadline(),
                                                    bulk_tag());
                if (!raw.ok()) return raw.status();
                GetMultiResp resp;
                try {
                    serial::from_string(*raw, resp);
                } catch (const serial::SerializationError& e) {
                    return Status::Corruption(e.what());
                }
                return resp;
            });
        engine_->endpoint().unexpose(bulk);
        if (!r.ok()) return r.status();
        const GetMultiResp& resp = *r;
        if (resp.sizes.size() != keys.size()) {
            return Status::Internal("get_multi size vector mismatch");
        }
        if (!resp.written) {
            // Buffer was too small; retry once with the exact size.
            buffer.assign(resp.needed, '\0');
            continue;
        }
        std::vector<std::optional<std::string>> out;
        out.reserve(keys.size());
        std::size_t offset = 0;
        for (std::uint32_t size : resp.sizes) {
            if (size == kMissing) {
                out.emplace_back(std::nullopt);
            } else {
                out.emplace_back(buffer.substr(offset, size));
                offset += size;
            }
        }
        return out;
    }
    return Status::Internal("get_multi retry with exact buffer size still failed");
}

Result<std::vector<std::optional<hep::BufferView>>> DatabaseHandle::get_multi_views(
    const std::vector<std::string>& keys, std::size_t buffer_hint,
    std::uint64_t* seq_out) const {
    hep::Buffer buffer = hep::Buffer::allocate(buffer_hint);
    for (int attempt = 0; attempt < 2; ++attempt) {
        rpc::BulkRef bulk = engine_->endpoint().expose(buffer.mutable_data(), buffer.size());
        auto r = with_failover<GetMultiResp>(
            true, [&](const std::string& server, rpc::ProviderId provider,
                      const std::string& db) -> Result<GetMultiResp> {
                return engine_->forward<GetMultiReq, GetMultiResp>(
                    server, "yokan_get_multi", provider, GetMultiReq{db, keys, bulk, pin_},
                    deadline(), bulk_tag());
            });
        engine_->endpoint().unexpose(bulk);
        if (!r.ok()) return r.status();
        const GetMultiResp& resp = *r;
        if (resp.sizes.size() != keys.size()) {
            return Status::Internal("get_multi size vector mismatch");
        }
        if (!resp.written) {
            // Buffer was too small; retry once with the exact size.
            buffer = hep::Buffer::allocate(resp.needed);
            continue;
        }
        if (seq_out) *seq_out = resp.seq;
        // Carve refcounted views out of the single receive buffer.
        std::vector<std::optional<hep::BufferView>> out;
        out.reserve(keys.size());
        std::size_t offset = 0;
        for (std::uint32_t size : resp.sizes) {
            if (size == kMissing) {
                out.emplace_back(std::nullopt);
            } else {
                out.emplace_back(buffer.view(offset, size));
                offset += size;
            }
        }
        return out;
    }
    return Status::Internal("get_multi retry with exact buffer size still failed");
}

}  // namespace hep::yokan

// RPC request/response types shared by the Yokan provider and client.
//
// Single-item operations ride inline in the RPC payload ("RPC for single
// small objects"); multi-item operations ship their data through bulk
// handles ("RDMA for large objects or batches of multiple objects"),
// matching the paper's description of Yokan (§II-B).
//
// Packed batch format used inside bulk buffers:
//   repeated (klen u32, vlen u32, key bytes, value bytes)
#pragma once

#include <cstdint>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "rpc/message.hpp"
#include "yokan/backend.hpp"

namespace hep::yokan::proto {

inline constexpr std::uint32_t kMissing = 0xFFFFFFFFu;

struct PutReq {
    std::string db;
    std::string key;
    std::string value;
    bool overwrite = true;
    template <typename A>
    void serialize(A& ar, unsigned) {
        ar & db & key & value & overwrite;
    }
};

struct Ack {
    std::uint8_t ok = 1;
    template <typename A>
    void serialize(A& ar, unsigned) {
        ar & ok;
    }
};

struct KeyReq {
    std::string db;
    std::string key;
    template <typename A>
    void serialize(A& ar, unsigned) {
        ar & db & key;
    }
};

struct GetResp {
    std::string value;
    template <typename A>
    void serialize(A& ar, unsigned) {
        ar & value;
    }
};

struct ExistsResp {
    bool exists = false;
    template <typename A>
    void serialize(A& ar, unsigned) {
        ar & exists;
    }
};

struct LengthResp {
    std::uint64_t length = 0;
    template <typename A>
    void serialize(A& ar, unsigned) {
        ar & length;
    }
};

struct ListReq {
    std::string db;
    std::string after;   // resume strictly after this key
    std::string prefix;  // restrict to keys with this prefix
    std::uint64_t max = 128;
    bool with_values = false;
    template <typename A>
    void serialize(A& ar, unsigned) {
        ar & db & after & prefix & max & with_values;
    }
};

struct ListKeysResp {
    std::vector<std::string> keys;
    template <typename A>
    void serialize(A& ar, unsigned) {
        ar & keys;
    }
};

struct ListKeyValsResp {
    std::vector<KeyValue> items;
    template <typename A>
    void serialize(A& ar, unsigned) {
        ar & items;
    }
};

/// Paged scan with explicit cursor state: unlike the list RPCs (which leave
/// the client inferring exhaustion from a short page), the response reports
/// the exact resume key and whether the key space ran out. The pushdown
/// cursors (src/query) and pagination-aware clients build on this contract.
struct ScanResp {
    std::vector<KeyValue> items;  // values empty unless ListReq::with_values
    std::string last_key;         // resume with after=last_key
    bool exhausted = true;
    template <typename A>
    void serialize(A& ar, unsigned) {
        ar & items & last_key & exhausted;
    }
};

struct CountReq {
    std::string db;
    template <typename A>
    void serialize(A& ar, unsigned) {
        ar & db;
    }
};

struct CountResp {
    std::uint64_t count = 0;
    template <typename A>
    void serialize(A& ar, unsigned) {
        ar & count;
    }
};

/// Batched put: the packed key/value data lives in a client-exposed bulk
/// region; the server pulls it with one RDMA read.
struct PutMultiReq {
    std::string db;
    rpc::BulkRef bulk;
    std::uint64_t count = 0;
    std::uint64_t bytes = 0;  // packed size
    bool overwrite = true;
    template <typename A>
    void serialize(A& ar, unsigned) {
        ar & db & bulk & count & bytes & overwrite;
    }
};

struct PutMultiResp {
    std::uint64_t stored = 0;
    std::uint64_t already_existed = 0;
    template <typename A>
    void serialize(A& ar, unsigned) {
        ar & stored & already_existed;
    }
};

/// Batched get: the server packs the found values into the client-exposed
/// region with one RDMA write and returns per-key sizes (kMissing = absent).
/// If the region is too small nothing is written and `needed` tells the
/// client how much to expose on retry.
struct GetMultiReq {
    std::string db;
    std::vector<std::string> keys;
    rpc::BulkRef dest;
    template <typename A>
    void serialize(A& ar, unsigned) {
        ar & db & keys & dest;
    }
};

struct GetMultiResp {
    std::vector<std::uint32_t> sizes;  // parallel to keys; kMissing = absent
    std::uint64_t needed = 0;          // total bytes required
    bool written = false;              // data was bulk_put into dest
    template <typename A>
    void serialize(A& ar, unsigned) {
        ar & sizes & needed & written;
    }
};

/// Batched erase (inline keys; erase payloads are small).
struct EraseMultiReq {
    std::string db;
    std::vector<std::string> keys;
    template <typename A>
    void serialize(A& ar, unsigned) {
        ar & db & keys;
    }
};

struct EraseMultiResp {
    std::uint64_t erased = 0;
    template <typename A>
    void serialize(A& ar, unsigned) {
        ar & erased;
    }
};

/// Pack helpers for the batch format. Inline so other libraries (the replica
/// subsystem replays packed batches) can use them without linking yokan.
inline void pack_entry(std::string& out, std::string_view key, std::string_view value) {
    const std::uint32_t klen = static_cast<std::uint32_t>(key.size());
    const std::uint32_t vlen = static_cast<std::uint32_t>(value.size());
    out.append(reinterpret_cast<const char*>(&klen), 4);
    out.append(reinterpret_cast<const char*>(&vlen), 4);
    out.append(key);
    out.append(value);
}

/// Visit packed entries; returns false on malformed input.
inline bool unpack_entries(std::string_view data,
                           const std::function<void(std::string_view, std::string_view)>& fn) {
    std::size_t pos = 0;
    while (pos < data.size()) {
        if (pos + 8 > data.size()) return false;
        std::uint32_t klen = 0, vlen = 0;
        std::memcpy(&klen, data.data() + pos, 4);
        std::memcpy(&vlen, data.data() + pos + 4, 4);
        if (pos + 8 + klen + vlen > data.size()) return false;
        fn(data.substr(pos + 8, klen), data.substr(pos + 8 + klen, vlen));
        pos += 8 + klen + vlen;
    }
    return true;
}

}  // namespace hep::yokan::proto

// RPC request/response types shared by the Yokan provider and client.
//
// Single-item operations ride inline in the RPC payload ("RPC for single
// small objects"); multi-item operations ship their data through bulk
// handles ("RDMA for large objects or batches of multiple objects"),
// matching the paper's description of Yokan (§II-B).
//
// Packed batch format used inside bulk buffers:
//   repeated (klen u32, vlen u32, key bytes, value bytes)
#pragma once

#include <cstdint>
#include <cstring>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "rpc/message.hpp"
#include "serial/archive.hpp"
#include "yokan/backend.hpp"

namespace hep::yokan::proto {

inline constexpr std::uint32_t kMissing = 0xFFFFFFFFu;

/// Optional MVCC pin carried by read RPCs. seq == 0 means "read latest"
/// (the pre-MVCC behaviour); a non-zero seq asks the server to resolve the
/// read against snapshot_at(seq) with the client-supplied epoch visibility
/// filter. Shipping the filter explicitly makes pinned reads immune to a
/// backend whose local published set lags the registry's commit point.
struct ReadPin {
    std::uint64_t seq = 0;
    std::uint32_t floor = 0;                // epochs 1..floor visible
    std::vector<std::uint32_t> extras;      // sparse visible epochs > floor
    [[nodiscard]] bool pinned() const noexcept { return seq != 0; }
    [[nodiscard]] ReadView view() const {
        ReadView v;
        v.seq = seq;
        v.epochs.floor = floor;
        v.epochs.extras = extras;
        return v;
    }
    template <typename A>
    void serialize(A& ar, unsigned) {
        ar & seq & floor & extras;
    }
};

/// Legacy single put with a contiguous std::string value. Kept as the
/// compatibility shim (and the "before" baseline for abl_zerocopy); the
/// zero-copy path is PutViewReq / "yokan_put_owned".
struct PutReq {
    std::string db;
    std::string key;
    std::string value;
    bool overwrite = true;
    std::uint32_t epoch = 0;  // 0 = immediately visible; else ingest epoch
    template <typename A>
    void serialize(A& ar, unsigned) {
        ar & db & key & value & overwrite & epoch;
    }
};

/// Zero-copy single put ("yokan_put_owned"): the value is a refcounted
/// Buffer, so serializing the request references the product bytes instead of
/// copying them, and the server parks the received frame slice straight into
/// the backend via put_view(). Wire-compatible with PutReq (a Buffer
/// serializes exactly like a std::string).
struct PutViewReq {
    std::string db;
    std::string key;
    hep::Buffer value;
    bool overwrite = true;
    std::uint32_t epoch = 0;  // 0 = immediately visible; else ingest epoch
    template <typename A>
    void serialize(A& ar, unsigned) {
        ar & db & key & value & overwrite & epoch;
    }
};

struct Ack {
    std::uint8_t ok = 1;
    template <typename A>
    void serialize(A& ar, unsigned) {
        ar & ok;
    }
};

struct KeyReq {
    std::string db;
    std::string key;
    ReadPin pin;  // optional snapshot pin (seq 0 = latest)
    template <typename A>
    void serialize(A& ar, unsigned) {
        ar & db & key & pin;
    }
};

/// The value travels as a BufferView: serialized like a std::string on the
/// wire, but the server references the stored bytes (no copy out of the
/// backend) and the client receives a view anchored to the response frame.
struct GetResp {
    hep::BufferView value;
    template <typename A>
    void serialize(A& ar, unsigned) {
        ar & value;
    }
};

struct ExistsResp {
    bool exists = false;
    template <typename A>
    void serialize(A& ar, unsigned) {
        ar & exists;
    }
};

struct LengthResp {
    std::uint64_t length = 0;
    template <typename A>
    void serialize(A& ar, unsigned) {
        ar & length;
    }
};

struct ListReq {
    std::string db;
    std::string after;   // resume strictly after this key
    std::string prefix;  // restrict to keys with this prefix
    std::uint64_t max = 128;
    bool with_values = false;
    ReadPin pin;  // optional snapshot pin (seq 0 = latest)
    template <typename A>
    void serialize(A& ar, unsigned) {
        ar & db & after & prefix & max & with_values & pin;
    }
};

struct ListKeysResp {
    std::vector<std::string> keys;
    template <typename A>
    void serialize(A& ar, unsigned) {
        ar & keys;
    }
};

struct ListKeyValsResp {
    std::vector<KeyValue> items;
    template <typename A>
    void serialize(A& ar, unsigned) {
        ar & items;
    }
};

/// Paged scan with explicit cursor state: unlike the list RPCs (which leave
/// the client inferring exhaustion from a short page), the response reports
/// the exact resume key and whether the key space ran out. The pushdown
/// cursors (src/query) and pagination-aware clients build on this contract.
struct ScanResp {
    std::vector<KeyValue> items;  // values empty unless ListReq::with_values
    std::string last_key;         // resume with after=last_key
    bool exhausted = true;
    template <typename A>
    void serialize(A& ar, unsigned) {
        ar & items & last_key & exhausted;
    }
};

struct CountReq {
    std::string db;
    template <typename A>
    void serialize(A& ar, unsigned) {
        ar & db;
    }
};

/// Mutation sequence of a database ("yokan_seq"): the replica group's
/// monotonic sequence numbers when the db is replicated, the backend's
/// put+erase count otherwise. Any committed mutation advances it, so the
/// cache tier (src/cache) uses it to revalidate expired leases with one
/// cheap probe instead of refetching the value.
struct SeqResp {
    std::uint64_t seq = 0;
    template <typename A>
    void serialize(A& ar, unsigned) {
        ar & seq;
    }
};

/// Versioned get ("yokan_get_vs"): the value plus the db's mutation seq,
/// sampled BEFORE the read. A mutation racing the read can only make the
/// returned seq older than the value — a cache filling under this seq then
/// revalidates too eagerly, never too lazily.
struct GetSeqResp {
    hep::BufferView value;
    std::uint64_t seq = 0;
    std::uint64_t vseq = 0;    // the VALUE's own MVCC stamp (exact, unlike
    std::uint32_t vepoch = 0;  // `seq` which is a pre-read lease sample)
    template <typename A>
    void serialize(A& ar, unsigned) {
        ar & value & seq & vseq & vepoch;
    }
};

struct CountResp {
    std::uint64_t count = 0;
    template <typename A>
    void serialize(A& ar, unsigned) {
        ar & count;
    }
};

/// Zero-copy batched put ("yokan_put_packed"): the packed entries ride the
/// RPC payload as a scatter-gather chain — per-entry (klen, vlen, key)
/// headers live in one metadata buffer, the values are referenced views of
/// the caller's product buffers (see pack_items()). The server iterates the
/// received chain and parks each value slice via put_view(). Replaces the
/// expose/bulk_access round-trip of PutMultiReq on the hot ingest path.
struct PutPackedReq {
    std::string db;
    std::uint64_t count = 0;
    bool overwrite = true;
    std::uint32_t epoch = 0;  // applied to every entry in the batch
    hep::BufferChain entries;  // packed (klen u32, vlen u32, key, value)*
    template <typename A>
    void serialize(A& ar, unsigned) {
        ar & db & count & overwrite & epoch & entries;
    }
};

/// Legacy batched put: the packed key/value data lives in a client-exposed
/// bulk region; the server pulls it with one RDMA read. Kept as the
/// compatibility shim (and the "before" baseline for abl_zerocopy).
struct PutMultiReq {
    std::string db;
    rpc::BulkRef bulk;
    std::uint64_t count = 0;
    std::uint64_t bytes = 0;  // packed size
    bool overwrite = true;
    std::uint32_t epoch = 0;  // applied to every entry in the batch
    template <typename A>
    void serialize(A& ar, unsigned) {
        ar & db & bulk & count & bytes & overwrite & epoch;
    }
};

struct PutMultiResp {
    std::uint64_t stored = 0;
    std::uint64_t already_existed = 0;
    template <typename A>
    void serialize(A& ar, unsigned) {
        ar & stored & already_existed;
    }
};

/// Batched get: the server packs the found values into the client-exposed
/// region with one RDMA write and returns per-key sizes (kMissing = absent).
/// If the region is too small nothing is written and `needed` tells the
/// client how much to expose on retry.
struct GetMultiReq {
    std::string db;
    std::vector<std::string> keys;
    rpc::BulkRef dest;
    ReadPin pin;  // optional snapshot pin (seq 0 = latest)
    template <typename A>
    void serialize(A& ar, unsigned) {
        ar & db & keys & dest & pin;
    }
};

struct GetMultiResp {
    std::vector<std::uint32_t> sizes;  // parallel to keys; kMissing = absent
    std::uint64_t needed = 0;          // total bytes required
    bool written = false;              // data was bulk_put into dest
    std::uint64_t seq = 0;             // db mutation seq, sampled BEFORE the
                                       // reads (read-cache bulk fills record
                                       // it; same ordering as GetSeqResp)
    template <typename A>
    void serialize(A& ar, unsigned) {
        ar & sizes & needed & written & seq;
    }
};

/// Batched erase (inline keys; erase payloads are small).
struct EraseMultiReq {
    std::string db;
    std::vector<std::string> keys;
    template <typename A>
    void serialize(A& ar, unsigned) {
        ar & db & keys;
    }
};

struct EraseMultiResp {
    std::uint64_t erased = 0;
    template <typename A>
    void serialize(A& ar, unsigned) {
        ar & erased;
    }
};

/// Pack helpers for the batch format. Inline so other libraries (the replica
/// subsystem replays packed batches) can use them without linking yokan.
inline void pack_entry(std::string& out, std::string_view key, std::string_view value) {
    const std::uint32_t klen = static_cast<std::uint32_t>(key.size());
    const std::uint32_t vlen = static_cast<std::uint32_t>(value.size());
    out.append(reinterpret_cast<const char*>(&klen), 4);
    out.append(reinterpret_cast<const char*>(&vlen), 4);
    out.append(key);
    out.append(value);
    hep::count_buffer_copy(8 + key.size() + value.size());
}

/// Exact size of one packed entry.
inline std::size_t packed_entry_size(std::size_t klen, std::size_t vlen) {
    return 8 + klen + vlen;
}

/// Pack a whole batch with an exact-size pre-pass: one reservation, no
/// append-realloc growth (packing used to be quadratic for large batches).
inline void pack_entries(std::string& out, const std::vector<KeyValue>& items) {
    std::size_t total = out.size();
    for (const auto& kv : items) total += packed_entry_size(kv.key.size(), kv.value.size());
    out.reserve(total);
    for (const auto& kv : items) pack_entry(out, kv.key, kv.value);
}

/// Pack a batch of BatchItems as a scatter-gather chain: all (klen, vlen,
/// key) headers go into ONE exactly-sized metadata buffer; each value is
/// appended as a refcounted view of the item's Buffer. One allocation, keys
/// copied once, values never copied.
inline hep::BufferChain pack_items(const std::vector<BatchItem>& items) {
    std::size_t meta_bytes = 0;
    for (const auto& it : items) meta_bytes += 8 + it.key.size();
    std::string meta;
    meta.reserve(meta_bytes);
    std::vector<std::size_t> offsets;
    offsets.reserve(items.size());
    for (const auto& it : items) {
        offsets.push_back(meta.size());
        const std::uint32_t klen = static_cast<std::uint32_t>(it.key.size());
        const std::uint32_t vlen = static_cast<std::uint32_t>(it.value.size());
        meta.append(reinterpret_cast<const char*>(&klen), 4);
        meta.append(reinterpret_cast<const char*>(&vlen), 4);
        meta.append(it.key);
    }
    hep::count_buffer_copy(meta.size());
    hep::Buffer meta_buf = hep::Buffer::adopt(std::move(meta));
    hep::BufferChain chain;
    for (std::size_t i = 0; i < items.size(); ++i) {
        chain.append(meta_buf.view(offsets[i], 8 + items[i].key.size()));
        chain.append(items[i].value.view());
    }
    return chain;
}

/// Visit packed entries; returns false on malformed input.
inline bool unpack_entries(std::string_view data,
                           const std::function<void(std::string_view, std::string_view)>& fn) {
    std::size_t pos = 0;
    while (pos < data.size()) {
        if (pos + 8 > data.size()) return false;
        std::uint32_t klen = 0, vlen = 0;
        std::memcpy(&klen, data.data() + pos, 4);
        std::memcpy(&vlen, data.data() + pos + 4, 4);
        if (pos + 8 + klen + vlen > data.size()) return false;
        fn(data.substr(pos + 8, klen), data.substr(pos + 8 + klen, vlen));
        pos += 8 + klen + vlen;
    }
    return true;
}

/// Visit packed entries in a (possibly multi-segment) chain. Values are
/// handed out as owned views anchored to the chain's storage — safe to park
/// directly in a backend via put_view(). Returns false on malformed input.
inline bool unpack_entries_chain(
    const hep::BufferChain& entries,
    const std::function<void(std::string_view key, hep::BufferView value)>& fn) {
    serial::BinaryIArchive in(entries);
    while (!in.exhausted()) {
        if (in.remaining() < 8) return false;
        std::uint32_t klen = 0, vlen = 0;
        in.read_bytes(&klen, 4);
        in.read_bytes(&vlen, 4);
        if (in.remaining() < static_cast<std::size_t>(klen) + vlen) return false;
        hep::BufferView key = in.read_view(klen);
        hep::BufferView value = in.read_view(vlen);
        fn(key.sv(), value.to_owned());
    }
    return true;
}

}  // namespace hep::yokan::proto

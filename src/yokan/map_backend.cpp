#include "yokan/map_backend.hpp"

#include <mutex>

namespace hep::yokan {

Status MapBackend::put(std::string_view key, std::string_view value, bool overwrite) {
    // Legacy contiguous path: the backend must own the bytes, so this copy is
    // the point (and is counted by copy_of).
    return put_view(key, hep::BufferView(hep::Buffer::copy_of(value)), overwrite);
}

Status MapBackend::put_view(std::string_view key, hep::BufferView value, bool overwrite) {
    return put_stamped(key, std::move(value), overwrite, 0);
}

Status MapBackend::put_stamped(std::string_view key, hep::BufferView value, bool overwrite,
                               std::uint32_t epoch) {
    hep::BufferView owned = value.to_owned();
    {
        std::unique_lock lock(mutex_);
        ++stats_.puts;
        auto it = map_.find(key);
        if (it != map_.end()) {
            if (!overwrite) return Status::AlreadyExists(std::string(key));
            it->second = Slot{std::move(owned), Stamp{seq_source().next(), epoch}};
        } else {
            map_.emplace(std::string(key), Slot{std::move(owned), Stamp{seq_source().next(), epoch}});
        }
    }
    // Publish markers flip the local published set the moment they commit.
    if (const std::uint32_t published = parse_publish_marker(key)) observe_marker(published);
    return Status::OK();
}

Result<std::string> MapBackend::get(std::string_view key) {
    std::shared_lock lock(mutex_);
    ++stats_.gets;
    auto it = map_.find(key);
    if (it == map_.end()) return Status::NotFound(std::string(key));
    hep::count_buffer_copy(it->second.value.size());
    return std::string(it->second.value.sv());
}

Result<hep::BufferView> MapBackend::get_view(std::string_view key) {
    std::shared_lock lock(mutex_);
    ++stats_.gets;
    auto it = map_.find(key);
    if (it == map_.end()) return Status::NotFound(std::string(key));
    return it->second.value;  // refcount bump only
}

Result<std::pair<hep::BufferView, Stamp>> MapBackend::get_stamped(std::string_view key) {
    std::shared_lock lock(mutex_);
    ++stats_.gets;
    auto it = map_.find(key);
    if (it == map_.end()) return Status::NotFound(std::string(key));
    return std::make_pair(it->second.value, it->second.stamp);
}

Result<bool> MapBackend::exists(std::string_view key) {
    std::shared_lock lock(mutex_);
    ++stats_.gets;
    return map_.find(key) != map_.end();
}

Result<std::uint64_t> MapBackend::length(std::string_view key) {
    std::shared_lock lock(mutex_);
    ++stats_.gets;
    auto it = map_.find(key);
    if (it == map_.end()) return Status::NotFound(std::string(key));
    return static_cast<std::uint64_t>(it->second.value.size());
}

Status MapBackend::erase(std::string_view key) {
    std::unique_lock lock(mutex_);
    ++stats_.erases;
    auto it = map_.find(key);
    if (it == map_.end()) return Status::NotFound(std::string(key));
    map_.erase(it);
    seq_source().next();  // erases are mutations too: lease probes must see them
    return Status::OK();
}

Status MapBackend::scan(std::string_view after, std::string_view prefix, bool with_values,
                        const ScanFn& fn) {
    return scan_stamped(after, prefix, with_values,
                        [&](std::string_view key, std::string_view value, const Stamp&) {
                            return fn(key, value);
                        });
}

Status MapBackend::scan_stamped(std::string_view after, std::string_view prefix,
                                bool with_values, const StampedScanFn& fn) {
    std::shared_lock lock(mutex_);
    ++stats_.scans;
    // Start strictly after `after`, but never before `prefix`.
    auto it = after < prefix ? map_.lower_bound(prefix) : map_.upper_bound(after);
    for (; it != map_.end(); ++it) {
        std::string_view key = it->first;
        if (!prefix.empty()) {
            if (key.size() < prefix.size() || key.compare(0, prefix.size(), prefix) != 0) break;
        }
        if (!fn(key, with_values ? it->second.value.sv() : std::string_view{},
                it->second.stamp)) {
            break;
        }
    }
    return Status::OK();
}

std::uint64_t MapBackend::size() const {
    std::shared_lock lock(mutex_);
    return map_.size();
}

BackendStats MapBackend::stats() const {
    std::shared_lock lock(mutex_);
    return stats_;
}

}  // namespace hep::yokan

#include "yokan/provider.hpp"

#include <cstring>

namespace hep::yokan {

using namespace proto;

namespace proto {

void pack_entry(std::string& out, std::string_view key, std::string_view value) {
    const std::uint32_t klen = static_cast<std::uint32_t>(key.size());
    const std::uint32_t vlen = static_cast<std::uint32_t>(value.size());
    out.append(reinterpret_cast<const char*>(&klen), 4);
    out.append(reinterpret_cast<const char*>(&vlen), 4);
    out.append(key);
    out.append(value);
}

bool unpack_entries(std::string_view data,
                    const std::function<void(std::string_view, std::string_view)>& fn) {
    std::size_t pos = 0;
    while (pos < data.size()) {
        if (pos + 8 > data.size()) return false;
        std::uint32_t klen = 0, vlen = 0;
        std::memcpy(&klen, data.data() + pos, 4);
        std::memcpy(&vlen, data.data() + pos + 4, 4);
        if (pos + 8 + klen + vlen > data.size()) return false;
        fn(data.substr(pos + 8, klen), data.substr(pos + 8 + klen, vlen));
        pos += 8 + klen + vlen;
    }
    return true;
}

}  // namespace proto

Provider::Provider(margo::Engine& engine, rpc::ProviderId provider_id,
                   std::shared_ptr<abt::Pool> pool)
    : margo::Provider(engine, provider_id, std::move(pool)) {}

Result<std::unique_ptr<Provider>> Provider::create(margo::Engine& engine,
                                                   rpc::ProviderId provider_id,
                                                   const json::Value& config,
                                                   std::shared_ptr<abt::Pool> pool,
                                                   const std::string& base_dir) {
    auto provider =
        std::unique_ptr<Provider>(new Provider(engine, provider_id, std::move(pool)));
    const json::Value& dbs = config["databases"];
    for (std::size_t i = 0; i < dbs.size(); ++i) {
        const json::Value& db_cfg = dbs.at(i);
        std::string name = db_cfg["name"].as_string();
        if (name.empty()) name = "db" + std::to_string(i);
        auto db = create_database(db_cfg, base_dir);
        if (!db.ok()) return db.status();
        provider->databases_.emplace(std::move(name), std::move(db.value()));
    }
    provider->register_rpcs();
    return provider;
}

Database* Provider::find_database(const std::string& name) {
    auto it = databases_.find(name);
    return it == databases_.end() ? nullptr : it->second.get();
}

std::vector<std::string> Provider::database_names() const {
    std::vector<std::string> names;
    names.reserve(databases_.size());
    for (const auto& [name, db] : databases_) names.push_back(name);
    return names;
}

Result<Database*> Provider::resolve(const std::string& name) {
    auto it = databases_.find(name);
    if (it == databases_.end()) {
        return Status::NotFound("no database named '" + name + "' in provider " +
                                std::to_string(id_));
    }
    return it->second.get();
}

void Provider::register_rpcs() {
    auto& eng = engine_;
    const auto pid = id_;

    eng.define<PutReq, Ack>(
        "yokan_put", pid,
        [this](const PutReq& req) -> Result<Ack> {
            auto db = resolve(req.db);
            if (!db.ok()) return db.status();
            Status st = (*db)->put(req.key, req.value, req.overwrite);
            if (!st.ok()) return st;
            return Ack{};
        },
        pool_);

    eng.define<KeyReq, GetResp>(
        "yokan_get", pid,
        [this](const KeyReq& req) -> Result<GetResp> {
            auto db = resolve(req.db);
            if (!db.ok()) return db.status();
            auto v = (*db)->get(req.key);
            if (!v.ok()) return v.status();
            return GetResp{std::move(v.value())};
        },
        pool_);

    eng.define<KeyReq, ExistsResp>(
        "yokan_exists", pid,
        [this](const KeyReq& req) -> Result<ExistsResp> {
            auto db = resolve(req.db);
            if (!db.ok()) return db.status();
            auto v = (*db)->exists(req.key);
            if (!v.ok()) return v.status();
            return ExistsResp{*v};
        },
        pool_);

    eng.define<KeyReq, LengthResp>(
        "yokan_length", pid,
        [this](const KeyReq& req) -> Result<LengthResp> {
            auto db = resolve(req.db);
            if (!db.ok()) return db.status();
            auto v = (*db)->length(req.key);
            if (!v.ok()) return v.status();
            return LengthResp{*v};
        },
        pool_);

    eng.define<KeyReq, Ack>(
        "yokan_erase", pid,
        [this](const KeyReq& req) -> Result<Ack> {
            auto db = resolve(req.db);
            if (!db.ok()) return db.status();
            Status st = (*db)->erase(req.key);
            if (!st.ok()) return st;
            return Ack{};
        },
        pool_);

    eng.define<ListReq, ListKeysResp>(
        "yokan_list_keys", pid,
        [this](const ListReq& req) -> Result<ListKeysResp> {
            auto db = resolve(req.db);
            if (!db.ok()) return db.status();
            auto keys = (*db)->list_keys(req.after, req.prefix, req.max);
            if (!keys.ok()) return keys.status();
            return ListKeysResp{std::move(keys.value())};
        },
        pool_);

    eng.define<ListReq, ListKeyValsResp>(
        "yokan_list_keyvals", pid,
        [this](const ListReq& req) -> Result<ListKeyValsResp> {
            auto db = resolve(req.db);
            if (!db.ok()) return db.status();
            auto items = (*db)->list_keyvals(req.after, req.prefix, req.max);
            if (!items.ok()) return items.status();
            return ListKeyValsResp{std::move(items.value())};
        },
        pool_);

    eng.define<CountReq, CountResp>(
        "yokan_count", pid,
        [this](const CountReq& req) -> Result<CountResp> {
            auto db = resolve(req.db);
            if (!db.ok()) return db.status();
            return CountResp{(*db)->size()};
        },
        pool_);

    eng.define<EraseMultiReq, EraseMultiResp>(
        "yokan_erase_multi", pid,
        [this](const EraseMultiReq& req) -> Result<EraseMultiResp> {
            auto db = resolve(req.db);
            if (!db.ok()) return db.status();
            EraseMultiResp resp;
            for (const auto& key : req.keys) {
                if ((*db)->erase(key).ok()) ++resp.erased;
            }
            return resp;
        },
        pool_);

    // Batched put: pull the packed payload with one bulk read, then apply.
    eng.define_with_context(
        "yokan_put_multi", pid,
        [this](const std::string& payload, rpc::RequestContext& ctx) -> Result<std::string> {
            PutMultiReq req;
            try {
                serial::from_string(payload, req);
            } catch (const serial::SerializationError& e) {
                return Status::InvalidArgument(e.what());
            }
            auto db = resolve(req.db);
            if (!db.ok()) return db.status();
            std::string packed(req.bytes, '\0');
            Status st = ctx.bulk_get(req.bulk, 0, packed.data(), req.bytes);
            if (!st.ok()) return st;
            PutMultiResp resp;
            bool well_formed = unpack_entries(packed, [&](std::string_view k, std::string_view v) {
                Status put_st = (*db)->put(k, v, req.overwrite);
                if (put_st.ok()) ++resp.stored;
                else if (put_st.code() == StatusCode::kAlreadyExists) ++resp.already_existed;
            });
            if (!well_formed) return Status::InvalidArgument("malformed packed batch");
            return serial::to_string(resp);
        },
        pool_);

    // Batched get: push the values into the client's region with one bulk
    // write; sizes travel inline.
    eng.define_with_context(
        "yokan_get_multi", pid,
        [this](const std::string& payload, rpc::RequestContext& ctx) -> Result<std::string> {
            GetMultiReq req;
            try {
                serial::from_string(payload, req);
            } catch (const serial::SerializationError& e) {
                return Status::InvalidArgument(e.what());
            }
            auto db = resolve(req.db);
            if (!db.ok()) return db.status();
            GetMultiResp resp;
            resp.sizes.reserve(req.keys.size());
            std::string packed;
            for (const auto& key : req.keys) {
                auto v = (*db)->get(key);
                if (!v.ok()) {
                    resp.sizes.push_back(kMissing);
                    continue;
                }
                resp.sizes.push_back(static_cast<std::uint32_t>(v->size()));
                packed.append(*v);
            }
            resp.needed = packed.size();
            if (packed.size() <= req.dest.size) {
                if (!packed.empty()) {
                    Status st = ctx.bulk_put(packed.data(), req.dest, 0, packed.size());
                    if (!st.ok()) return st;
                }
                resp.written = true;
            }
            return serial::to_string(resp);
        },
        pool_);
}

}  // namespace hep::yokan

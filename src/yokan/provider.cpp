#include "yokan/provider.hpp"

#include <cctype>
#include <cstring>
#include <mutex>

namespace hep::yokan {

using namespace proto;

namespace {
/// Filesystem-safe member tag used to derive per-member lsm paths and the
/// replica sidecar file name from a Target ("tcp://h:1/3/db" -> "tcp_h_1_3_db").
/// Reject pins that run ahead of the database: a snapshot can only be taken
/// at a seq the db has actually reached (fuzzed/malformed pins answer with an
/// error, never crash or serve garbage).
Status validate_pin(Database* db, const proto::ReadPin& pin) {
    if (pin.pinned() && pin.seq > db->seq()) {
        return Status::InvalidArgument("read_seq " + std::to_string(pin.seq) +
                                       " is ahead of database seq " +
                                       std::to_string(db->seq()));
    }
    return Status::OK();
}

std::string path_tag(const replica::Target& t) {
    std::string tag = t.str();
    for (char& c : tag) {
        if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '-' || c == '.')) c = '_';
    }
    return tag;
}
}  // namespace

Provider::Provider(margo::Engine& engine, rpc::ProviderId provider_id,
                   std::shared_ptr<abt::Pool> pool)
    : margo::Provider(engine, provider_id, std::move(pool)) {}

Result<std::unique_ptr<Provider>> Provider::create(margo::Engine& engine,
                                                   rpc::ProviderId provider_id,
                                                   const json::Value& config,
                                                   std::shared_ptr<abt::Pool> pool,
                                                   const std::string& base_dir) {
    auto provider =
        std::unique_ptr<Provider>(new Provider(engine, provider_id, std::move(pool)));
    provider->base_dir_ = base_dir;
    if (config.contains("lsm")) provider->lsm_defaults_ = config["lsm"];
    const json::Value& dbs = config["databases"];
    for (std::size_t i = 0; i < dbs.size(); ++i) {
        const json::Value db_cfg = provider->merged_db_config(dbs.at(i));
        std::string name = db_cfg["name"].as_string();
        if (name.empty()) name = "db" + std::to_string(i);
        auto db = create_database(db_cfg, base_dir, provider->compaction_pool_for(db_cfg));
        if (!db.ok()) return db.status();
        provider->databases_.emplace(std::move(name), std::move(db.value()));
    }
    provider->register_rpcs();
    return provider;
}

json::Value Provider::merged_db_config(const json::Value& db_cfg) const {
    if (db_cfg["type"].as_string() != "lsm" || !lsm_defaults_.is_object()) return db_cfg;
    // Database-level settings win over the provider-level "lsm" section.
    static constexpr const char* kKnobs[] = {
        "background_compaction", "group_commit",       "max_immutable_memtables",
        "l0_slowdown_trigger",   "l0_stop_trigger",    "wal_sync_every_put",
        "memtable_bytes",        "block_bytes",        "l0_compaction_trigger",
        "level_base_bytes",      "block_cache_bytes",  "target_file_bytes",
        "memtable",              "block_compression",  "compressed_cache_bytes",
        "arena_block_bytes",     "skiplist_max_height",
    };
    json::Value merged = db_cfg;
    for (const char* knob : kKnobs) {
        if (!merged.contains(knob) && lsm_defaults_.contains(knob)) {
            merged[std::string(knob)] = lsm_defaults_[knob];
        }
    }
    return merged;
}

std::shared_ptr<abt::Pool> Provider::compaction_pool_for(const json::Value& db_cfg) {
    if (db_cfg["type"].as_string() != "lsm") return nullptr;
    if (!db_cfg["background_compaction"].as_bool(true)) return nullptr;
    if (!compaction_pool_) {
        compaction_pool_ = abt::Pool::create("yokan-compaction-" + std::to_string(id_));
        const auto n = static_cast<std::size_t>(
            std::max<std::int64_t>(1, lsm_defaults_["compaction_xstreams"].as_int(1)));
        for (std::size_t i = 0; i < n; ++i) {
            compaction_xstreams_.push_back(abt::Xstream::create(
                {compaction_pool_}, "yokan-compaction-" + std::to_string(id_) + "-" +
                                        std::to_string(i)));
        }
    }
    return compaction_pool_;
}

Database* Provider::find_database(const std::string& name) {
    std::shared_lock lock(tables_mutex_);
    auto it = databases_.find(name);
    return it == databases_.end() ? nullptr : it->second.get();
}

std::vector<std::string> Provider::database_names() const {
    std::shared_lock lock(tables_mutex_);
    std::vector<std::string> names;
    names.reserve(databases_.size());
    for (const auto& [name, db] : databases_) names.push_back(name);
    return names;
}

replica::ReplicaSet* Provider::find_replica_set(const std::string& name) {
    std::shared_lock lock(tables_mutex_);
    auto it = replica_sets_.find(name);
    return it == replica_sets_.end() ? nullptr : it->second.get();
}

json::Value Provider::replica_stats() const {
    std::vector<replica::ReplicaSet*> sets;
    {
        std::shared_lock lock(tables_mutex_);
        sets.reserve(replica_sets_.size());
        for (const auto& [name, set] : replica_sets_) sets.push_back(set.get());
    }
    json::Value out = json::Value::make_array();
    for (auto* set : sets) out.push_back(set->stats_json());
    return out;
}

std::uint64_t Provider::mutation_seq(const std::string& name) {
    // One seq authority per database: the backend's SeqSource. Replicated
    // databases advance the same counter (every replicated mutation lands via
    // put_stamped/erase on the backend), so the replica path needs no special
    // case any more.
    if (Database* db = find_database(name)) return db->seq();
    return 0;
}

Result<Database*> Provider::resolve(const std::string& name) {
    Database* db = find_database(name);
    if (!db) {
        return Status::NotFound("no database named '" + name + "' in provider " +
                                std::to_string(id_));
    }
    return db;
}

Result<replica::ReplicaSet*> Provider::resolve_replica(const std::string& name) {
    replica::ReplicaSet* set = find_replica_set(name);
    if (!set) {
        return Status::NotFound("database '" + name + "' is not replicated in provider " +
                                std::to_string(id_));
    }
    return set;
}

Status Provider::configure_replica(const replica::ConfigureReq& req) {
    std::unique_lock lock(tables_mutex_);
    auto db_it = databases_.find(req.db);
    if (db_it == databases_.end()) {
        if (req.create_type.empty()) {
            return Status::NotFound("database '" + req.db + "' does not exist and no " +
                                    "create_type was given");
        }
        json::Value cfg = json::Value::make_object();
        cfg["name"] = json::Value(req.db);
        cfg["type"] = json::Value(req.create_type);
        if (req.create_type != "map") {
            std::string path = req.create_path.empty() ? "replicas" : req.create_path;
            cfg["path"] = json::Value(path + "/" + path_tag(req.self));
        }
        const json::Value merged = merged_db_config(cfg);
        auto db = create_database(merged, base_dir_, compaction_pool_for(merged));
        if (!db.ok()) return db.status();
        db_it = databases_.emplace(req.db, std::move(db.value())).first;
    }
    auto set_it = replica_sets_.find(req.db);
    if (set_it != replica_sets_.end()) {
        // Re-wiring with the same membership is an idempotent no-op (e.g. a
        // second client connecting runs the same bootstrap).
        if (set_it->second->self() == req.self && set_it->second->peers() == req.peers) {
            return Status::OK();
        }
        replica_sets_.erase(set_it);
    }
    Database* db = db_it->second.get();
    std::string meta_path;
    if (db->type() == "lsm") {
        meta_path = base_dir_ + "/" + path_tag(req.self) + ".replica.json";
    }
    replica_sets_.emplace(
        req.db, std::make_unique<replica::ReplicaSet>(engine_, req.self, req.peers, db,
                                                      req.log_capacity, std::move(meta_path)));
    return Status::OK();
}

void Provider::register_rpcs() {
    auto& eng = engine_;
    const auto pid = id_;

    eng.define<PutReq, Ack>(
        "yokan_put", pid,
        [this](const PutReq& req) -> Result<Ack> {
            auto db = resolve(req.db);
            if (!db.ok()) return db.status();
            Status st;
            if (auto* rs = find_replica_set(req.db)) {
                st = rs->put(req.key, req.value, req.overwrite, req.epoch);
            } else if (req.epoch == 0) {
                st = (*db)->put(req.key, req.value, req.overwrite);
            } else {
                st = (*db)->put_stamped(req.key,
                                        hep::BufferView(hep::Buffer::adopt(std::string(req.value))),
                                        req.overwrite, req.epoch);
            }
            if (!st.ok()) return st;
            return Ack{};
        },
        pool_);

    // Zero-copy single put: the request's Buffer value arrives as a view
    // anchored to the receive frame and is parked in the backend by reference.
    eng.define<PutViewReq, Ack>(
        "yokan_put_owned", pid,
        [this](const PutViewReq& req) -> Result<Ack> {
            auto db = resolve(req.db);
            if (!db.ok()) return db.status();
            Status st;
            if (auto* rs = find_replica_set(req.db)) {
                st = rs->put(req.key, req.value, req.overwrite, req.epoch);  // shares the buffer
            } else {
                st = (*db)->put_stamped(req.key, req.value.view(), req.overwrite, req.epoch);
            }
            if (!st.ok()) return st;
            return Ack{};
        },
        pool_);

    eng.define<KeyReq, GetResp>(
        "yokan_get", pid,
        [this](const KeyReq& req) -> Result<GetResp> {
            auto db = resolve(req.db);
            if (!db.ok()) return db.status();
            Status pin_ok = validate_pin(*db, req.pin);
            if (!pin_ok.ok()) return pin_ok;
            // Unpinned requests still go through the _at path: an unpinned
            // ReadView filters by the db-local published set, so unpublished
            // epochs are invisible from every read RPC.
            auto v = (*db)->get_view_at(req.key, req.pin.view());
            if (!v.ok()) return v.status();
            // The stored view rides the response by reference; the response
            // chain keeps its storage alive until the frame is sent.
            return GetResp{std::move(v.value())};
        },
        pool_);

    eng.define<KeyReq, ExistsResp>(
        "yokan_exists", pid,
        [this](const KeyReq& req) -> Result<ExistsResp> {
            auto db = resolve(req.db);
            if (!db.ok()) return db.status();
            Status pin_ok = validate_pin(*db, req.pin);
            if (!pin_ok.ok()) return pin_ok;
            auto v = (*db)->exists_at(req.key, req.pin.view());
            if (!v.ok()) return v.status();
            return ExistsResp{*v};
        },
        pool_);

    eng.define<KeyReq, LengthResp>(
        "yokan_length", pid,
        [this](const KeyReq& req) -> Result<LengthResp> {
            auto db = resolve(req.db);
            if (!db.ok()) return db.status();
            Status pin_ok = validate_pin(*db, req.pin);
            if (!pin_ok.ok()) return pin_ok;
            auto v = (*db)->length_at(req.key, req.pin.view());
            if (!v.ok()) return v.status();
            return LengthResp{*v};
        },
        pool_);

    eng.define<KeyReq, Ack>(
        "yokan_erase", pid,
        [this](const KeyReq& req) -> Result<Ack> {
            auto db = resolve(req.db);
            if (!db.ok()) return db.status();
            Status st;
            if (auto* rs = find_replica_set(req.db)) st = rs->erase(req.key);
            else st = (*db)->erase(req.key);
            if (!st.ok()) return st;
            return Ack{};
        },
        pool_);

    eng.define<ListReq, ListKeysResp>(
        "yokan_list_keys", pid,
        [this](const ListReq& req) -> Result<ListKeysResp> {
            auto db = resolve(req.db);
            if (!db.ok()) return db.status();
            Status pin_ok = validate_pin(*db, req.pin);
            if (!pin_ok.ok()) return pin_ok;
            auto keys = (*db)->list_keys_at(req.after, req.prefix, req.max, req.pin.view());
            if (!keys.ok()) return keys.status();
            return ListKeysResp{std::move(keys.value())};
        },
        pool_);

    eng.define<ListReq, ListKeyValsResp>(
        "yokan_list_keyvals", pid,
        [this](const ListReq& req) -> Result<ListKeyValsResp> {
            auto db = resolve(req.db);
            if (!db.ok()) return db.status();
            Status pin_ok = validate_pin(*db, req.pin);
            if (!pin_ok.ok()) return pin_ok;
            auto items = (*db)->list_keyvals_at(req.after, req.prefix, req.max, req.pin.view());
            if (!items.ok()) return items.status();
            return ListKeyValsResp{std::move(items.value())};
        },
        pool_);

    eng.define<ListReq, ScanResp>(
        "yokan_scan", pid,
        [this](const ListReq& req) -> Result<ScanResp> {
            auto db = resolve(req.db);
            if (!db.ok()) return db.status();
            Status pin_ok = validate_pin(*db, req.pin);
            if (!pin_ok.ok()) return pin_ok;
            ScanResp resp;
            auto chunk = (*db)->scan_chunk_at(
                req.after, req.prefix, req.max, req.with_values, req.pin.view(),
                [&](std::string_view key, std::string_view value) {
                    resp.items.push_back(KeyValue{std::string(key), std::string(value)});
                    return true;
                });
            if (!chunk.ok()) return chunk.status();
            resp.last_key = std::move(chunk->last_key);
            resp.exhausted = chunk->exhausted;
            return resp;
        },
        pool_);

    eng.define<CountReq, SeqResp>(
        "yokan_seq", pid,
        [this](const CountReq& req) -> Result<SeqResp> {
            auto db = resolve(req.db);
            if (!db.ok()) return db.status();
            return SeqResp{mutation_seq(req.db)};
        },
        pool_);

    // Versioned get for cache fills: the seq is sampled BEFORE the read (see
    // proto::GetSeqResp), so a racing mutation can only make a filled entry
    // revalidate too eagerly, never serve past the mutation.
    eng.define<KeyReq, GetSeqResp>(
        "yokan_get_vs", pid,
        [this](const KeyReq& req) -> Result<GetSeqResp> {
            auto db = resolve(req.db);
            if (!db.ok()) return db.status();
            Status pin_ok = validate_pin(*db, req.pin);
            if (!pin_ok.ok()) return pin_ok;
            const std::uint64_t seq = mutation_seq(req.db);
            auto v = (*db)->get_stamped(req.key);
            if (!v.ok()) return v.status();
            if (!(*db)->visible(v->second, req.pin.view())) {
                return Status::NotFound("key not visible at this snapshot");
            }
            // `seq` is the pre-read lease sample; vseq/vepoch are the value's
            // exact stamp so pinned caches can compare against their pin.
            return GetSeqResp{std::move(v->first), seq, v->second.seq, v->second.epoch};
        },
        pool_);

    eng.define<CountReq, CountResp>(
        "yokan_count", pid,
        [this](const CountReq& req) -> Result<CountResp> {
            auto db = resolve(req.db);
            if (!db.ok()) return db.status();
            return CountResp{(*db)->size()};
        },
        pool_);

    eng.define<EraseMultiReq, EraseMultiResp>(
        "yokan_erase_multi", pid,
        [this](const EraseMultiReq& req) -> Result<EraseMultiResp> {
            auto db = resolve(req.db);
            if (!db.ok()) return db.status();
            EraseMultiResp resp;
            if (auto* rs = find_replica_set(req.db)) {
                auto erased = rs->erase_multi(req.keys);
                if (!erased.ok()) return erased.status();
                resp.erased = *erased;
                return resp;
            }
            for (const auto& key : req.keys) {
                if ((*db)->erase(key).ok()) ++resp.erased;
            }
            return resp;
        },
        pool_);

    // Zero-copy batched put: the packed entries ride the request payload as a
    // scatter-gather chain anchored to the receive frame; each value slice is
    // parked in the backend by reference. Replicated databases forward the
    // batch as ONE record.
    eng.define<PutPackedReq, PutMultiResp>(
        "yokan_put_packed", pid,
        [this](const PutPackedReq& req) -> Result<PutMultiResp> {
            auto db = resolve(req.db);
            if (!db.ok()) return db.status();
            PutMultiResp resp;
            if (auto* rs = find_replica_set(req.db)) {
                // The replication log needs one contiguous record; adopt the
                // flattened bytes so log + peer ships share them from here on.
                auto counts = rs->put_packed(hep::Buffer::adopt(req.entries.flatten()),
                                             req.overwrite, req.epoch);
                if (!counts.ok()) return counts.status();
                resp.stored = counts->first;
                resp.already_existed = counts->second;
                return resp;
            }
            bool well_formed =
                unpack_entries_chain(req.entries, [&](std::string_view k, hep::BufferView v) {
                    Status put_st = (*db)->put_stamped(k, v, req.overwrite, req.epoch);
                    if (put_st.ok()) ++resp.stored;
                    else if (put_st.code() == StatusCode::kAlreadyExists) ++resp.already_existed;
                });
            if (!well_formed) return Status::InvalidArgument("malformed packed batch");
            return resp;
        },
        pool_);

    // Legacy batched put: pull the packed payload with one bulk read, then
    // apply. Replicated databases forward the packed payload as ONE record.
    eng.define_with_context(
        "yokan_put_multi", pid,
        [this](const std::string& payload, rpc::RequestContext& ctx) -> Result<std::string> {
            PutMultiReq req;
            try {
                serial::from_string(payload, req);
            } catch (const serial::SerializationError& e) {
                return Status::InvalidArgument(e.what());
            }
            auto db = resolve(req.db);
            if (!db.ok()) return db.status();
            std::string packed(req.bytes, '\0');
            Status st = ctx.bulk_get(req.bulk, 0, packed.data(), req.bytes);
            if (!st.ok()) return st;
            PutMultiResp resp;
            if (auto* rs = find_replica_set(req.db)) {
                auto counts = rs->put_packed(hep::Buffer::adopt(std::move(packed)), req.overwrite,
                                             req.epoch);
                if (!counts.ok()) return counts.status();
                resp.stored = counts->first;
                resp.already_existed = counts->second;
                return serial::to_string(resp);
            }
            // Adopt the packed bytes so epoch-tagged entries can be parked as
            // owned views without a per-value copy.
            hep::Buffer packed_buf = hep::Buffer::adopt(std::move(packed));
            const char* base = packed_buf.view().sv().data();
            bool well_formed = unpack_entries(
                packed_buf.view().sv(), [&](std::string_view k, std::string_view v) {
                    Status put_st = (*db)->put_stamped(
                        k, packed_buf.view(static_cast<std::size_t>(v.data() - base), v.size()),
                        req.overwrite, req.epoch);
                    if (put_st.ok()) ++resp.stored;
                    else if (put_st.code() == StatusCode::kAlreadyExists) ++resp.already_existed;
                });
            if (!well_formed) return Status::InvalidArgument("malformed packed batch");
            return serial::to_string(resp);
        },
        pool_);

    // Batched get: push the values into the client's region with one bulk
    // write; sizes travel inline.
    eng.define_with_context(
        "yokan_get_multi", pid,
        [this](const std::string& payload, rpc::RequestContext& ctx) -> Result<std::string> {
            GetMultiReq req;
            try {
                serial::from_string(payload, req);
            } catch (const serial::SerializationError& e) {
                return Status::InvalidArgument(e.what());
            }
            auto db = resolve(req.db);
            if (!db.ok()) return db.status();
            Status pin_ok = validate_pin(*db, req.pin);
            if (!pin_ok.ok()) return pin_ok;
            GetMultiResp resp;
            resp.seq = mutation_seq(req.db);
            resp.sizes.reserve(req.keys.size());
            const ReadView view = req.pin.view();
            // Gather the stored values as views — no server-side packing copy;
            // the fabric writes them into the client's region as one gathered
            // transfer.
            hep::BufferChain values;
            for (const auto& key : req.keys) {
                auto v = (*db)->get_view_at(key, view);
                if (!v.ok()) {
                    resp.sizes.push_back(kMissing);
                    continue;
                }
                resp.sizes.push_back(static_cast<std::uint32_t>(v->size()));
                values.append(std::move(v.value()));
            }
            resp.needed = values.size();
            if (values.size() <= req.dest.size) {
                if (!values.empty()) {
                    Status st = ctx.bulk_put_chain(values, req.dest, 0);
                    if (!st.ok()) return st;
                }
                resp.written = true;
            }
            return serial::to_string(resp);
        },
        pool_);

    // ---- replication protocol ---------------------------------------------

    eng.define<replica::ConfigureReq, replica::Ack>(
        "replica_configure", pid,
        [this](const replica::ConfigureReq& req) -> Result<replica::Ack> {
            Status st = configure_replica(req);
            if (!st.ok()) return st;
            return replica::Ack{};
        },
        pool_);

    eng.define<replica::ApplyReq, replica::ApplyResp>(
        "replica_apply", pid,
        [this](const replica::ApplyReq& req) -> Result<replica::ApplyResp> {
            auto set = resolve_replica(req.db);
            if (!set.ok()) return set.status();
            return (*set)->handle_apply(req);
        },
        pool_);

    eng.define<replica::SnapshotReq, replica::Ack>(
        "replica_snapshot", pid,
        [this](const replica::SnapshotReq& req) -> Result<replica::Ack> {
            auto set = resolve_replica(req.db);
            if (!set.ok()) return set.status();
            Status st = (*set)->handle_snapshot(req);
            if (!st.ok()) return st;
            return replica::Ack{};
        },
        pool_);

    eng.define<replica::ProbeReq, replica::Ack>(
        "replica_probe", pid,
        [this](const replica::ProbeReq& req) -> Result<replica::Ack> {
            auto set = resolve_replica(req.db);
            if (!set.ok()) return set.status();
            (*set)->probe_peers();
            return replica::Ack{};
        },
        pool_);
}

}  // namespace hep::yokan

// In-memory backend over std::map (paper's "std::map backend", §IV-D).
//
// Values are stored as owned hep::BufferViews: put_view() adopts the caller's
// refcounted bytes without copying, and get_view() hands the stored buffer
// back by bumping a refcount. Since buffers are immutable after publish, an
// overwrite simply swaps the view — readers holding the old view keep valid
// bytes.
#pragma once

#include <map>
#include <shared_mutex>

#include "yokan/backend.hpp"

namespace hep::yokan {

class MapBackend final : public Database {
  public:
    MapBackend() = default;

    Status put(std::string_view key, std::string_view value, bool overwrite) override;
    Status put_view(std::string_view key, hep::BufferView value, bool overwrite) override;
    Result<std::string> get(std::string_view key) override;
    Result<hep::BufferView> get_view(std::string_view key) override;
    Result<bool> exists(std::string_view key) override;
    Result<std::uint64_t> length(std::string_view key) override;
    Status erase(std::string_view key) override;
    Status scan(std::string_view after, std::string_view prefix, bool with_values,
                const ScanFn& fn) override;
    std::uint64_t size() const override;
    Status flush() override { return Status::OK(); }
    std::string_view type() const noexcept override { return "map"; }
    BackendStats stats() const override;

  private:
    mutable std::shared_mutex mutex_;
    std::map<std::string, hep::BufferView, std::less<>> map_;
    mutable BackendStats stats_;
};

}  // namespace hep::yokan

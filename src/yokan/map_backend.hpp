// In-memory backend over std::map (paper's "std::map backend", §IV-D).
//
// Values are stored as owned hep::BufferViews: put_view() adopts the caller's
// refcounted bytes without copying, and get_view() hands the stored buffer
// back by bumping a refcount. Since buffers are immutable after publish, an
// overwrite simply swaps the view — readers holding the old view keep valid
// bytes.
//
// Every slot carries its MVCC Stamp (commit seq + ingest epoch); only the
// newest version of a key is retained, so a snapshot read of an overwritten
// or erased key is conservatively NotFound (exact for HEPnOS's write-once
// product/event keys, which is what snapshot readers scan).
#pragma once

#include <map>
#include <shared_mutex>

#include "yokan/backend.hpp"

namespace hep::yokan {

class MapBackend final : public Database {
  public:
    MapBackend() = default;

    Status put(std::string_view key, std::string_view value, bool overwrite) override;
    Status put_view(std::string_view key, hep::BufferView value, bool overwrite) override;
    Status put_stamped(std::string_view key, hep::BufferView value, bool overwrite,
                       std::uint32_t epoch) override;
    Result<std::string> get(std::string_view key) override;
    Result<hep::BufferView> get_view(std::string_view key) override;
    Result<std::pair<hep::BufferView, Stamp>> get_stamped(std::string_view key) override;
    Result<bool> exists(std::string_view key) override;
    Result<std::uint64_t> length(std::string_view key) override;
    Status erase(std::string_view key) override;
    Status scan(std::string_view after, std::string_view prefix, bool with_values,
                const ScanFn& fn) override;
    Status scan_stamped(std::string_view after, std::string_view prefix, bool with_values,
                        const StampedScanFn& fn) override;
    std::uint64_t size() const override;
    Status flush() override { return Status::OK(); }
    std::string_view type() const noexcept override { return "map"; }
    BackendStats stats() const override;

  private:
    struct Slot {
        hep::BufferView value;
        Stamp stamp;
    };

    mutable std::shared_mutex mutex_;
    std::map<std::string, Slot, std::less<>> map_;
    mutable BackendStats stats_;
};

}  // namespace hep::yokan

#include "yokan/backend.hpp"

#include "common/endian.hpp"
#include "yokan/lsm/lsm_db.hpp"
#include "yokan/map_backend.hpp"

namespace hep::yokan {

std::string publish_marker_key(std::uint32_t epoch) {
    std::string key(kPublishMarkerPrefix);
    append_be32(key, epoch);
    return key;
}

std::uint32_t parse_publish_marker(std::string_view key) {
    if (key.size() != kPublishMarkerPrefix.size() + 4) return 0;
    if (key.substr(0, kPublishMarkerPrefix.size()) != kPublishMarkerPrefix) return 0;
    return decode_be32(key.data() + kPublishMarkerPrefix.size());
}

ReadView Database::snapshot_at(std::uint64_t seq) const {
    ReadView view;
    view.seq = seq == 0 ? seq_.current() : seq;
    // A snapshot at seq 0 of an empty database would be unpinned; pin at 1 so
    // it stays empty forever, as a snapshot must.
    if (view.seq == 0) view.seq = 1;
    view.epochs = published();
    return view;
}

void Database::observe_marker(std::uint32_t epoch) {
    if (epoch == 0) return;
    std::lock_guard<std::mutex> lock(pub_mu_);
    if (epoch <= pub_floor_) return;
    auto it = std::lower_bound(pub_extra_.begin(), pub_extra_.end(), epoch);
    if (it != pub_extra_.end() && *it == epoch) return;
    pub_extra_.insert(it, epoch);
    while (!pub_extra_.empty() && pub_extra_.front() == pub_floor_ + 1) {
        ++pub_floor_;
        pub_extra_.erase(pub_extra_.begin());
    }
}

bool Database::epoch_visible(std::uint32_t epoch) const {
    if (epoch == 0) return true;
    std::lock_guard<std::mutex> lock(pub_mu_);
    if (epoch <= pub_floor_) return true;
    return std::binary_search(pub_extra_.begin(), pub_extra_.end(), epoch);
}

EpochFilter Database::published() const {
    std::lock_guard<std::mutex> lock(pub_mu_);
    return EpochFilter{pub_floor_, pub_extra_};
}

bool Database::visible(const Stamp& stamp, const ReadView& view) const {
    if (view.pinned()) {
        if (stamp.seq > view.seq) return false;
        return stamp.epoch == 0 || view.epochs.visible(stamp.epoch);
    }
    return stamp.epoch == 0 || epoch_visible(stamp.epoch);
}

Result<hep::BufferView> Database::get_view_at(std::string_view key, const ReadView& view) {
    auto r = get_stamped(key);
    if (!r.ok()) return r.status();
    if (!visible(r->second, view)) return Status::NotFound("key not visible at this snapshot");
    return std::move(r->first);
}

Result<std::string> Database::get_at(std::string_view key, const ReadView& view) {
    auto r = get_view_at(key, view);
    if (!r.ok()) return r.status();
    return std::string(r->sv());
}

Result<bool> Database::exists_at(std::string_view key, const ReadView& view) {
    auto r = get_stamped(key);
    if (!r.ok()) {
        if (r.status().code() == StatusCode::kNotFound) return false;
        return r.status();
    }
    return visible(r->second, view);
}

Result<std::uint64_t> Database::length_at(std::string_view key, const ReadView& view) {
    auto r = get_view_at(key, view);
    if (!r.ok()) return r.status();
    return static_cast<std::uint64_t>(r->size());
}

Status Database::scan_at(std::string_view after, std::string_view prefix, bool with_values,
                         const ReadView& view, const ScanFn& fn) {
    // Internal (marker/counter) keys are hidden unless the caller's prefix
    // explicitly reaches into the internal range.
    const bool hide_internal = prefix.empty() || prefix.front() != kInternalKeyPrefix;
    return scan_stamped(after, prefix, with_values,
                        [&](std::string_view key, std::string_view value, const Stamp& stamp) {
                            if (hide_internal && !key.empty() &&
                                key.front() == kInternalKeyPrefix) {
                                return true;
                            }
                            if (!visible(stamp, view)) return true;
                            return fn(key, value);
                        });
}

Result<Database::ScanChunk> Database::scan_chunk_at(std::string_view after,
                                                    std::string_view prefix,
                                                    std::uint64_t max_keys, bool with_values,
                                                    const ReadView& view, const ScanFn& fn) {
    // Invisible keys still count against max_keys and advance last_key —
    // resume must make progress even across a large unpublished range.
    ScanChunk out;
    bool limited = false;
    bool callee_stopped = false;
    const bool hide_internal = prefix.empty() || prefix.front() != kInternalKeyPrefix;
    Status st = scan_stamped(
        after, prefix, with_values,
        [&](std::string_view key, std::string_view value, const Stamp& stamp) {
            if (out.examined >= max_keys) {
                limited = true;
                return false;  // not examined; resume revisits it
            }
            ++out.examined;
            out.last_key.assign(key);
            if (hide_internal && !key.empty() && key.front() == kInternalKeyPrefix) return true;
            if (!visible(stamp, view)) return true;
            if (!fn(key, value)) {
                callee_stopped = true;
                return false;
            }
            return true;
        });
    if (!st.ok()) return st;
    out.exhausted = !limited && !callee_stopped;
    return out;
}

Result<std::vector<std::string>> Database::list_keys_at(std::string_view after,
                                                        std::string_view prefix, std::size_t max,
                                                        const ReadView& view) {
    std::vector<std::string> keys;
    Status st = scan_at(after, prefix, /*with_values=*/false, view,
                        [&](std::string_view key, std::string_view) {
                            keys.emplace_back(key);
                            return keys.size() < max;
                        });
    if (!st.ok()) return st;
    return keys;
}

Result<std::vector<KeyValue>> Database::list_keyvals_at(std::string_view after,
                                                        std::string_view prefix, std::size_t max,
                                                        const ReadView& view) {
    std::vector<KeyValue> out;
    Status st = scan_at(after, prefix, /*with_values=*/true, view,
                        [&](std::string_view key, std::string_view value) {
                            out.push_back(KeyValue{std::string(key), std::string(value)});
                            return out.size() < max;
                        });
    if (!st.ok()) return st;
    return out;
}

Result<std::vector<std::string>> Database::list_keys(std::string_view after,
                                                     std::string_view prefix, std::size_t max) {
    std::vector<std::string> keys;
    Status st = scan(after, prefix, /*with_values=*/false,
                     [&](std::string_view key, std::string_view) {
                         keys.emplace_back(key);
                         return keys.size() < max;
                     });
    if (!st.ok()) return st;
    return keys;
}

Result<std::vector<KeyValue>> Database::list_keyvals(std::string_view after,
                                                     std::string_view prefix, std::size_t max) {
    std::vector<KeyValue> out;
    Status st = scan(after, prefix, /*with_values=*/true,
                     [&](std::string_view key, std::string_view value) {
                         out.push_back(KeyValue{std::string(key), std::string(value)});
                         return out.size() < max;
                     });
    if (!st.ok()) return st;
    return out;
}

Result<Database::ScanChunk> Database::scan_chunk(std::string_view after, std::string_view prefix,
                                                 std::uint64_t max_keys, bool with_values,
                                                 const ScanFn& fn) {
    ScanChunk out;
    bool limited = false;
    bool callee_stopped = false;
    Status st = scan(after, prefix, with_values,
                     [&](std::string_view key, std::string_view value) {
                         if (out.examined >= max_keys) {
                             limited = true;
                             return false;  // not examined; resume revisits it
                         }
                         ++out.examined;
                         out.last_key.assign(key);
                         if (!fn(key, value)) {
                             callee_stopped = true;
                             return false;
                         }
                         return true;
                     });
    if (!st.ok()) return st;
    out.exhausted = !limited && !callee_stopped;
    return out;
}

Result<std::unique_ptr<Database>> create_database(const json::Value& config,
                                                  const std::string& base_dir,
                                                  std::shared_ptr<abt::Pool> compaction_pool) {
    const std::string type = config["type"].as_string();
    if (type == "map" || type.empty()) {
        return std::unique_ptr<Database>(std::make_unique<MapBackend>());
    }
    if (type == "lsm") {
        lsm::LsmOptions opts;
        std::string path = config["path"].as_string();
        if (path.empty()) {
            return Status::InvalidArgument("lsm backend requires a \"path\"");
        }
        opts.path = path.front() == '/' ? path : base_dir + "/" + path;
        if (config.contains("memtable_bytes")) {
            opts.memtable_bytes = static_cast<std::size_t>(config["memtable_bytes"].as_int());
        }
        if (config.contains("block_bytes")) {
            opts.block_bytes = static_cast<std::size_t>(config["block_bytes"].as_int());
        }
        if (config.contains("l0_compaction_trigger")) {
            opts.l0_compaction_trigger =
                static_cast<std::size_t>(config["l0_compaction_trigger"].as_int());
        }
        if (config.contains("level_base_bytes")) {
            opts.level_base_bytes =
                static_cast<std::size_t>(config["level_base_bytes"].as_int());
        }
        if (config.contains("block_cache_bytes")) {
            opts.block_cache_bytes =
                static_cast<std::size_t>(config["block_cache_bytes"].as_int());
            // Unless overridden, the compressed tier follows the decoded one.
            opts.compressed_cache_bytes = opts.block_cache_bytes;
        }
        if (config.contains("compressed_cache_bytes")) {
            opts.compressed_cache_bytes =
                static_cast<std::size_t>(config["compressed_cache_bytes"].as_int());
        }
        if (config.contains("memtable")) {
            opts.memtable = config["memtable"].as_string();
        }
        if (config.contains("block_compression")) {
            opts.block_compression = config["block_compression"].as_string();
        }
        if (config.contains("arena_block_bytes")) {
            opts.arena_block_bytes =
                static_cast<std::size_t>(config["arena_block_bytes"].as_int());
        }
        if (config.contains("skiplist_max_height")) {
            opts.skiplist_max_height =
                static_cast<std::size_t>(config["skiplist_max_height"].as_int());
        }
        if (config.contains("target_file_bytes")) {
            opts.target_file_bytes =
                static_cast<std::size_t>(config["target_file_bytes"].as_int());
        }
        if (config.contains("wal_sync_every_put")) {
            opts.wal_sync_every_put = config["wal_sync_every_put"].as_bool();
        }
        if (config.contains("background_compaction")) {
            opts.background_compaction = config["background_compaction"].as_bool();
        }
        if (config.contains("group_commit")) {
            opts.group_commit = config["group_commit"].as_bool();
        }
        if (config.contains("max_immutable_memtables")) {
            opts.max_immutable_memtables =
                static_cast<std::size_t>(config["max_immutable_memtables"].as_int());
        }
        if (config.contains("l0_slowdown_trigger")) {
            opts.l0_slowdown_trigger =
                static_cast<std::size_t>(config["l0_slowdown_trigger"].as_int());
        }
        if (config.contains("l0_stop_trigger")) {
            opts.l0_stop_trigger = static_cast<std::size_t>(config["l0_stop_trigger"].as_int());
        }
        opts.compaction_pool = std::move(compaction_pool);
        auto db = lsm::LsmDb::open(std::move(opts));
        if (!db.ok()) return db.status();
        return std::unique_ptr<Database>(std::move(db.value()));
    }
    return Status::InvalidArgument("unknown backend type: " + type);
}

}  // namespace hep::yokan

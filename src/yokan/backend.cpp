#include "yokan/backend.hpp"

#include "yokan/lsm/lsm_db.hpp"
#include "yokan/map_backend.hpp"

namespace hep::yokan {

Result<std::vector<std::string>> Database::list_keys(std::string_view after,
                                                     std::string_view prefix, std::size_t max) {
    std::vector<std::string> keys;
    Status st = scan(after, prefix, /*with_values=*/false,
                     [&](std::string_view key, std::string_view) {
                         keys.emplace_back(key);
                         return keys.size() < max;
                     });
    if (!st.ok()) return st;
    return keys;
}

Result<std::vector<KeyValue>> Database::list_keyvals(std::string_view after,
                                                     std::string_view prefix, std::size_t max) {
    std::vector<KeyValue> out;
    Status st = scan(after, prefix, /*with_values=*/true,
                     [&](std::string_view key, std::string_view value) {
                         out.push_back(KeyValue{std::string(key), std::string(value)});
                         return out.size() < max;
                     });
    if (!st.ok()) return st;
    return out;
}

Result<Database::ScanChunk> Database::scan_chunk(std::string_view after, std::string_view prefix,
                                                 std::uint64_t max_keys, bool with_values,
                                                 const ScanFn& fn) {
    ScanChunk out;
    bool limited = false;
    bool callee_stopped = false;
    Status st = scan(after, prefix, with_values,
                     [&](std::string_view key, std::string_view value) {
                         if (out.examined >= max_keys) {
                             limited = true;
                             return false;  // not examined; resume revisits it
                         }
                         ++out.examined;
                         out.last_key.assign(key);
                         if (!fn(key, value)) {
                             callee_stopped = true;
                             return false;
                         }
                         return true;
                     });
    if (!st.ok()) return st;
    out.exhausted = !limited && !callee_stopped;
    return out;
}

Result<std::unique_ptr<Database>> create_database(const json::Value& config,
                                                  const std::string& base_dir,
                                                  std::shared_ptr<abt::Pool> compaction_pool) {
    const std::string type = config["type"].as_string();
    if (type == "map" || type.empty()) {
        return std::unique_ptr<Database>(std::make_unique<MapBackend>());
    }
    if (type == "lsm") {
        lsm::LsmOptions opts;
        std::string path = config["path"].as_string();
        if (path.empty()) {
            return Status::InvalidArgument("lsm backend requires a \"path\"");
        }
        opts.path = path.front() == '/' ? path : base_dir + "/" + path;
        if (config.contains("memtable_bytes")) {
            opts.memtable_bytes = static_cast<std::size_t>(config["memtable_bytes"].as_int());
        }
        if (config.contains("block_bytes")) {
            opts.block_bytes = static_cast<std::size_t>(config["block_bytes"].as_int());
        }
        if (config.contains("l0_compaction_trigger")) {
            opts.l0_compaction_trigger =
                static_cast<std::size_t>(config["l0_compaction_trigger"].as_int());
        }
        if (config.contains("level_base_bytes")) {
            opts.level_base_bytes =
                static_cast<std::size_t>(config["level_base_bytes"].as_int());
        }
        if (config.contains("block_cache_bytes")) {
            opts.block_cache_bytes =
                static_cast<std::size_t>(config["block_cache_bytes"].as_int());
        }
        if (config.contains("target_file_bytes")) {
            opts.target_file_bytes =
                static_cast<std::size_t>(config["target_file_bytes"].as_int());
        }
        if (config.contains("wal_sync_every_put")) {
            opts.wal_sync_every_put = config["wal_sync_every_put"].as_bool();
        }
        if (config.contains("background_compaction")) {
            opts.background_compaction = config["background_compaction"].as_bool();
        }
        if (config.contains("group_commit")) {
            opts.group_commit = config["group_commit"].as_bool();
        }
        if (config.contains("max_immutable_memtables")) {
            opts.max_immutable_memtables =
                static_cast<std::size_t>(config["max_immutable_memtables"].as_int());
        }
        if (config.contains("l0_slowdown_trigger")) {
            opts.l0_slowdown_trigger =
                static_cast<std::size_t>(config["l0_slowdown_trigger"].as_int());
        }
        if (config.contains("l0_stop_trigger")) {
            opts.l0_stop_trigger = static_cast<std::size_t>(config["l0_stop_trigger"].as_int());
        }
        opts.compaction_pool = std::move(compaction_pool);
        auto db = lsm::LsmDb::open(std::move(opts));
        if (!db.ok()) return db.status();
        return std::unique_ptr<Database>(std::move(db.value()));
    }
    return Status::InvalidArgument("unknown backend type: " + type);
}

}  // namespace hep::yokan

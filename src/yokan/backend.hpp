// Yokan database backend interface (paper §II-B).
//
// Yokan is Mochi's single-node KV component; it supports "a number of
// persistent backends such as RocksDB, BerkeleyDB, LevelDB, etc., as well as
// in-memory ones (based on C++ standard library containers such as
// std::map)". We provide two:
//   - "map":  std::map guarded by a shared mutex (the paper's in-memory mode)
//   - "lsm":  rockslite, a log-structured merge tree on local storage
//             (the paper's RocksDB-on-SSD mode)
// Both iterate keys in lexicographic order — the property HEPnOS's key
// crafting depends on (§II-C).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "abt/pool.hpp"
#include "common/buffer.hpp"
#include "common/json.hpp"
#include "common/status.hpp"

namespace hep::yokan {

struct KeyValue {
    std::string key;
    std::string value;

    template <typename A>
    void serialize(A& ar, unsigned /*version*/) {
        ar & key & value;
    }
    bool operator==(const KeyValue&) const = default;
};

/// One batch entry on the zero-copy path: the value is a refcounted Buffer so
/// building/shipping/storing a batch shares the product bytes instead of
/// copying them (KeyValue is the legacy copying equivalent).
struct BatchItem {
    std::string key;
    hep::Buffer value;

    template <typename A>
    void serialize(A& ar, unsigned /*version*/) {
        ar & key & value;
    }
};

/// Counters every backend maintains.
struct BackendStats {
    std::uint64_t puts = 0;
    std::uint64_t gets = 0;
    std::uint64_t scans = 0;
    std::uint64_t erases = 0;
};

class Database {
  public:
    virtual ~Database() = default;

    /// Store a key/value pair. With overwrite=false, an existing key is an
    /// AlreadyExists error (used for "create" semantics).
    virtual Status put(std::string_view key, std::string_view value, bool overwrite = true) = 0;

    /// Store an owned view by adopting the reference (no value copy on
    /// backends that support it). `value` must be owning — callers hold
    /// anchored views into the request frame or the product Buffer.
    virtual Status put_view(std::string_view key, hep::BufferView value,
                            bool overwrite = true) {
        return put(key, value.sv(), overwrite);
    }

    virtual Result<std::string> get(std::string_view key) = 0;

    /// Fetch the value as a refcounted view (backends that store views hand
    /// back the stored buffer without copying).
    virtual Result<hep::BufferView> get_view(std::string_view key) {
        Result<std::string> r = get(key);
        if (!r.ok()) return r.status();
        return hep::BufferView(hep::Buffer::adopt(std::move(r.value())));
    }

    virtual Result<bool> exists(std::string_view key) = 0;
    /// Value size without fetching the value.
    virtual Result<std::uint64_t> length(std::string_view key) = 0;
    virtual Status erase(std::string_view key) = 0;

    /// Ordered scan: visit keys strictly greater than `after` that start with
    /// `prefix`, in lexicographic order, until `fn` returns false or the key
    /// space is exhausted. `value` is only materialized if `with_values`.
    using ScanFn = std::function<bool(std::string_view key, std::string_view value)>;
    virtual Status scan(std::string_view after, std::string_view prefix, bool with_values,
                        const ScanFn& fn) = 0;

    /// Convenience wrappers over scan().
    Result<std::vector<std::string>> list_keys(std::string_view after, std::string_view prefix,
                                               std::size_t max);
    Result<std::vector<KeyValue>> list_keyvals(std::string_view after, std::string_view prefix,
                                               std::size_t max);

    /// Outcome of one bounded scan chunk (see scan_chunk()).
    struct ScanChunk {
        std::string last_key;        // last key examined ("" if none) — resume
                                     // with after=last_key to continue
        bool exhausted = true;       // the key space ran out (vs. chunk limit
                                     // hit or callee stopped early)
        std::uint64_t examined = 0;  // keys handed to `fn`
    };

    /// Bounded, resumable scan: like scan(), but examines at most `max_keys`
    /// keys and reports where it stopped. This is the iterate hook the
    /// query-pushdown cursors (src/query) and the paged list RPCs build on:
    /// repeated chunks with after=last_key walk the whole prefix without
    /// holding the backend's scan lock across pauses, at the cost of
    /// observing keys inserted between chunks (the documented ListReq
    /// resume-after contract).
    Result<ScanChunk> scan_chunk(std::string_view after, std::string_view prefix,
                                 std::uint64_t max_keys, bool with_values, const ScanFn& fn);

    /// Approximate number of live keys.
    virtual std::uint64_t size() const = 0;

    /// Persist buffered state (no-op for in-memory backends).
    virtual Status flush() = 0;

    [[nodiscard]] virtual std::string_view type() const noexcept = 0;
    [[nodiscard]] virtual BackendStats stats() const = 0;
};

/// Backend factory. `config` is the database's JSON description, e.g.
///   {"type": "map"} or
///   {"type": "lsm", "path": "/tmp/db1", "memtable_bytes": 4194304}
/// Relative lsm paths resolve under `base_dir`. `compaction_pool`, when set,
/// hosts the lsm backend's background flush/compaction ULT (shared across a
/// provider's databases); without it each lsm db runs its own xstream.
Result<std::unique_ptr<Database>> create_database(const json::Value& config,
                                                  const std::string& base_dir = ".",
                                                  std::shared_ptr<abt::Pool> compaction_pool = nullptr);

}  // namespace hep::yokan

// Yokan database backend interface (paper §II-B).
//
// Yokan is Mochi's single-node KV component; it supports "a number of
// persistent backends such as RocksDB, BerkeleyDB, LevelDB, etc., as well as
// in-memory ones (based on C++ standard library containers such as
// std::map)". We provide two:
//   - "map":  std::map guarded by a shared mutex (the paper's in-memory mode)
//   - "lsm":  rockslite, a log-structured merge tree on local storage
//             (the paper's RocksDB-on-SSD mode)
// Both iterate keys in lexicographic order — the property HEPnOS's key
// crafting depends on (§II-C).
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "abt/pool.hpp"
#include "common/buffer.hpp"
#include "common/json.hpp"
#include "common/status.hpp"

namespace hep::yokan {

struct KeyValue {
    std::string key;
    std::string value;

    template <typename A>
    void serialize(A& ar, unsigned /*version*/) {
        ar & key & value;
    }
    bool operator==(const KeyValue&) const = default;
};

/// One batch entry on the zero-copy path: the value is a refcounted Buffer so
/// building/shipping/storing a batch shares the product bytes instead of
/// copying them (KeyValue is the legacy copying equivalent).
struct BatchItem {
    std::string key;
    hep::Buffer value;

    template <typename A>
    void serialize(A& ar, unsigned /*version*/) {
        ar & key & value;
    }
};

/// Counters every backend maintains.
struct BackendStats {
    std::uint64_t puts = 0;
    std::uint64_t gets = 0;
    std::uint64_t scans = 0;
    std::uint64_t erases = 0;
};

/// Per-value MVCC metadata: the database-local sequence number the write
/// committed at, plus the ingest epoch it belongs to. Epoch 0 means "published
/// on write" — the default for every non-batched mutation.
struct Stamp {
    std::uint64_t seq = 0;
    std::uint32_t epoch = 0;
};

/// One monotonic mutation counter per database — the single sequence
/// authority. The lease-cache probe, the replica version watermark, the lsm
/// write sequence and MVCC stamps all draw from it (they used to be three
/// independent counters that could not be compared).
class SeqSource {
  public:
    /// The counter starts at 1 (not 0) so "current" of a never-written
    /// database is a valid *pin*: ReadPin/ReadView reserve seq 0 for "read
    /// latest", and the first write stamps at 2 > 1 — a snapshot taken of an
    /// empty database correctly excludes every later write.
    std::uint64_t next() noexcept {
        return counter_.fetch_add(1, std::memory_order_relaxed) + 1;
    }
    [[nodiscard]] std::uint64_t current() const noexcept {
        return counter_.load(std::memory_order_relaxed);
    }
    /// Raise the counter to at least `seq` (recovery replay, reseeds).
    void advance_to(std::uint64_t seq) noexcept {
        std::uint64_t cur = counter_.load(std::memory_order_relaxed);
        while (cur < seq &&
               !counter_.compare_exchange_weak(cur, seq, std::memory_order_relaxed)) {
        }
    }

  private:
    std::atomic<std::uint64_t> counter_{1};
};

/// The set of published ingest epochs a read may observe: every epoch
/// <= floor plus the sorted extras above it. Epoch 0 is always visible.
struct EpochFilter {
    std::uint32_t floor = 0;
    std::vector<std::uint32_t> extras;

    [[nodiscard]] bool visible(std::uint32_t epoch) const {
        if (epoch <= floor) return true;
        return std::binary_search(extras.begin(), extras.end(), epoch);
    }
    template <typename A>
    void serialize(A& ar, unsigned /*version*/) {
        ar & floor & extras;
    }
};

/// A pinned read position. Values stamped after `seq`, or belonging to an
/// epoch outside the filter, are invisible. seq == 0 means "latest": no
/// sequence bound, epochs resolved against the database's own published set
/// at read time.
struct ReadView {
    std::uint64_t seq = 0;
    EpochFilter epochs;
    [[nodiscard]] bool pinned() const noexcept { return seq != 0; }
};

/// Internal keys live under this prefix. Visibility-filtered scans hide them
/// unless the caller's prefix explicitly reaches into the internal range;
/// the raw scan() stays unfiltered (replica state streaming must see them).
inline constexpr char kInternalKeyPrefix = '\x01';
/// Publish marker: kPublishMarkerPrefix + BE32(epoch), value ignored. Written
/// through the ordinary (replicated, WAL-logged) put path, so publish records
/// inherit replication, recovery and failover repair for free.
inline constexpr std::string_view kPublishMarkerPrefix = "\x01\xff" "HEPNOS.pub" "\xff";
/// Epoch allocation counter (decimal string), lives on the registry database.
inline constexpr std::string_view kEpochCounterKey = "\x01\xff" "HEPNOS.epoch-counter";

std::string publish_marker_key(std::uint32_t epoch);
/// Epoch of a well-formed publish marker key; 0 for anything else.
std::uint32_t parse_publish_marker(std::string_view key);

class Database {
  public:
    virtual ~Database() = default;

    /// Store a key/value pair. With overwrite=false, an existing key is an
    /// AlreadyExists error (used for "create" semantics).
    virtual Status put(std::string_view key, std::string_view value, bool overwrite = true) = 0;

    /// Store an owned view by adopting the reference (no value copy on
    /// backends that support it). `value` must be owning — callers hold
    /// anchored views into the request frame or the product Buffer.
    virtual Status put_view(std::string_view key, hep::BufferView value,
                            bool overwrite = true) {
        return put(key, value.sv(), overwrite);
    }

    virtual Result<std::string> get(std::string_view key) = 0;

    /// Fetch the value as a refcounted view (backends that store views hand
    /// back the stored buffer without copying).
    virtual Result<hep::BufferView> get_view(std::string_view key) {
        Result<std::string> r = get(key);
        if (!r.ok()) return r.status();
        return hep::BufferView(hep::Buffer::adopt(std::move(r.value())));
    }

    virtual Result<bool> exists(std::string_view key) = 0;
    /// Value size without fetching the value.
    virtual Result<std::uint64_t> length(std::string_view key) = 0;
    virtual Status erase(std::string_view key) = 0;

    /// Ordered scan: visit keys strictly greater than `after` that start with
    /// `prefix`, in lexicographic order, until `fn` returns false or the key
    /// space is exhausted. `value` is only materialized if `with_values`.
    using ScanFn = std::function<bool(std::string_view key, std::string_view value)>;
    virtual Status scan(std::string_view after, std::string_view prefix, bool with_values,
                        const ScanFn& fn) = 0;

    /// Convenience wrappers over scan().
    Result<std::vector<std::string>> list_keys(std::string_view after, std::string_view prefix,
                                               std::size_t max);
    Result<std::vector<KeyValue>> list_keyvals(std::string_view after, std::string_view prefix,
                                               std::size_t max);

    /// Outcome of one bounded scan chunk (see scan_chunk()).
    struct ScanChunk {
        std::string last_key;        // last key examined ("" if none) — resume
                                     // with after=last_key to continue
        bool exhausted = true;       // the key space ran out (vs. chunk limit
                                     // hit or callee stopped early)
        std::uint64_t examined = 0;  // keys handed to `fn`
    };

    /// Bounded, resumable scan: like scan(), but examines at most `max_keys`
    /// keys and reports where it stopped. This is the iterate hook the
    /// query-pushdown cursors (src/query) and the paged list RPCs build on:
    /// repeated chunks with after=last_key walk the whole prefix without
    /// holding the backend's scan lock across pauses, at the cost of
    /// observing keys inserted between chunks (the documented ListReq
    /// resume-after contract).
    Result<ScanChunk> scan_chunk(std::string_view after, std::string_view prefix,
                                 std::uint64_t max_keys, bool with_values, const ScanFn& fn);

    /// Approximate number of live keys.
    virtual std::uint64_t size() const = 0;

    /// Persist buffered state (no-op for in-memory backends).
    virtual Status flush() = 0;

    [[nodiscard]] virtual std::string_view type() const noexcept = 0;
    [[nodiscard]] virtual BackendStats stats() const = 0;

    // ---- MVCC: stamps, snapshots, published epochs ------------------------

    /// Store with an explicit ingest epoch; the backend stamps the value with
    /// the next database sequence number. Epoch 0 = visible immediately.
    virtual Status put_stamped(std::string_view key, hep::BufferView value, bool overwrite,
                               std::uint32_t epoch) {
        (void)epoch;
        return put_view(key, std::move(value), overwrite);
    }

    /// Newest version of the key together with its stamp. No visibility
    /// filtering — that is get_view_at()'s job.
    virtual Result<std::pair<hep::BufferView, Stamp>> get_stamped(std::string_view key) {
        Result<hep::BufferView> r = get_view(key);
        if (!r.ok()) return r.status();
        return std::make_pair(std::move(r.value()), Stamp{});
    }

    using StampedScanFn =
        std::function<bool(std::string_view key, std::string_view value, const Stamp& stamp)>;
    /// scan() with each key's stamp; same ordering and resume contract.
    virtual Status scan_stamped(std::string_view after, std::string_view prefix,
                                bool with_values, const StampedScanFn& fn) {
        return scan(after, prefix, with_values,
                    [&](std::string_view key, std::string_view value) {
                        return fn(key, value, Stamp{});
                    });
    }

    /// This database's sequence authority.
    [[nodiscard]] SeqSource& seq_source() noexcept { return seq_; }
    [[nodiscard]] std::uint64_t seq() const noexcept { return seq_.current(); }

    /// Pin a snapshot at `seq` (0 = "now"). The returned view is a plain
    /// value: cheap to copy, never expires — reads through it are filtered,
    /// nothing is locked or retained.
    [[nodiscard]] ReadView snapshot_at(std::uint64_t seq) const;

    /// Published-epoch bookkeeping. Backends call observe_marker() when a
    /// publish-marker put commits (including replicated and replayed ones).
    void observe_marker(std::uint32_t epoch);
    [[nodiscard]] bool epoch_visible(std::uint32_t epoch) const;
    [[nodiscard]] EpochFilter published() const;

    /// Stamp visibility under a view. "Latest" consults the local published
    /// set; a pinned view only its own filter (captured at the epoch
    /// registry, so backend-local marker lag cannot unpublish a pinned epoch).
    [[nodiscard]] bool visible(const Stamp& stamp, const ReadView& view) const;

    // ---- visibility-filtered reads (what the RPC handlers serve from) -----
    Result<hep::BufferView> get_view_at(std::string_view key, const ReadView& view);
    Result<std::string> get_at(std::string_view key, const ReadView& view);
    Result<bool> exists_at(std::string_view key, const ReadView& view);
    Result<std::uint64_t> length_at(std::string_view key, const ReadView& view);
    Status scan_at(std::string_view after, std::string_view prefix, bool with_values,
                   const ReadView& view, const ScanFn& fn);
    Result<ScanChunk> scan_chunk_at(std::string_view after, std::string_view prefix,
                                    std::uint64_t max_keys, bool with_values,
                                    const ReadView& view, const ScanFn& fn);
    Result<std::vector<std::string>> list_keys_at(std::string_view after, std::string_view prefix,
                                                  std::size_t max, const ReadView& view);
    Result<std::vector<KeyValue>> list_keyvals_at(std::string_view after, std::string_view prefix,
                                                  std::size_t max, const ReadView& view);

  private:
    SeqSource seq_;
    mutable std::mutex pub_mu_;
    std::uint32_t pub_floor_ = 0;
    std::vector<std::uint32_t> pub_extra_;  // sorted, all > pub_floor_
};

/// Backend factory. `config` is the database's JSON description, e.g.
///   {"type": "map"} or
///   {"type": "lsm", "path": "/tmp/db1", "memtable_bytes": 4194304}
/// Relative lsm paths resolve under `base_dir`. `compaction_pool`, when set,
/// hosts the lsm backend's background flush/compaction ULT (shared across a
/// provider's databases); without it each lsm db runs its own xstream.
Result<std::unique_ptr<Database>> create_database(const json::Value& config,
                                                  const std::string& base_dir = ".",
                                                  std::shared_ptr<abt::Pool> compaction_pool = nullptr);

}  // namespace hep::yokan

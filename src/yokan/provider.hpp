// Yokan provider: answers KV RPCs for a set of named databases, mapped to a
// dedicated Argobots pool (paper §II-B and footnote 4).
//
// A database may additionally be a member of a replica group (src/replica):
// once configured via the `replica_configure` RPC, every mutation the
// provider accepts for it is routed through the group's ReplicaSet, which
// applies it locally and ships it to the backup members.
#pragma once

#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "abt/xstream.hpp"
#include "margo/engine.hpp"
#include "replica/replica_set.hpp"
#include "yokan/backend.hpp"
#include "yokan/protocol.hpp"

namespace hep::yokan {

class Provider final : public margo::Provider {
  public:
    /// Create a provider and register its RPC handlers.
    /// `config` example (same shape Bedrock produces):
    ///   {"databases": [{"name": "events0", "type": "map"},
    ///                  {"name": "products0", "type": "lsm", "path": "p0"}]}
    static Result<std::unique_ptr<Provider>> create(margo::Engine& engine,
                                                    rpc::ProviderId provider_id,
                                                    const json::Value& config,
                                                    std::shared_ptr<abt::Pool> pool = nullptr,
                                                    const std::string& base_dir = ".");

    /// Direct access to a managed database (server-side tooling, tests).
    [[nodiscard]] Database* find_database(const std::string& name);
    [[nodiscard]] std::vector<std::string> database_names() const;

    /// Replica group membership of a database (nullptr when not replicated).
    [[nodiscard]] replica::ReplicaSet* find_replica_set(const std::string& name);

    /// Monotonic mutation sequence of a database: the replica group's
    /// version when replicated, the backend's put+erase count otherwise.
    /// The cache tier's lease revalidation keys off it ("yokan_seq").
    [[nodiscard]] std::uint64_t mutation_seq(const std::string& name);

    /// Per-group replication counters (one stats object per replicated db);
    /// symbio's "replica" source snapshots this.
    [[nodiscard]] json::Value replica_stats() const;

  private:
    Provider(margo::Engine& engine, rpc::ProviderId provider_id,
             std::shared_ptr<abt::Pool> pool);
    void register_rpcs();

    Result<Database*> resolve(const std::string& name);
    Result<replica::ReplicaSet*> resolve_replica(const std::string& name);

    /// Join (or create the local member of) a replica group. Creates the
    /// database on the fly for backups that do not have it yet.
    Status configure_replica(const replica::ConfigureReq& req);

    /// Provider-level lsm defaults (the bedrock "lsm" section) merged into a
    /// database config that does not override them itself.
    [[nodiscard]] json::Value merged_db_config(const json::Value& db_cfg) const;
    /// The pool hosting every lsm database's compaction ULT (created on first
    /// use). Returns nullptr when the db config disables background work.
    std::shared_ptr<abt::Pool> compaction_pool_for(const json::Value& db_cfg);

    std::string base_dir_ = ".";
    json::Value lsm_defaults_;

    // One compaction pool (plus its xstreams) is shared by every lsm database
    // of this provider. Declared before databases_: destruction runs in
    // reverse order, so the workers' xstreams outlive the databases whose
    // shutdown joins their worker ULTs.
    std::shared_ptr<abt::Pool> compaction_pool_;
    std::vector<std::unique_ptr<abt::Xstream>> compaction_xstreams_;
    /// Guards the SHAPE of both maps (inserts at configure time vs. handler
    /// lookups); Database/ReplicaSet objects themselves are internally
    /// synchronized and their addresses are stable once inserted.
    mutable std::shared_mutex tables_mutex_;
    std::map<std::string, std::unique_ptr<Database>> databases_;
    std::map<std::string, std::unique_ptr<replica::ReplicaSet>> replica_sets_;
};

}  // namespace hep::yokan

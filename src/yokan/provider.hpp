// Yokan provider: answers KV RPCs for a set of named databases, mapped to a
// dedicated Argobots pool (paper §II-B and footnote 4).
#pragma once

#include <map>
#include <memory>
#include <string>

#include "margo/engine.hpp"
#include "yokan/backend.hpp"
#include "yokan/protocol.hpp"

namespace hep::yokan {

class Provider final : public margo::Provider {
  public:
    /// Create a provider and register its RPC handlers.
    /// `config` example (same shape Bedrock produces):
    ///   {"databases": [{"name": "events0", "type": "map"},
    ///                  {"name": "products0", "type": "lsm", "path": "p0"}]}
    static Result<std::unique_ptr<Provider>> create(margo::Engine& engine,
                                                    rpc::ProviderId provider_id,
                                                    const json::Value& config,
                                                    std::shared_ptr<abt::Pool> pool = nullptr,
                                                    const std::string& base_dir = ".");

    /// Direct access to a managed database (server-side tooling, tests).
    [[nodiscard]] Database* find_database(const std::string& name);
    [[nodiscard]] std::vector<std::string> database_names() const;

  private:
    Provider(margo::Engine& engine, rpc::ProviderId provider_id,
             std::shared_ptr<abt::Pool> pool);
    void register_rpcs();

    Result<Database*> resolve(const std::string& name);

    std::map<std::string, std::unique_ptr<Database>> databases_;
};

}  // namespace hep::yokan

// Concurrent-read skiplist used as the LSM active memtable representation.
//
// Concurrency contract (matches LsmDb's write path):
//   * exactly ONE logical writer at a time — inserts are serialized by the
//     db-level write_mutex_, so the skiplist never races writer-vs-writer;
//   * ANY number of concurrent readers with NO lock — readers traverse next
//     pointers with acquire loads while the writer publishes with release
//     stores (and a CAS so a future multi-writer caller stays correct);
//   * nodes, keys, values and payload records all live in the memtable's
//     Arena and are trivially destructible, so teardown is freeing the arena
//     blocks — no per-node walk, no destructor ordering hazards.
//
// Overwrites never mutate a published payload: a fresh Payload is arena-
// allocated and swapped in with a release store, the displaced one stays
// reachable through `older` (readers that loaded it mid-probe keep a valid
// record until the arena dies at seal+flush retirement).
#pragma once

#include "yokan/backend.hpp"
#include "yokan/lsm/arena.hpp"

#include <atomic>
#include <cstdint>
#include <cstring>
#include <string_view>

namespace hep::yokan::lsm {

class SkipList {
  public:
    static constexpr int kDefaultMaxHeight = 12;
    static constexpr int kHardMaxHeight    = 30;

    struct Payload {
        const char* data;
        std::uint32_t len;
        bool tombstone;
        Stamp stamp;
        Payload* older;

        [[nodiscard]] std::string_view sv() const noexcept { return {data, len}; }
    };

    struct Node {
        const char* key_data;
        std::uint32_t key_len;
        std::int32_t height;
        std::atomic<Payload*> payload;

        [[nodiscard]] std::string_view key() const noexcept { return {key_data, key_len}; }
        [[nodiscard]] std::atomic<Node*>* nexts() noexcept {
            return reinterpret_cast<std::atomic<Node*>*>(this + 1);
        }
        [[nodiscard]] std::atomic<Node*>& next(int level) noexcept { return nexts()[level]; }
    };

    explicit SkipList(Arena& arena, int max_height = kDefaultMaxHeight)
        : arena_(arena),
          max_height_(max_height < 1 ? 1 : (max_height > kHardMaxHeight ? kHardMaxHeight : max_height)) {
        head_ = alloc_node(std::string_view{}, max_height_);
        for (int i = 0; i < max_height_; ++i) head_->next(i).store(nullptr, std::memory_order_relaxed);
    }

    SkipList(const SkipList&) = delete;
    SkipList& operator=(const SkipList&) = delete;

    /// Writer-only. Copies key/value into the arena; overwrites swap the
    /// payload pointer, leaving the node (and the old payload) in place.
    ///
    /// A splice (finger) cache remembers the exact per-level predecessors of
    /// the last insert. HEP ingest arrives in acquisition order, so the next
    /// key usually sorts at or just past the previous one: re-stamping the
    /// same key is an O(1) payload swap, and an ascending key resumes the
    /// search from the cached fingers instead of the head — O(1) amortized
    /// for ordered streams. The cache is valid because this list is
    /// insert-only and has a single writer; readers never touch it.
    void insert(std::string_view key, std::string_view value, Stamp stamp, bool tombstone) {
        Node* prev[kHardMaxHeight];
        auto* payload = make_payload(value, stamp, tombstone);
        if (last_node_ != nullptr) {
            const int c = key.compare(last_node_->key());
            if (c == 0) {  // re-stamp of the key we just wrote
                payload->older = last_node_->payload.load(std::memory_order_relaxed);
                last_node_->payload.store(payload, std::memory_order_release);
                return;
            }
            if (c > 0) {
                // Every splice_[i] sorts before last_node_ <= key, so it is a
                // valid place to resume the level-i walk. Carry x down like a
                // normal search (so a far-away key stays O(log n)) and jump
                // to the finger whenever it is further right (so a nearby
                // ascending key is O(1)).
                const int top = height_.load(std::memory_order_relaxed) - 1;
                Node* x = splice_[top];
                for (int level = top;; --level) {
                    if (splice_[level]->key() > x->key()) x = splice_[level];
                    for (;;) {
                        Node* nxt = x->next(level).load(std::memory_order_relaxed);
                        if (nxt != nullptr && nxt->key() < key) {
                            x = nxt;
                        } else {
                            break;
                        }
                    }
                    prev[level] = x;
                    if (level == 0) break;
                }
                for (int i = top + 1; i < max_height_; ++i) prev[i] = splice_[i];
                finish_insert(key, payload, prev,
                              prev[0]->next(0).load(std::memory_order_relaxed));
                return;
            }
        }
        Node* found = find_geq(key, prev);
        finish_insert(key, payload, prev, found);
    }

    /// Lock-free point lookup; returns the current payload or nullptr.
    [[nodiscard]] const Payload* find(std::string_view key) const {
        Node* n = const_cast<SkipList*>(this)->find_geq(key, nullptr);
        if (n == nullptr || n->key() != key) return nullptr;
        return n->payload.load(std::memory_order_acquire);
    }

    /// First node with node->key() >= key (nullptr past the end). Lock-free.
    [[nodiscard]] Node* seek_geq(std::string_view key) const {
        return const_cast<SkipList*>(this)->find_geq(key, nullptr);
    }

    /// First node with node->key() > key (nullptr past the end). Lock-free.
    [[nodiscard]] Node* seek_gt(std::string_view key) const {
        Node* n = seek_geq(key);
        if (n != nullptr && n->key() == key) n = n->next(0).load(std::memory_order_acquire);
        return n;
    }

    [[nodiscard]] Node* first() const { return head_->next(0).load(std::memory_order_acquire); }
    [[nodiscard]] static Node* next_of(Node* n) { return n->next(0).load(std::memory_order_acquire); }

    [[nodiscard]] std::size_t count() const noexcept { return count_.load(std::memory_order_relaxed); }
    [[nodiscard]] Arena& arena() noexcept { return arena_; }

  private:
    Node* alloc_node(std::string_view key, int height) {
        const std::size_t node_bytes = sizeof(Node) + sizeof(std::atomic<Node*>) * std::size_t(height);
        char* raw = arena_.allocate(node_bytes + key.size(), alignof(Node));
        auto* node = reinterpret_cast<Node*>(raw);
        char* key_dst = raw + node_bytes;
        if (!key.empty()) std::memcpy(key_dst, key.data(), key.size());
        node->key_data = key_dst;
        node->key_len = static_cast<std::uint32_t>(key.size());
        node->height = height;
        node->payload.store(nullptr, std::memory_order_relaxed);
        for (int i = 0; i < height; ++i) node->next(i).store(nullptr, std::memory_order_relaxed);
        return node;
    }

    Payload* make_payload(std::string_view value, Stamp stamp, bool tombstone) {
        char* raw = arena_.allocate(sizeof(Payload) + value.size(), alignof(Payload));
        auto* p = reinterpret_cast<Payload*>(raw);
        char* dst = raw + sizeof(Payload);
        if (!value.empty()) std::memcpy(dst, value.data(), value.size());
        p->data = dst;
        p->len = static_cast<std::uint32_t>(value.size());
        p->tombstone = tombstone;
        p->stamp = stamp;
        p->older = nullptr;
        return p;
    }

    /// Shared insert tail: `prev` holds the per-level predecessors of `key`,
    /// `found` is prev[0]'s successor. Links a new node (or swaps the payload
    /// of an existing one) and refreshes the splice cache.
    void finish_insert(std::string_view key, Payload* payload, Node** prev, Node* found) {
        if (found != nullptr && found->key() == key) {
            payload->older = found->payload.load(std::memory_order_relaxed);
            found->payload.store(payload, std::memory_order_release);
            for (int i = 0; i < max_height_; ++i) splice_[i] = prev[i];
            last_node_ = found;
            return;
        }
        const int h = random_height();
        if (h > height_.load(std::memory_order_relaxed)) {
            for (int i = height_.load(std::memory_order_relaxed); i < h; ++i) prev[i] = head_;
            // Single writer: a plain store is enough; readers that still see
            // the old height simply skip the new upper levels.
            height_.store(h, std::memory_order_relaxed);
        }
        Node* node = alloc_node(key, h);
        node->payload.store(payload, std::memory_order_relaxed);
        for (int i = 0; i < h; ++i) {
            // Publish bottom-up so a reader that finds the node at level i can
            // always descend through fully-linked lower levels.
            Node* expected = prev[i]->next(i).load(std::memory_order_relaxed);
            node->next(i).store(expected, std::memory_order_relaxed);
            while (!prev[i]->next(i).compare_exchange_weak(
                       expected, node, std::memory_order_release, std::memory_order_relaxed)) {
                node->next(i).store(expected, std::memory_order_relaxed);
            }
        }
        count_.fetch_add(1, std::memory_order_relaxed);
        for (int i = 0; i < max_height_; ++i) splice_[i] = i < h ? node : prev[i];
        last_node_ = node;
    }

    /// Core search: returns the first node >= key at level 0; if prev != null
    /// fills prev[0..max_height_) with the rightmost node < key per level.
    Node* find_geq(std::string_view key, Node** prev) {
        Node* x = head_;
        int level = height_.load(std::memory_order_acquire) - 1;
        Node* out = nullptr;
        for (;; --level) {
            for (;;) {
                Node* nxt = x->next(level).load(std::memory_order_acquire);
                if (nxt != nullptr && nxt->key() < key) {
                    x = nxt;
                } else {
                    if (level == 0) out = nxt;
                    break;
                }
            }
            if (prev != nullptr) prev[level] = x;
            if (level == 0) break;
        }
        if (prev != nullptr) {
            for (int i = height_.load(std::memory_order_relaxed); i < max_height_; ++i) prev[i] = head_;
        }
        return out;
    }

    int random_height() {
        // xorshift64*; 1/4 branching factor like leveldb.
        std::uint64_t x = rnd_;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        rnd_ = x;
        x *= 0x2545F4914F6CDD1DULL;
        int h = 1;
        while (h < max_height_ && (x & 3) == 0) {
            ++h;
            x >>= 2;
        }
        return h;
    }

    Arena& arena_;
    const int max_height_;
    Node* head_;
    std::atomic<int> height_{1};
    std::atomic<std::size_t> count_{0};
    std::uint64_t rnd_ = 0x9E3779B97F4A7C15ULL;
    // Writer-only splice cache: exact per-level predecessors of last_node_.
    // Never read by the lock-free reader paths.
    Node* splice_[kHardMaxHeight] = {};
    Node* last_node_ = nullptr;
};

}  // namespace hep::yokan::lsm

#include "yokan/lsm/wal.hpp"

#include <cstring>
#include <fstream>
#include <sstream>

#include "common/crc32.hpp"

namespace hep::yokan::lsm {

Wal::~Wal() { close(); }

Status Wal::open(const std::string& path) {
    close();
    path_ = path;
    file_ = std::fopen(path.c_str(), "ab");
    if (!file_) return Status::IOError("cannot open WAL " + path);
    return Status::OK();
}

void Wal::close() {
    if (file_) {
        std::fclose(file_);
        file_ = nullptr;
    }
}

Status Wal::append(RecordType type, std::string_view key, std::string_view epoch_prefix,
                   std::string_view value) {
    if (!file_) return Status::IOError("WAL not open");
    // Build the whole frame in a reused scratch buffer and hand it to stdio
    // as ONE fwrite: no per-record allocation, one stdio lock round-trip.
    frame_.clear();
    frame_.reserve(8 + 1 + 4 + key.size() + epoch_prefix.size() + value.size());
    frame_.append(8, '\0');  // crc + len patched below
    frame_.push_back(static_cast<char>(type));
    const std::uint32_t klen = static_cast<std::uint32_t>(key.size());
    frame_.append(reinterpret_cast<const char*>(&klen), 4);
    frame_.append(key);
    frame_.append(epoch_prefix);
    frame_.append(value);

    const std::string_view body(frame_.data() + 8, frame_.size() - 8);
    const std::uint32_t crc = crc32(body);
    const std::uint32_t len = static_cast<std::uint32_t>(body.size());
    std::memcpy(frame_.data(), &crc, 4);
    std::memcpy(frame_.data() + 4, &len, 4);
    if (std::fwrite(frame_.data(), 1, frame_.size(), file_) != frame_.size()) {
        return Status::IOError("WAL append failed on " + path_);
    }
    bytes_written_ += frame_.size();
    return Status::OK();
}

Status Wal::append_put(std::string_view key, std::string_view value) {
    return append(RecordType::kPut, key, {}, value);
}

Status Wal::append_put_epoch(std::string_view key, std::string_view value,
                             std::uint32_t epoch) {
    const std::string_view prefix(reinterpret_cast<const char*>(&epoch), 4);
    return append(RecordType::kPutEpoch, key, prefix, value);
}

Status Wal::append_delete(std::string_view key) {
    return append(RecordType::kDelete, key, {}, {});
}

Status Wal::sync() {
    if (file_ && std::fflush(file_) != 0) return Status::IOError("WAL flush failed");
    return Status::OK();
}

Status Wal::reset() {
    close();
    // Truncate by reopening in write mode, then switch back to append.
    std::FILE* f = std::fopen(path_.c_str(), "wb");
    if (!f) return Status::IOError("cannot truncate WAL " + path_);
    std::fclose(f);
    bytes_written_ = 0;
    return open(path_);
}

Result<std::uint64_t> Wal::replay(const std::string& path, const ReplayFn& fn) {
    std::ifstream in(path, std::ios::binary);
    if (!in) return std::uint64_t{0};  // no log yet: nothing to replay
    std::ostringstream ss;
    ss << in.rdbuf();
    const std::string data = ss.str();

    std::uint64_t applied = 0;
    std::size_t pos = 0;
    while (pos + 8 <= data.size()) {
        std::uint32_t crc = 0, len = 0;
        std::memcpy(&crc, data.data() + pos, 4);
        std::memcpy(&len, data.data() + pos + 4, 4);
        if (pos + 8 + len > data.size()) break;  // torn tail record
        std::string_view body(data.data() + pos + 8, len);
        if (crc32(body) != crc) break;  // corrupt record: stop replay
        if (len < 5) break;
        const auto type = static_cast<RecordType>(body[0]);
        std::uint32_t klen = 0;
        std::memcpy(&klen, body.data() + 1, 4);
        if (5 + klen > len) break;
        std::string_view key = body.substr(5, klen);
        std::string_view value = body.substr(5 + klen);
        if (type != RecordType::kPut && type != RecordType::kDelete &&
            type != RecordType::kPutEpoch) {
            break;
        }
        if (type == RecordType::kPutEpoch && value.size() < 4) break;
        fn(type, key, value);
        ++applied;
        pos += 8 + len;
    }
    return applied;
}

}  // namespace hep::yokan::lsm

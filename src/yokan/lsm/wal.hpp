// Write-ahead log: every mutation is appended (CRC-framed) before it is
// applied to the memtable, so a crash loses nothing that was acknowledged.
//
// Record framing:  [crc32 u32][len u32][type u8][klen u32][key][value]
// type: 1 = put, 2 = delete (value empty), 3 = epoch-tagged put whose value
// is [epoch u32][payload]. Replay stops at the first corrupt or truncated
// record (standard torn-write handling).
#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <string_view>

#include "common/status.hpp"

namespace hep::yokan::lsm {

class Wal {
  public:
    enum class RecordType : std::uint8_t { kPut = 1, kDelete = 2, kPutEpoch = 3 };

    Wal() = default;
    ~Wal();
    Wal(const Wal&) = delete;
    Wal& operator=(const Wal&) = delete;

    /// Open (creating if missing) the log at `path` for appending.
    Status open(const std::string& path);

    Status append_put(std::string_view key, std::string_view value);
    /// Epoch-tagged put: the record value is [epoch u32][value].
    Status append_put_epoch(std::string_view key, std::string_view value, std::uint32_t epoch);
    Status append_delete(std::string_view key);

    /// Flush userspace buffers (fsync is out of scope for the simulator).
    Status sync();

    /// Close, truncate to zero and reopen — called after a memtable flush.
    Status reset();

    /// Close the file handle.
    void close();

    [[nodiscard]] std::uint64_t bytes_written() const noexcept { return bytes_written_; }

    /// Replay records from `path` in order. Invokes `fn(type, key, value)`.
    /// Returns the number of complete records applied; stops quietly at the
    /// first torn/corrupt record.
    using ReplayFn = std::function<void(RecordType, std::string_view key, std::string_view value)>;
    static Result<std::uint64_t> replay(const std::string& path, const ReplayFn& fn);

  private:
    /// `value` is written as epoch_prefix + value; an empty prefix means the
    /// record value is just `value`. Splitting the two pieces keeps the
    /// epoch-tagged path from building a temporary concatenation per put.
    Status append(RecordType type, std::string_view key, std::string_view epoch_prefix,
                  std::string_view value);

    std::FILE* file_ = nullptr;
    std::string path_;
    std::string frame_;  // reused [crc][len][body] scratch; grows to max record
    std::uint64_t bytes_written_ = 0;
};

}  // namespace hep::yokan::lsm

// Bump-pointer arena backing one memtable's skiplist nodes, keys and value
// payload records. All allocations share a handful of large blocks, so an
// insert never touches the general-purpose heap, and sealing a memtable hands
// the whole arena (and thus every node a reader may still be traversing) to
// the flush ULT in O(1). Blocks are freed only when the owning memtable's
// last reference drops — after the flush completed AND every reader released
// its pin — which is what makes lock-free reads of the active memtable safe.
//
// Allocation is single-writer: LsmDb serializes inserts under write_mutex_,
// so the arena needs no internal synchronization. Readers never allocate.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace hep::yokan::lsm {

class Arena {
  public:
    explicit Arena(std::size_t block_bytes = 256 * 1024)
        : block_bytes_(block_bytes < 1024 ? 1024 : block_bytes) {}

    Arena(const Arena&) = delete;
    Arena& operator=(const Arena&) = delete;

    /// Aligned allocation; bytes live until the arena is destroyed.
    char* allocate(std::size_t n, std::size_t align = alignof(std::max_align_t)) {
        const std::size_t pad = padding_for(align);
        if (pad + n > remaining_) {
            refill(n + align);
            return allocate(n, align);
        }
        ptr_ += pad;
        remaining_ -= pad;
        char* out = ptr_;
        ptr_ += n;
        remaining_ -= n;
        return out;
    }

    /// Total bytes reserved from the heap (the memtable memory footprint).
    [[nodiscard]] std::size_t allocated_bytes() const noexcept { return allocated_; }
    [[nodiscard]] std::size_t block_count() const noexcept { return blocks_.size(); }

  private:
    [[nodiscard]] std::size_t padding_for(std::size_t align) const noexcept {
        const auto addr = reinterpret_cast<std::uintptr_t>(ptr_);
        const std::size_t misalign = addr & (align - 1);
        return misalign == 0 ? 0 : align - misalign;
    }

    void refill(std::size_t at_least) {
        // Oversized requests get a dedicated block; the partially-used current
        // block (if any) keeps serving small allocations next time around —
        // we only switch when the new block is the regular size.
        const std::size_t size = at_least > block_bytes_ ? at_least : block_bytes_;
        blocks_.push_back(std::make_unique<char[]>(size));
        allocated_ += size;
        ptr_ = blocks_.back().get();
        remaining_ = size;
    }

    std::size_t block_bytes_;
    std::size_t allocated_ = 0;
    char* ptr_ = nullptr;
    std::size_t remaining_ = 0;
    std::vector<std::unique_ptr<char[]>> blocks_;
};

}  // namespace hep::yokan::lsm

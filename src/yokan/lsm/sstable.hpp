// Immutable sorted-string tables for rockslite.
//
// Layout:
//   [data block]* [index] [bloom] [footer]
//   data block: sequence of (klen u32, vlen u32, key, value); vlen of
//               0xFFFFFFFF marks a tombstone. Blocks are cut at ~block_bytes.
//   index:      count u64, then per block (last_klen u32, last_key,
//               offset u64, size u64, crc32 u32)
//   bloom:      serialized BloomFilter over every key in the table
//   footer:     index_off u64, index_size u64, bloom_off u64, bloom_size u64,
//               entry_count u64, magic u64
#pragma once

#include <cstdint>
#include <cstdio>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.hpp"
#include "yokan/lsm/bloom.hpp"

namespace hep::yokan::lsm {

inline constexpr std::uint64_t kSstMagic = 0x524F434B534C5445ULL;  // "ROCKSLTE"
inline constexpr std::uint32_t kTombstoneLen = 0xFFFFFFFFu;

/// Metadata tracked per table in the manifest.
struct TableMeta {
    std::uint64_t file_number = 0;
    std::string min_key;
    std::string max_key;
    std::uint64_t entries = 0;
    std::uint64_t bytes = 0;
    /// Values carry a 12-byte (seq u64, epoch u32) MVCC stamp prefix. Tables
    /// written before the stamp format (manifest format 1) read as (0, 0).
    bool has_meta = false;
};

/// Simple shared LRU cache of decoded data blocks, keyed by (file, block#).
class BlockCache {
  public:
    explicit BlockCache(std::size_t capacity_bytes) : capacity_(capacity_bytes) {}

    std::shared_ptr<const std::string> lookup(std::uint64_t file_number, std::uint64_t block);
    void insert(std::uint64_t file_number, std::uint64_t block,
                std::shared_ptr<const std::string> data);

    [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }
    [[nodiscard]] std::uint64_t misses() const noexcept { return misses_; }

  private:
    struct Entry {
        std::uint64_t key;
        std::shared_ptr<const std::string> data;
    };
    std::mutex mutex_;
    std::size_t capacity_;
    std::size_t used_ = 0;
    std::list<Entry> lru_;  // front = most recent
    std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index_;
    std::uint64_t hits_ = 0, misses_ = 0;
};

/// Streaming writer; add() must be called in strictly increasing key order.
class SstWriter {
  public:
    SstWriter(std::string path, std::uint64_t file_number, std::size_t block_bytes,
              std::size_t expected_keys);

    Status add(std::string_view key, std::string_view value, bool tombstone = false);

    /// Finish the table; returns its metadata.
    Result<TableMeta> finish();

  private:
    void cut_block();

    std::string path_;
    TableMeta meta_;
    std::size_t block_bytes_;
    BloomFilter bloom_;
    std::string current_block_;
    std::string file_contents_;
    struct IndexEntry {
        std::string last_key;
        std::uint64_t offset;
        std::uint64_t size;
        std::uint32_t crc;
    };
    std::vector<IndexEntry> index_;
    std::string last_key_;
    bool have_last_ = false;
};

/// Reader with point lookups and ordered iteration. Index and bloom are
/// memory-resident; data blocks go through the shared BlockCache.
class SstReader {
  public:
    static Result<std::shared_ptr<SstReader>> open(const std::string& path,
                                                   std::uint64_t file_number,
                                                   std::shared_ptr<BlockCache> cache);
    ~SstReader();

    /// Point lookup. outer Result failing with NotFound => key absent;
    /// nullopt value => tombstone.
    Result<std::optional<std::string>> get(std::string_view key);

    [[nodiscard]] std::uint64_t entries() const noexcept { return entry_count_; }
    [[nodiscard]] std::uint64_t file_number() const noexcept { return file_number_; }
    [[nodiscard]] const std::string& path() const noexcept { return path_; }

    /// Forward iterator over (key, value, tombstone) triples.
    class Iterator {
      public:
        explicit Iterator(std::shared_ptr<SstReader> reader) : reader_(std::move(reader)) {}

        /// Position at the first key strictly greater than `after`.
        Status seek_after(std::string_view after) { return seek(after, /*inclusive=*/false); }
        /// Position at the first key greater than or equal to `bound`.
        Status seek_geq(std::string_view bound) { return seek(bound, /*inclusive=*/true); }
        [[nodiscard]] bool valid() const noexcept { return valid_; }
        [[nodiscard]] std::string_view key() const noexcept { return key_; }
        [[nodiscard]] std::string_view value() const noexcept { return value_; }
        [[nodiscard]] bool is_tombstone() const noexcept { return tombstone_; }
        Status next();

      private:
        Status seek(std::string_view bound, bool inclusive);
        Status load_block(std::size_t block_idx);
        bool parse_current();

        std::shared_ptr<SstReader> reader_;
        std::shared_ptr<const std::string> block_;
        std::size_t block_idx_ = 0;
        std::size_t pos_ = 0;
        bool valid_ = false;
        std::string key_, value_;
        bool tombstone_ = false;
    };

    Iterator make_iterator() { return Iterator(shared_from_this_()); }

  private:
    friend class Iterator;
    SstReader() = default;

    std::shared_ptr<SstReader> shared_from_this_() { return self_.lock(); }

    /// Read data block `idx` (through the cache).
    Result<std::shared_ptr<const std::string>> read_block(std::size_t idx);

    /// Index of the first block whose last_key >= key, or npos.
    [[nodiscard]] std::size_t find_block(std::string_view key) const;

    std::string path_;
    std::uint64_t file_number_ = 0;
    std::FILE* file_ = nullptr;
    std::mutex file_mutex_;
    std::shared_ptr<BlockCache> cache_;
    struct IndexEntry {
        std::string last_key;
        std::uint64_t offset;
        std::uint64_t size;
        std::uint32_t crc;
    };
    std::vector<IndexEntry> index_;
    BloomFilter bloom_{0};
    std::uint64_t entry_count_ = 0;
    std::weak_ptr<SstReader> self_;
};

}  // namespace hep::yokan::lsm

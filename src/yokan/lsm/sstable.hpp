// Immutable sorted-string tables for rockslite.
//
// Format v2 (written by this code):
//   [block envelope]* [index] [bloom] [footer]
//   block envelope: [codec u8][pad u8][raw_len u32][payload] (see block.hpp);
//                   the raw block is a sequence of (klen u32, vlen u32, key,
//                   value) records, vlen 0xFFFFFFFF marking a tombstone,
//                   cut at ~block_bytes of raw data.
//   index:          count u64, then per block:
//                     last_klen u32, last_key,
//                     offset u64, size u64 (stored envelope bytes),
//                     crc32 u32 (over the envelope), raw_len u32,
//                     bloom_len u32, bloom bytes (per-block filter),
//                     restart_count u32, restart offsets (u32 each, every
//                     16th record, offsets into the raw block)
//   bloom:          whole-table BloomFilter over every key
//   footer (56 B):  index_off u64, index_size u64, bloom_off u64,
//                   bloom_size u64, entry_count u64, flags u64, magic2 u64
//
// Point-get path: table bloom -> block binary search -> per-block bloom
// (skips the decode entirely on a miss) -> one envelope fetched via the
// two-tier BlockCache -> restart-array binary search -> short linear scan.
// At most ONE block is ever decompressed per get.
//
// Format v1 (48-byte footer, kSstMagic, no envelopes / per-block metadata)
// stays fully readable for upgrades; v1 blocks bypass the compressed tier.
#pragma once

#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"
#include "yokan/lsm/block.hpp"
#include "yokan/lsm/bloom.hpp"

namespace hep::yokan::lsm {

inline constexpr std::uint64_t kSstMagic = 0x524F434B534C5445ULL;   // "ROCKSLTE" (v1)
inline constexpr std::uint64_t kSstMagic2 = 0x524F434B534C5432ULL;  // "ROCKSLT2" (v2)
inline constexpr std::uint32_t kTombstoneLen = 0xFFFFFFFFu;
inline constexpr std::size_t kRestartInterval = 16;

/// Metadata tracked per table in the manifest.
struct TableMeta {
    std::uint64_t file_number = 0;
    std::string min_key;
    std::string max_key;
    std::uint64_t entries = 0;
    std::uint64_t bytes = 0;
    /// Values carry a 12-byte (seq u64, epoch u32) MVCC stamp prefix. Tables
    /// written before the stamp format (manifest format 1) read as (0, 0).
    bool has_meta = false;
};

/// Streaming writer; add() must be called in strictly increasing key order.
class SstWriter {
  public:
    SstWriter(std::string path, std::uint64_t file_number, std::size_t block_bytes,
              std::size_t expected_keys, bool compress_blocks = false);

    Status add(std::string_view key, std::string_view value, bool tombstone = false);

    /// Finish the table; returns its metadata.
    Result<TableMeta> finish();

  private:
    void cut_block();

    std::string path_;
    TableMeta meta_;
    std::size_t block_bytes_;
    bool compress_blocks_;
    BloomFilter bloom_;
    std::string current_block_;
    std::size_t block_entries_ = 0;
    std::vector<std::string> block_keys_;
    std::vector<std::uint32_t> restarts_;
    std::string file_contents_;
    struct IndexEntry {
        std::string last_key;
        std::uint64_t offset;
        std::uint64_t size;
        std::uint32_t crc;
        std::uint32_t raw_len;
        std::string bloom_bytes;
        std::vector<std::uint32_t> restarts;
    };
    std::vector<IndexEntry> index_;
    std::string last_key_;
    bool have_last_ = false;
};

/// Reader with point lookups and ordered iteration. Index, per-block blooms
/// and restart arrays are memory-resident; data blocks go through the shared
/// two-tier BlockCache (block.hpp).
class SstReader {
  public:
    static Result<std::shared_ptr<SstReader>> open(const std::string& path,
                                                   std::uint64_t file_number,
                                                   std::shared_ptr<BlockCache> cache);
    ~SstReader();

    /// Point lookup. outer Result failing with NotFound => key absent;
    /// nullopt value => tombstone.
    Result<std::optional<std::string>> get(std::string_view key);

    [[nodiscard]] std::uint64_t entries() const noexcept { return entry_count_; }
    [[nodiscard]] std::uint64_t file_number() const noexcept { return file_number_; }
    [[nodiscard]] const std::string& path() const noexcept { return path_; }
    [[nodiscard]] int format_version() const noexcept { return version_; }

    /// Forward iterator over (key, value, tombstone) triples.
    class Iterator {
      public:
        explicit Iterator(std::shared_ptr<SstReader> reader) : reader_(std::move(reader)) {}

        /// Position at the first key strictly greater than `after`.
        Status seek_after(std::string_view after) { return seek(after, /*inclusive=*/false); }
        /// Position at the first key greater than or equal to `bound`.
        Status seek_geq(std::string_view bound) { return seek(bound, /*inclusive=*/true); }
        [[nodiscard]] bool valid() const noexcept { return valid_; }
        [[nodiscard]] std::string_view key() const noexcept { return key_; }
        [[nodiscard]] std::string_view value() const noexcept { return value_; }
        [[nodiscard]] bool is_tombstone() const noexcept { return tombstone_; }
        Status next();

      private:
        Status seek(std::string_view bound, bool inclusive);
        Status load_block(std::size_t block_idx);
        bool parse_current();

        std::shared_ptr<SstReader> reader_;
        std::shared_ptr<const std::string> block_;
        std::size_t block_idx_ = 0;
        std::size_t pos_ = 0;
        bool valid_ = false;
        std::string key_, value_;
        bool tombstone_ = false;
    };

    Iterator make_iterator() { return Iterator(shared_from_this_()); }

  private:
    friend class Iterator;
    SstReader() = default;

    std::shared_ptr<SstReader> shared_from_this_() { return self_.lock(); }

    /// Raw (decoded) data block `idx`, through the two-tier cache.
    Result<std::shared_ptr<const std::string>> read_block(std::size_t idx);

    /// Index of the first block whose last_key >= key, or npos.
    [[nodiscard]] std::size_t find_block(std::string_view key) const;

    std::string path_;
    std::uint64_t file_number_ = 0;
    int version_ = 2;
    std::FILE* file_ = nullptr;
    std::mutex file_mutex_;
    std::shared_ptr<BlockCache> cache_;
    struct IndexEntry {
        std::string last_key;
        std::uint64_t offset;
        std::uint64_t size;     // stored bytes on disk (envelope for v2)
        std::uint32_t crc;      // over the stored bytes
        std::uint32_t raw_len;  // decoded block bytes
        bool has_bloom = false;
        BloomFilter bloom{0};
        std::vector<std::uint32_t> restarts;
    };
    std::vector<IndexEntry> index_;
    BloomFilter bloom_{0};
    std::uint64_t entry_count_ = 0;
    std::weak_ptr<SstReader> self_;
};

}  // namespace hep::yokan::lsm

// Memtable representations for the LSM write path.
//
// LsmDb talks to the active memtable through MemTableRep so the legacy
// std::map representation and the concurrent skiplist can be swapped with the
// `memtable` knob (and ablated against each other in bench/abl_lsm):
//
//   * "skiplist" (default): lock-free reads — get/cursor probes never take a
//     lock; inserts are serialized by the caller (LsmDb's write_mutex_).
//     Nodes, keys and values live in the rep's Arena.
//   * "map": the legacy std::map behind an internal shared_mutex. Value bytes
//     still live in an Arena so a MemEntry copied out under the lock stays
//     valid after the lock is released (overwrites allocate fresh bytes, they
//     never free old ones).
//
// Lifetime rule either way: the string_views inside MemEntry (and cursor
// keys for the skiplist rep) point into the rep's arena and are valid for as
// long as the rep object is alive — LsmDb anchors escaping views to the
// owning memtable's shared_ptr.
#pragma once

#include "yokan/backend.hpp"
#include "yokan/lsm/arena.hpp"
#include "yokan/lsm/skiplist.hpp"

#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>

namespace hep::yokan::lsm {

/// One record copied out of a memtable. `value` is empty for tombstones.
struct MemEntry {
    std::string_view value;
    Stamp stamp;
    bool tombstone = false;
};

class MemTableRep {
  public:
    /// Ordered cursor over the rep. A positioned cursor stays valid off-lock:
    /// key()/entry() keep returning the same record until the next seek/next.
    class Cursor {
      public:
        virtual ~Cursor() = default;
        virtual void seek_first() = 0;
        virtual void seek_geq(std::string_view key) = 0;
        virtual void seek_gt(std::string_view key) = 0;
        [[nodiscard]] virtual bool valid() const = 0;
        [[nodiscard]] virtual std::string_view key() const = 0;
        [[nodiscard]] virtual MemEntry entry() const = 0;
        virtual void next() = 0;
    };

    virtual ~MemTableRep() = default;
    /// Writer-only (callers serialize); copies key+value into the rep.
    virtual void insert(std::string_view key, std::string_view value, Stamp stamp,
                        bool tombstone) = 0;
    [[nodiscard]] virtual bool get(std::string_view key, MemEntry& out) const = 0;
    [[nodiscard]] virtual std::size_t count() const = 0;
    [[nodiscard]] virtual std::unique_ptr<Cursor> cursor() const = 0;
    [[nodiscard]] virtual std::string_view kind() const noexcept = 0;
};

// ---------------------------------------------------------------------------
// Skiplist rep: lock-free readers, arena-backed everything.

class SkipListMemTableRep final : public MemTableRep {
  public:
    explicit SkipListMemTableRep(std::size_t arena_block_bytes, int max_height)
        : arena_(arena_block_bytes), list_(arena_, max_height) {}

    void insert(std::string_view key, std::string_view value, Stamp stamp,
                bool tombstone) override {
        list_.insert(key, value, stamp, tombstone);
    }

    bool get(std::string_view key, MemEntry& out) const override {
        const SkipList::Payload* p = list_.find(key);
        if (p == nullptr) return false;
        out = MemEntry{p->sv(), p->stamp, p->tombstone};
        return true;
    }

    std::size_t count() const override { return list_.count(); }
    std::string_view kind() const noexcept override { return "skiplist"; }
    [[nodiscard]] std::size_t arena_bytes() const noexcept { return arena_.allocated_bytes(); }

    class SkipCursor final : public Cursor {
      public:
        explicit SkipCursor(const SkipList& list) : list_(list) {}
        void seek_first() override { node_ = list_.first(); }
        void seek_geq(std::string_view key) override { node_ = list_.seek_geq(key); }
        void seek_gt(std::string_view key) override { node_ = list_.seek_gt(key); }
        bool valid() const override { return node_ != nullptr; }
        std::string_view key() const override { return node_->key(); }
        MemEntry entry() const override {
            const auto* p = node_->payload.load(std::memory_order_acquire);
            return MemEntry{p->sv(), p->stamp, p->tombstone};
        }
        void next() override { node_ = SkipList::next_of(node_); }

      private:
        const SkipList& list_;
        SkipList::Node* node_ = nullptr;
    };

    std::unique_ptr<Cursor> cursor() const override {
        return std::make_unique<SkipCursor>(list_);
    }

  private:
    Arena arena_;
    SkipList list_;
};

// ---------------------------------------------------------------------------
// Map rep: the legacy representation, kept for ablation and as the
// compatibility fallback. Structure is guarded by an internal shared_mutex;
// value bytes live in an arena so copied-out entries survive the unlock.

class MapMemTableRep final : public MemTableRep {
    struct Slot {
        const char* data = nullptr;
        std::uint32_t len = 0;
        Stamp stamp;
        bool tombstone = false;
    };

    static MemEntry to_entry(const Slot& s) {
        return MemEntry{std::string_view{s.data, s.len}, s.stamp, s.tombstone};
    }

  public:
    explicit MapMemTableRep(std::size_t arena_block_bytes) : arena_(arena_block_bytes) {}

    void insert(std::string_view key, std::string_view value, Stamp stamp,
                bool tombstone) override {
        char* bytes = nullptr;
        if (!value.empty()) {
            bytes = arena_.allocate(value.size(), 1);
            std::memcpy(bytes, value.data(), value.size());
        }
        std::unique_lock lock(mutex_);
        auto it = entries_.find(key);
        if (it == entries_.end()) it = entries_.emplace(std::string(key), Slot{}).first;
        it->second = Slot{bytes, static_cast<std::uint32_t>(value.size()), stamp, tombstone};
    }

    bool get(std::string_view key, MemEntry& out) const override {
        std::shared_lock lock(mutex_);
        auto it = entries_.find(key);
        if (it == entries_.end()) return false;
        out = to_entry(it->second);
        return true;
    }

    std::size_t count() const override {
        std::shared_lock lock(mutex_);
        return entries_.size();
    }
    std::string_view kind() const noexcept override { return "map"; }

    /// Re-probing cursor: holds its own key copy and re-finds its position
    /// under a short shared lock per movement, exactly like the pre-rep
    /// scan_stamped() cursor did.
    class MapCursor final : public Cursor {
      public:
        explicit MapCursor(const MapMemTableRep& rep) : rep_(rep) {}
        void seek_first() override {
            std::shared_lock lock(rep_.mutex_);
            load(rep_.entries_.begin());
        }
        void seek_geq(std::string_view key) override {
            std::shared_lock lock(rep_.mutex_);
            load(rep_.entries_.lower_bound(key));
        }
        void seek_gt(std::string_view key) override {
            std::shared_lock lock(rep_.mutex_);
            load(rep_.entries_.upper_bound(key));
        }
        bool valid() const override { return valid_; }
        std::string_view key() const override { return key_; }
        MemEntry entry() const override { return entry_; }
        void next() override {
            std::shared_lock lock(rep_.mutex_);
            load(rep_.entries_.upper_bound(key_));
        }

      private:
        void load(std::map<std::string, Slot, std::less<>>::const_iterator it) {
            valid_ = it != rep_.entries_.end();
            if (!valid_) return;
            key_ = it->first;
            entry_ = to_entry(it->second);
        }

        const MapMemTableRep& rep_;
        bool valid_ = false;
        std::string key_;
        MemEntry entry_{};
    };

    std::unique_ptr<Cursor> cursor() const override { return std::make_unique<MapCursor>(*this); }

  private:
    Arena arena_;
    mutable std::shared_mutex mutex_;
    std::map<std::string, Slot, std::less<>> entries_;
};

/// Factory keyed by the `memtable` knob ("skiplist" | "map"); unknown values
/// fall back to the skiplist.
inline std::unique_ptr<MemTableRep> make_memtable_rep(std::string_view kind,
                                                      std::size_t arena_block_bytes,
                                                      int skiplist_max_height) {
    if (kind == "map") return std::make_unique<MapMemTableRep>(arena_block_bytes);
    return std::make_unique<SkipListMemTableRep>(arena_block_bytes, skiplist_max_height);
}

}  // namespace hep::yokan::lsm

// SSTable block envelope codec and the two-tier block cache.
//
// Every v2 data block is stored as an envelope:
//
//   [codec u8][pad u8][raw_len u32 LE][payload...]
//
// The payload is the raw block either verbatim (codec = kRaw, pad = 0) or
// compressed with one of the common/compression.hpp codecs over the block
// bytes zero-padded to a multiple of 8 and treated as u64 elements — width 8
// is the only width where kDelta/kVarint can beat raw on byte streams, and
// `pad` (0..7) records how much padding to strip after decode. encode_block
// keeps whichever is smaller, so a block never grows by more than the 6-byte
// header. The per-block crc32 stored in the table index covers the whole
// envelope, so corruption is caught before any decode runs.
//
// The BlockCache holds two independently byte-bounded LRU tiers:
//   kDecoded     raw (decompressed) blocks — cheapest to serve;
//   kCompressed  on-disk envelopes — denser, one decode away from useful.
// A read probes decoded, then compressed (decode + promote), then disk
// (insert into both). Entries are charged at their actual byte size.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "common/status.hpp"

namespace hep::yokan::lsm {

inline constexpr std::size_t kBlockEnvelopeHeader = 6;

/// Envelope for `raw`; compresses when `try_compress` and compression wins.
[[nodiscard]] std::string encode_block(std::string_view raw, bool try_compress);

/// Decode an envelope back to the raw block bytes.
Status decode_block(std::string_view stored, std::string& raw_out);

/// True when the envelope's payload is compressed (needs a real decode).
[[nodiscard]] bool block_is_compressed(std::string_view stored) noexcept;

struct BlockCacheStats {
    std::uint64_t decoded_hits = 0;
    std::uint64_t compressed_hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t decompressions = 0;
    std::uint64_t disk_reads = 0;
    std::uint64_t disk_bytes_read = 0;
    std::uint64_t evictions = 0;
    std::uint64_t decoded_used_bytes = 0;     // snapshot
    std::uint64_t compressed_used_bytes = 0;  // snapshot
};

/// Two-tier shared LRU cache keyed by (file_number, block index).
class BlockCache {
  public:
    enum Tier : int { kDecoded = 0, kCompressed = 1 };

    BlockCache(std::size_t decoded_capacity_bytes, std::size_t compressed_capacity_bytes);
    /// Single-budget convenience: same byte bound for both tiers.
    explicit BlockCache(std::size_t capacity_bytes)
        : BlockCache(capacity_bytes, capacity_bytes) {}

    std::shared_ptr<const std::string> lookup(Tier tier, std::uint64_t file_number,
                                              std::uint64_t block);
    void insert(Tier tier, std::uint64_t file_number, std::uint64_t block,
                std::shared_ptr<const std::string> data);

    /// Reader-side accounting (the cache is where all counters live so every
    /// SstReader sharing it aggregates into one symbio source).
    void note_miss() noexcept { misses_.fetch_add(1, std::memory_order_relaxed); }
    void note_disk_read(std::size_t bytes) noexcept {
        disk_reads_.fetch_add(1, std::memory_order_relaxed);
        disk_bytes_read_.fetch_add(bytes, std::memory_order_relaxed);
    }
    void note_decompression() noexcept {
        decompressions_.fetch_add(1, std::memory_order_relaxed);
    }

    /// Legacy aggregate view (hits across both tiers).
    [[nodiscard]] std::uint64_t hits() const noexcept;
    [[nodiscard]] std::uint64_t misses() const noexcept {
        return misses_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] BlockCacheStats stats() const;

  private:
    struct Entry {
        std::uint64_t key;
        std::shared_ptr<const std::string> data;
    };
    struct Shard {
        mutable std::mutex mutex;
        std::size_t capacity = 0;
        std::size_t used = 0;
        std::list<Entry> lru;  // front = most recent
        std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index;
        std::uint64_t hits = 0;
    };

    Shard tiers_[2];
    std::atomic<std::uint64_t> misses_{0};
    std::atomic<std::uint64_t> decompressions_{0};
    std::atomic<std::uint64_t> disk_reads_{0};
    std::atomic<std::uint64_t> disk_bytes_read_{0};
    std::atomic<std::uint64_t> evictions_{0};
};

}  // namespace hep::yokan::lsm

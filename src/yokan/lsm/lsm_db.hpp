// rockslite: a log-structured merge-tree backend (RocksDB substitute).
//
// Write path: WAL append -> memtable insert; when the memtable exceeds its
// budget it is flushed to an L0 SSTable and the WAL is reset. L0 tables may
// overlap; levels >= 1 hold sorted, non-overlapping runs. Compaction merges
// L0 into L1 when L0 accumulates too many files, and level i into i+1 when a
// level exceeds its size budget (10x per level, RocksDB-style).
//
// Read path: memtable -> L0 newest-to-oldest -> L1..Ln (one candidate file
// per level), with bloom filters and a shared block cache. This is the read
// amplification that makes the paper's RocksDB backend fall behind the
// in-memory backend at scale (Fig. 2).
#pragma once

#include <map>
#include <optional>
#include <shared_mutex>

#include "yokan/backend.hpp"
#include "yokan/lsm/sstable.hpp"
#include "yokan/lsm/wal.hpp"

namespace hep::yokan::lsm {

struct LsmOptions {
    std::string path;                               // directory for this DB
    std::size_t memtable_bytes = 4 * 1024 * 1024;   // flush threshold
    std::size_t block_bytes = 4096;                 // sstable block size
    std::size_t l0_compaction_trigger = 4;          // #L0 files before L0->L1
    std::size_t level_base_bytes = 8 * 1024 * 1024; // L1 budget; 10x per level
    std::size_t level_multiplier = 10;
    std::size_t max_levels = 5;
    std::size_t block_cache_bytes = 8 * 1024 * 1024;
    std::size_t target_file_bytes = 2 * 1024 * 1024;  // compaction output split
    bool wal_sync_every_put = false;                  // fflush per put
};

/// Extra observability for tests and the ablation benches.
struct LsmStats {
    std::uint64_t flushes = 0;
    std::uint64_t compactions = 0;
    std::uint64_t sst_files_written = 0;
    std::uint64_t cache_hits = 0;
    std::uint64_t cache_misses = 0;
    std::vector<std::size_t> files_per_level;
};

class LsmDb final : public Database {
  public:
    /// Open (or create) a database in options.path. Replays the WAL and
    /// loads the manifest.
    static Result<std::unique_ptr<LsmDb>> open(LsmOptions options);
    ~LsmDb() override;

    Status put(std::string_view key, std::string_view value, bool overwrite) override;
    Status put_view(std::string_view key, hep::BufferView value, bool overwrite) override;
    Result<std::string> get(std::string_view key) override;
    Result<hep::BufferView> get_view(std::string_view key) override;
    Result<bool> exists(std::string_view key) override;
    Result<std::uint64_t> length(std::string_view key) override;
    Status erase(std::string_view key) override;
    Status scan(std::string_view after, std::string_view prefix, bool with_values,
                const ScanFn& fn) override;
    std::uint64_t size() const override;
    Status flush() override;  // force memtable -> L0
    std::string_view type() const noexcept override { return "lsm"; }
    BackendStats stats() const override;

    [[nodiscard]] LsmStats lsm_stats() const;

  private:
    explicit LsmDb(LsmOptions options);

    Status load_manifest();
    Status save_manifest();
    Status recover_wal();

    // All three require mutex_ held exclusively.
    Status flush_memtable_locked();
    Status maybe_compact_locked();
    Status compact_level_locked(std::size_t level);

    /// Lookup in SSTables only (memtable checked by caller). nullopt value
    /// means "deleted"; NotFound status means "not present anywhere".
    Result<std::optional<std::string>> table_lookup(std::string_view key) const;

    Result<std::shared_ptr<SstReader>> open_table(const TableMeta& meta) const;
    [[nodiscard]] std::string table_path(std::uint64_t file_number) const;

    LsmOptions options_;
    mutable std::shared_mutex mutex_;

    // memtable: nullopt value = tombstone. Values are owned BufferViews so a
    // put_view() from the RPC frame parks the refcounted bytes here without a
    // memcpy; the WAL append is the only per-put traversal of the value.
    std::map<std::string, std::optional<hep::BufferView>, std::less<>> memtable_;
    std::size_t memtable_bytes_ = 0;
    Wal wal_;

    struct Level {
        std::vector<TableMeta> tables;          // L0: newest last; L1+: sorted by min_key
        std::vector<std::shared_ptr<SstReader>> readers;  // parallel to tables
        [[nodiscard]] std::uint64_t bytes() const {
            std::uint64_t total = 0;
            for (const auto& t : tables) total += t.bytes;
            return total;
        }
    };
    std::vector<Level> levels_;
    std::uint64_t next_file_number_ = 1;
    std::uint64_t live_keys_ = 0;  // approximate

    std::shared_ptr<BlockCache> cache_;
    mutable BackendStats stats_;
    mutable LsmStats lsm_stats_;
};

}  // namespace hep::yokan::lsm

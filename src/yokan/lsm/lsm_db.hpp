// rockslite: a log-structured merge-tree backend (RocksDB substitute).
//
// Write path: WAL append -> memtable insert, both under a short writer lock;
// when the active memtable exceeds its budget it is SEALED — swapped onto an
// immutable queue and the WAL rotated to a fresh segment — and the put
// returns immediately. A background compaction worker (an argolite ULT,
// optionally scheduled on a pool shared across a provider's databases) drains
// sealed memtables into L0 SSTables and runs level compactions off the
// critical path, exactly like RocksDB's background flush/compaction threads.
// Writers are throttled only through explicit backpressure (slowdown/stop
// thresholds on the immutable queue and L0), never by riding a compaction
// inline. `background_compaction=false` restores the legacy inline mode for
// ablation.
//
// Read path: versioned and LOCK-FREE against writers. The active memtable is
// a concurrent skiplist (memtable.hpp) published through an atomic
// shared_ptr: gets and scans probe it without taking any lock. Every
// flush/compaction publishes a new immutable `Version` (refs to sealed
// memtables + per-level table lists) under a brief mutex; readers grab a
// shared_ptr snapshot and never contend with compaction. Seal ordering makes
// the two probes consistent: the Version carrying the outgoing memtable on
// its imm queue is published BEFORE the active pointer is swapped, so a
// reader that misses in the new active always finds the old one in the
// version it snapshots afterwards.
//
// Durability: the WAL is segmented; each sealed memtable owns the segments
// holding its records, retired through the manifest's wal_floor once its
// SSTable is durable (version_set.hpp) — recovery never replays a flushed
// segment, which keeps re-derived MVCC stamps exact. Under
// `wal_sync_every_put`, concurrent writers group-commit: one leader flushes
// the log for every append batched so far while followers wait on an
// abt::Eventual.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>

#include "abt/abt.hpp"
#include "yokan/backend.hpp"
#include "yokan/lsm/memtable.hpp"
#include "yokan/lsm/sstable.hpp"
#include "yokan/lsm/version_set.hpp"
#include "yokan/lsm/wal.hpp"

namespace hep::yokan::lsm {

struct LsmOptions {
    std::string path;                               // directory for this DB
    std::size_t memtable_bytes = 4 * 1024 * 1024;   // seal threshold
    std::size_t block_bytes = 4096;                 // sstable block size
    std::size_t l0_compaction_trigger = 4;          // #L0 files before L0->L1
    std::size_t level_base_bytes = 8 * 1024 * 1024; // L1 budget; 10x per level
    std::size_t level_multiplier = 10;
    std::size_t max_levels = 5;
    std::size_t block_cache_bytes = 8 * 1024 * 1024;      // decoded-block tier
    std::size_t compressed_cache_bytes = 8 * 1024 * 1024; // compressed tier
    std::size_t target_file_bytes = 2 * 1024 * 1024;  // compaction output split
    bool wal_sync_every_put = false;                  // fflush per put

    // Memtable representation (memtable.hpp): "skiplist" (lock-free reads,
    // arena-allocated) or "map" (legacy, for ablation).
    std::string memtable = "skiplist";
    std::size_t arena_block_bytes = 256 * 1024;
    std::size_t skiplist_max_height = 12;
    /// SSTable block compression: "auto" (per-block compress_auto with raw
    /// fallback) or "none".
    std::string block_compression = "auto";

    // Concurrency model (see file header).
    bool background_compaction = true;   // false = legacy inline flush/compact
    bool group_commit = true;            // batch wal_sync_every_put fsyncs
    std::size_t max_immutable_memtables = 2;  // stop writes when queue is full
    std::size_t l0_slowdown_trigger = 8;      // writers yield above this
    std::size_t l0_stop_trigger = 16;         // writers block above this
    /// Worker pool for the compaction ULT; typically shared across all of a
    /// provider's databases. When null the db spins up its own pool+xstream.
    std::shared_ptr<abt::Pool> compaction_pool;

    /// Torture-test hook: invoked with a label at every durability boundary
    /// (manifest saves, SST writes, WAL retirement). Production leaves it
    /// unset.
    std::function<void(std::string_view)> crash_hook;
};

/// Extra observability for tests, symbio and the ablation benches.
struct LsmStats {
    std::uint64_t flushes = 0;
    std::uint64_t compactions = 0;
    std::uint64_t compactions_background = 0;
    std::uint64_t compactions_inline = 0;
    std::uint64_t sst_files_written = 0;
    std::uint64_t cache_hits = 0;            // decoded + compressed tier hits
    std::uint64_t cache_misses = 0;
    std::uint64_t cache_compressed_hits = 0; // served by the compressed tier
    std::uint64_t cache_decompressions = 0;
    std::uint64_t cache_disk_reads = 0;
    std::uint64_t cache_disk_bytes_read = 0;
    std::uint64_t cache_evictions = 0;
    std::uint64_t write_stalls = 0;        // hard stops at the stop trigger
    std::uint64_t write_stall_micros = 0;  // time writers spent blocked
    std::uint64_t write_slowdowns = 0;     // soft yields at the slowdown trigger
    std::uint64_t group_commit_syncs = 0;    // leader fsyncs
    std::uint64_t group_commit_records = 0;  // records covered by those fsyncs
    std::uint64_t reads_during_compaction = 0;  // overlap proof for tests
    std::uint64_t immutable_queue_depth = 0;    // snapshot
    std::uint64_t compaction_backlog_bytes = 0; // snapshot: imm + L0 bytes
    std::vector<std::size_t> files_per_level;
};

class LsmDb final : public Database {
  public:
    /// Open (or create) a database in options.path. Replays the WAL segments
    /// and loads the manifest; starts the compaction worker if backgrounded.
    static Result<std::unique_ptr<LsmDb>> open(LsmOptions options);
    ~LsmDb() override;

    Status put(std::string_view key, std::string_view value, bool overwrite) override;
    Status put_view(std::string_view key, hep::BufferView value, bool overwrite) override;
    Status put_stamped(std::string_view key, hep::BufferView value, bool overwrite,
                       std::uint32_t epoch) override;
    Result<std::string> get(std::string_view key) override;
    Result<hep::BufferView> get_view(std::string_view key) override;
    Result<std::pair<hep::BufferView, Stamp>> get_stamped(std::string_view key) override;
    Result<bool> exists(std::string_view key) override;
    Result<std::uint64_t> length(std::string_view key) override;
    Status erase(std::string_view key) override;
    Status scan(std::string_view after, std::string_view prefix, bool with_values,
                const ScanFn& fn) override;
    Status scan_stamped(std::string_view after, std::string_view prefix, bool with_values,
                        const StampedScanFn& fn) override;
    std::uint64_t size() const override;
    Status flush() override;  // seal + drain every memtable and compaction
    std::string_view type() const noexcept override { return "lsm"; }
    BackendStats stats() const override;

    [[nodiscard]] LsmStats lsm_stats() const;
    /// Snapshot for symbio's "lsm/<db>" source.
    [[nodiscard]] json::Value stats_json() const;

  private:
    /// A memtable: mutable while active (single writer, lock-free readers —
    /// see memtable.hpp), frozen once sealed. `wal_segments` lists the log
    /// files holding its records; they are retired through the manifest
    /// wal_floor after the memtable reaches an SSTable. `anchor_tag` exists
    /// so BufferViews escaping a read can alias the memtable's shared_ptr
    /// and keep the arena alive.
    struct MemTable {
        std::unique_ptr<MemTableRep> rep;
        std::atomic<std::size_t> bytes{0};
        std::vector<std::string> wal_segments;
        std::uint64_t max_wal_segment = 0;
        mutable std::string anchor_tag;
    };
    struct TableHandle {
        TableMeta meta;
        std::shared_ptr<SstReader> reader;
    };
    /// Copy-on-write snapshot of everything a read needs beyond the active
    /// memtable. Published atomically; readers pin it with a shared_ptr.
    struct Version {
        std::vector<std::shared_ptr<const MemTable>> imm;  // newest first
        std::vector<std::vector<TableHandle>> levels;  // L0 newest last;
                                                       // L1+ sorted by min_key
        [[nodiscard]] std::uint64_t level_bytes(std::size_t li) const;
    };

    explicit LsmDb(LsmOptions options);

    [[nodiscard]] std::shared_ptr<MemTable> make_memtable() const;
    Status load_manifest();
    Status recover_wal();
    Status remove_orphan_tables();
    Status open_wal_segment();

    [[nodiscard]] std::shared_ptr<const Version> snapshot_version() const;
    /// View over memtable bytes, anchored to the memtable that owns them.
    static hep::BufferView anchor_entry(const std::shared_ptr<const MemTable>& mem,
                                        std::string_view bytes);

    // ---- write path
    Status write_impl(std::string_view key, std::optional<hep::BufferView> value,
                      bool overwrite, bool is_erase, std::uint32_t epoch);
    /// Requires write_mutex_. Rotates the WAL, publishes a Version with the
    /// active memtable on the immutable queue, THEN swaps the active pointer
    /// (ordering contract of the lock-free read path).
    Status seal_active();
    Status group_sync(std::uint64_t my_seq);
    [[nodiscard]] bool key_present(std::string_view key) const;
    void maybe_stall();

    // ---- background machinery
    void start_worker();
    void worker_loop();
    void signal_work();
    void notify_installed();
    Status drain_work(bool background);
    Status flush_oldest_imm();
    Status compact_level(std::size_t level);
    /// Level needing compaction in `v`, or npos.
    [[nodiscard]] std::size_t compaction_candidate(const Version& v) const;
    void set_background_error(const Status& st);
    [[nodiscard]] Status background_error() const;
    void hook(std::string_view label) const {
        if (options_.crash_hook) options_.crash_hook(label);
    }

    /// Stored bytes of `key`'s newest table version, already unwrapped:
    /// nullopt value = tombstone. Stamp is (0,0) for pre-format-2 tables.
    struct TableHit {
        std::optional<std::string> value;
        Stamp stamp;
    };
    Result<TableHit> table_lookup(const Version& v, std::string_view key) const;
    Result<std::shared_ptr<SstReader>> open_table(const TableMeta& meta) const;
    [[nodiscard]] std::string table_path(std::uint64_t file_number) const;
    [[nodiscard]] std::string wal_segment_path(std::uint64_t seq) const;
    [[nodiscard]] bool compress_blocks() const noexcept {
        return options_.block_compression != "none";
    }

    LsmOptions options_;

    // Write path. write_mutex_ serializes WAL append + memtable insert (so
    // recovery replays in apply order); it is held only for the O(log n)
    // insert, never across a flush, compaction or fsync. Readers never take
    // it — they load active_ with acquire and probe the skiplist lock-free.
    std::mutex write_mutex_;
    std::atomic<std::shared_ptr<MemTable>> active_;
    Wal wal_;
    std::uint64_t wal_seq_ = 0;                 // current segment number
    std::atomic<std::uint64_t> append_seq_{0};  // WAL records ever appended

    // Group commit (leader/follower over an abt::Eventual).
    std::mutex sync_mutex_;
    std::uint64_t synced_seq_ = 0;
    bool sync_leader_active_ = false;
    Status last_sync_status_;
    std::shared_ptr<abt::Eventual<bool>> pending_batch_;

    // Version publication.
    mutable std::mutex version_mutex_;
    std::shared_ptr<const Version> current_;
    std::atomic<std::uint64_t> next_file_number_{1};
    /// Highest MVCC seq reaching an SSTable. Flushed data is always a
    /// contiguous seq prefix (memtables seal and flush in order), so the
    /// manifest's last_seq plus a deterministic WAL replay re-derives every
    /// unflushed stamp after a crash.
    std::atomic<std::uint64_t> last_flushed_seq_{0};

    /// Durable manifest (A/B edit logs + CURRENT). Structural mutations are
    /// serialized by work_serial_, so log_and_apply needs no extra lock.
    std::unique_ptr<VersionSet> versions_;

    // Worker coordination. coord_mutex_ is ULT-aware: a stalled writer or a
    // waiting worker suspends its ULT instead of blocking the xstream.
    abt::Mutex coord_mutex_;
    abt::CondVar work_cv_;  // worker waits for work
    abt::CondVar idle_cv_;  // stalled writers / flush() wait for installs
    bool work_pending_ = false;
    bool worker_busy_ = false;
    bool stop_ = false;
    abt::Mutex work_serial_;  // one structural mutator (flush/compact) at a time
    std::shared_ptr<abt::Pool> worker_pool_;
    std::unique_ptr<abt::Xstream> own_xstream_;
    std::shared_ptr<abt::Ult> worker_;
    std::atomic<bool> compaction_running_{false};

    mutable std::mutex err_mutex_;
    Status bg_error_;
    // Fast-path flag so the per-put health check is one relaxed load instead
    // of a mutex acquire + Status copy (background errors are terminal, so a
    // reader that races the flag just sees the error one put later).
    std::atomic<bool> bg_error_set_{false};

    std::shared_ptr<BlockCache> cache_;
    mutable std::mutex stats_mutex_;
    BackendStats stats_;
    LsmStats lsm_stats_;
};

}  // namespace hep::yokan::lsm

#include "yokan/lsm/bloom.hpp"

#include <cstring>

namespace hep::yokan::lsm {

std::string BloomFilter::encode() const {
    std::string out;
    out.resize(8 + bits_.size() * 8);
    const std::uint64_t n = bits_.size();
    std::memcpy(out.data(), &n, 8);
    std::memcpy(out.data() + 8, bits_.data(), bits_.size() * 8);
    return out;
}

BloomFilter BloomFilter::decode(std::string_view bytes) {
    BloomFilter f(0);
    if (bytes.size() < 8) return f;
    std::uint64_t n = 0;
    std::memcpy(&n, bytes.data(), 8);
    if (bytes.size() < 8 + n * 8) return f;
    f.bits_.resize(n);
    std::memcpy(f.bits_.data(), bytes.data() + 8, n * 8);
    return f;
}

}  // namespace hep::yokan::lsm

#include "yokan/lsm/block.hpp"

#include <cstring>

#include "common/compression.hpp"
#include "common/hash.hpp"

namespace hep::yokan::lsm {

namespace {

std::uint64_t cache_key(std::uint64_t file_number, std::uint64_t block) {
    return hep::mix64(file_number * 0x1000003 + block);
}

}  // namespace

// ------------------------------------------------------------- envelope

std::string encode_block(std::string_view raw, bool try_compress) {
    std::uint8_t codec = static_cast<std::uint8_t>(compress::Codec::kRaw);
    std::uint8_t pad = 0;
    std::string payload;

    if (try_compress && !raw.empty()) {
        // Zero-pad to a whole number of u64 elements; delta/varint over
        // width-8 is the only shape where these codecs can beat raw bytes.
        const std::size_t padded = (raw.size() + 7) & ~std::size_t(7);
        std::string scratch(padded, '\0');
        std::memcpy(scratch.data(), raw.data(), raw.size());
        auto [best, best_payload] = compress::compress_auto(scratch.data(), padded / 8, 8);
        if (best != compress::Codec::kRaw && best_payload.size() < raw.size()) {
            codec = static_cast<std::uint8_t>(best);
            pad = static_cast<std::uint8_t>(padded - raw.size());
            payload = std::move(best_payload);
        }
    }

    std::string out;
    out.reserve(kBlockEnvelopeHeader + (payload.empty() ? raw.size() : payload.size()));
    out.push_back(static_cast<char>(codec));
    out.push_back(static_cast<char>(pad));
    const auto raw_len = static_cast<std::uint32_t>(raw.size());
    out.append(reinterpret_cast<const char*>(&raw_len), 4);
    if (codec == static_cast<std::uint8_t>(compress::Codec::kRaw)) {
        out.append(raw);
    } else {
        out.append(payload);
    }
    return out;
}

Status decode_block(std::string_view stored, std::string& raw_out) {
    if (stored.size() < kBlockEnvelopeHeader) {
        return Status::Corruption("block envelope truncated");
    }
    const auto codec = static_cast<std::uint8_t>(stored[0]);
    const auto pad = static_cast<std::uint8_t>(stored[1]);
    std::uint32_t raw_len = 0;
    std::memcpy(&raw_len, stored.data() + 2, 4);
    const std::string_view payload = stored.substr(kBlockEnvelopeHeader);

    if (!compress::valid_codec(codec) || pad > 7) {
        return Status::Corruption("block envelope has a bad codec/pad tag");
    }
    if (codec == static_cast<std::uint8_t>(compress::Codec::kRaw)) {
        if (pad != 0 || payload.size() != raw_len) {
            return Status::Corruption("raw block envelope has wrong payload size");
        }
        raw_out.assign(payload);
        return Status::OK();
    }
    const std::size_t padded = std::size_t(raw_len) + pad;
    if (padded % 8 != 0) {
        return Status::Corruption("compressed block envelope has a bad padded length");
    }
    // Every non-raw codec emits at least one byte per u64 element, so a
    // payload shorter than padded/8 is corrupt. Checking before the resize
    // keeps a hostile raw_len from forcing a multi-GB allocation.
    if (payload.size() < padded / 8) {
        return Status::Corruption("compressed block envelope shorter than element count");
    }
    raw_out.resize(padded);
    Status st = compress::decompress(static_cast<compress::Codec>(codec), payload, padded / 8,
                                     8, raw_out.data());
    if (!st.ok()) return st;
    raw_out.resize(raw_len);
    return Status::OK();
}

bool block_is_compressed(std::string_view stored) noexcept {
    return stored.size() >= kBlockEnvelopeHeader &&
           static_cast<std::uint8_t>(stored[0]) !=
               static_cast<std::uint8_t>(compress::Codec::kRaw);
}

// ------------------------------------------------------------- BlockCache

BlockCache::BlockCache(std::size_t decoded_capacity_bytes,
                       std::size_t compressed_capacity_bytes) {
    tiers_[kDecoded].capacity = decoded_capacity_bytes;
    tiers_[kCompressed].capacity = compressed_capacity_bytes;
}

std::shared_ptr<const std::string> BlockCache::lookup(Tier tier, std::uint64_t file_number,
                                                      std::uint64_t block) {
    Shard& shard = tiers_[tier];
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.index.find(cache_key(file_number, block));
    if (it == shard.index.end()) return nullptr;
    ++shard.hits;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return it->second->data;
}

void BlockCache::insert(Tier tier, std::uint64_t file_number, std::uint64_t block,
                        std::shared_ptr<const std::string> data) {
    Shard& shard = tiers_[tier];
    if (shard.capacity == 0) return;  // tier disabled
    std::lock_guard<std::mutex> lock(shard.mutex);
    const std::uint64_t key = cache_key(file_number, block);
    if (shard.index.count(key)) return;
    shard.used += data->size();
    shard.lru.push_front(Entry{key, std::move(data)});
    shard.index[key] = shard.lru.begin();
    while (shard.used > shard.capacity && !shard.lru.empty()) {
        auto& victim = shard.lru.back();
        shard.used -= victim.data->size();
        shard.index.erase(victim.key);
        shard.lru.pop_back();
        evictions_.fetch_add(1, std::memory_order_relaxed);
    }
}

std::uint64_t BlockCache::hits() const noexcept {
    std::uint64_t total = 0;
    for (const Shard& shard : tiers_) {
        std::lock_guard<std::mutex> lock(shard.mutex);
        total += shard.hits;
    }
    return total;
}

BlockCacheStats BlockCache::stats() const {
    BlockCacheStats out;
    {
        std::lock_guard<std::mutex> lock(tiers_[kDecoded].mutex);
        out.decoded_hits = tiers_[kDecoded].hits;
        out.decoded_used_bytes = tiers_[kDecoded].used;
    }
    {
        std::lock_guard<std::mutex> lock(tiers_[kCompressed].mutex);
        out.compressed_hits = tiers_[kCompressed].hits;
        out.compressed_used_bytes = tiers_[kCompressed].used;
    }
    out.misses = misses_.load(std::memory_order_relaxed);
    out.decompressions = decompressions_.load(std::memory_order_relaxed);
    out.disk_reads = disk_reads_.load(std::memory_order_relaxed);
    out.disk_bytes_read = disk_bytes_read_.load(std::memory_order_relaxed);
    out.evictions = evictions_.load(std::memory_order_relaxed);
    return out;
}

}  // namespace hep::yokan::lsm

#include "yokan/lsm/sstable.hpp"

#include <cassert>
#include <cstring>

#include "common/crc32.hpp"

namespace hep::yokan::lsm {

namespace {

void append_u32(std::string& out, std::uint32_t v) {
    out.append(reinterpret_cast<const char*>(&v), 4);
}
void append_u64(std::string& out, std::uint64_t v) {
    out.append(reinterpret_cast<const char*>(&v), 8);
}
std::uint32_t read_u32(const char* p) {
    std::uint32_t v;
    std::memcpy(&v, p, 4);
    return v;
}
std::uint64_t read_u64(const char* p) {
    std::uint64_t v;
    std::memcpy(&v, p, 8);
    return v;
}

}  // namespace

// --------------------------------------------------------------- SstWriter

SstWriter::SstWriter(std::string path, std::uint64_t file_number, std::size_t block_bytes,
                     std::size_t expected_keys, bool compress_blocks)
    : path_(std::move(path)),
      block_bytes_(block_bytes),
      compress_blocks_(compress_blocks),
      bloom_(expected_keys) {
    meta_.file_number = file_number;
}

Status SstWriter::add(std::string_view key, std::string_view value, bool tombstone) {
    if (have_last_ && key <= last_key_) {
        return Status::InvalidArgument("SstWriter::add keys must be strictly increasing");
    }
    if (!have_last_) meta_.min_key.assign(key);
    last_key_.assign(key);
    have_last_ = true;

    if (block_entries_ % kRestartInterval == 0) {
        restarts_.push_back(static_cast<std::uint32_t>(current_block_.size()));
    }
    append_u32(current_block_, static_cast<std::uint32_t>(key.size()));
    append_u32(current_block_, tombstone ? kTombstoneLen
                                         : static_cast<std::uint32_t>(value.size()));
    current_block_.append(key);
    if (!tombstone) current_block_.append(value);
    bloom_.insert(key);
    block_keys_.emplace_back(key);
    ++block_entries_;
    ++meta_.entries;
    if (current_block_.size() >= block_bytes_) cut_block();
    return Status::OK();
}

void SstWriter::cut_block() {
    if (current_block_.empty()) return;
    BloomFilter block_bloom(block_keys_.size());
    for (const auto& k : block_keys_) block_bloom.insert(k);
    const std::string stored = encode_block(current_block_, compress_blocks_);
    index_.push_back({last_key_, file_contents_.size(), stored.size(), crc32(stored),
                      static_cast<std::uint32_t>(current_block_.size()), block_bloom.encode(),
                      std::move(restarts_)});
    file_contents_.append(stored);
    current_block_.clear();
    block_entries_ = 0;
    block_keys_.clear();
    restarts_.clear();
}

Result<TableMeta> SstWriter::finish() {
    cut_block();
    meta_.max_key = last_key_;

    std::string index_bytes;
    append_u64(index_bytes, index_.size());
    for (const auto& e : index_) {
        append_u32(index_bytes, static_cast<std::uint32_t>(e.last_key.size()));
        index_bytes.append(e.last_key);
        append_u64(index_bytes, e.offset);
        append_u64(index_bytes, e.size);
        append_u32(index_bytes, e.crc);
        append_u32(index_bytes, e.raw_len);
        append_u32(index_bytes, static_cast<std::uint32_t>(e.bloom_bytes.size()));
        index_bytes.append(e.bloom_bytes);
        append_u32(index_bytes, static_cast<std::uint32_t>(e.restarts.size()));
        for (std::uint32_t r : e.restarts) append_u32(index_bytes, r);
    }
    const std::string bloom_bytes = bloom_.encode();

    const std::uint64_t index_off = file_contents_.size();
    file_contents_.append(index_bytes);
    const std::uint64_t bloom_off = file_contents_.size();
    file_contents_.append(bloom_bytes);
    append_u64(file_contents_, index_off);
    append_u64(file_contents_, index_bytes.size());
    append_u64(file_contents_, bloom_off);
    append_u64(file_contents_, bloom_bytes.size());
    append_u64(file_contents_, meta_.entries);
    append_u64(file_contents_, compress_blocks_ ? 1 : 0);  // flags
    append_u64(file_contents_, kSstMagic2);

    std::FILE* f = std::fopen(path_.c_str(), "wb");
    if (!f) return Status::IOError("cannot create sstable " + path_);
    const bool ok =
        std::fwrite(file_contents_.data(), 1, file_contents_.size(), f) == file_contents_.size();
    std::fclose(f);
    if (!ok) return Status::IOError("short write creating sstable " + path_);
    meta_.bytes = file_contents_.size();
    return meta_;
}

// --------------------------------------------------------------- SstReader

SstReader::~SstReader() {
    if (file_) std::fclose(file_);
}

Result<std::shared_ptr<SstReader>> SstReader::open(const std::string& path,
                                                   std::uint64_t file_number,
                                                   std::shared_ptr<BlockCache> cache) {
    auto reader = std::shared_ptr<SstReader>(new SstReader());
    reader->self_ = reader;
    reader->path_ = path;
    reader->file_number_ = file_number;
    reader->cache_ = std::move(cache);
    reader->file_ = std::fopen(path.c_str(), "rb");
    if (!reader->file_) return Status::IOError("cannot open sstable " + path);

    // The trailing magic word picks the footer layout: 56 bytes for v2,
    // 48 for v1 (pre-envelope tables, kept readable for upgrades).
    if (std::fseek(reader->file_, -8, SEEK_END) != 0) {
        return Status::Corruption("sstable too small: " + path);
    }
    char magic_buf[8];
    if (std::fread(magic_buf, 1, 8, reader->file_) != 8) {
        return Status::Corruption("cannot read sstable magic: " + path);
    }
    const std::uint64_t magic = read_u64(magic_buf);
    std::uint64_t index_off = 0, index_size = 0, bloom_off = 0, bloom_size = 0;
    if (magic == kSstMagic2) {
        reader->version_ = 2;
        if (std::fseek(reader->file_, -56, SEEK_END) != 0) {
            return Status::Corruption("sstable too small: " + path);
        }
        char footer[56];
        if (std::fread(footer, 1, 56, reader->file_) != 56) {
            return Status::Corruption("cannot read sstable footer: " + path);
        }
        index_off = read_u64(footer);
        index_size = read_u64(footer + 8);
        bloom_off = read_u64(footer + 16);
        bloom_size = read_u64(footer + 24);
        reader->entry_count_ = read_u64(footer + 32);
        // footer + 40 holds the flags word (bit 0: compression requested).
    } else if (magic == kSstMagic) {
        reader->version_ = 1;
        if (std::fseek(reader->file_, -48, SEEK_END) != 0) {
            return Status::Corruption("sstable too small: " + path);
        }
        char footer[48];
        if (std::fread(footer, 1, 48, reader->file_) != 48) {
            return Status::Corruption("cannot read sstable footer: " + path);
        }
        index_off = read_u64(footer);
        index_size = read_u64(footer + 8);
        bloom_off = read_u64(footer + 16);
        bloom_size = read_u64(footer + 24);
        reader->entry_count_ = read_u64(footer + 32);
    } else {
        return Status::Corruption("bad sstable magic: " + path);
    }

    // Index.
    std::string index_bytes(index_size, '\0');
    if (std::fseek(reader->file_, static_cast<long>(index_off), SEEK_SET) != 0 ||
        std::fread(index_bytes.data(), 1, index_size, reader->file_) != index_size) {
        return Status::Corruption("cannot read sstable index: " + path);
    }
    std::size_t pos = 0;
    if (index_size < 8) return Status::Corruption("sstable index truncated: " + path);
    const std::uint64_t n = read_u64(index_bytes.data());
    pos = 8;
    reader->index_.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
        if (pos + 4 > index_bytes.size()) return Status::Corruption("index entry truncated");
        const std::uint32_t klen = read_u32(index_bytes.data() + pos);
        pos += 4;
        const std::size_t fixed = reader->version_ == 2 ? 24 : 20;
        if (pos + klen + fixed > index_bytes.size()) {
            return Status::Corruption("index entry truncated");
        }
        IndexEntry e;
        e.last_key.assign(index_bytes.data() + pos, klen);
        pos += klen;
        e.offset = read_u64(index_bytes.data() + pos);
        e.size = read_u64(index_bytes.data() + pos + 8);
        e.crc = read_u32(index_bytes.data() + pos + 16);
        pos += 20;
        if (reader->version_ == 2) {
            e.raw_len = read_u32(index_bytes.data() + pos);
            pos += 4;
            if (pos + 4 > index_bytes.size()) return Status::Corruption("index entry truncated");
            const std::uint32_t bloom_len = read_u32(index_bytes.data() + pos);
            pos += 4;
            if (pos + bloom_len + 4 > index_bytes.size()) {
                return Status::Corruption("index entry truncated");
            }
            if (bloom_len > 0) {
                e.bloom = BloomFilter::decode({index_bytes.data() + pos, bloom_len});
                e.has_bloom = true;
            }
            pos += bloom_len;
            const std::uint32_t n_restarts = read_u32(index_bytes.data() + pos);
            pos += 4;
            if (pos + std::size_t(n_restarts) * 4 > index_bytes.size()) {
                return Status::Corruption("index entry truncated");
            }
            e.restarts.reserve(n_restarts);
            for (std::uint32_t r = 0; r < n_restarts; ++r) {
                e.restarts.push_back(read_u32(index_bytes.data() + pos));
                pos += 4;
            }
        } else {
            // v1 blocks are stored raw: decoded size == stored size.
            e.raw_len = static_cast<std::uint32_t>(e.size);
        }
        reader->index_.push_back(std::move(e));
    }

    // Bloom.
    std::string bloom_bytes(bloom_size, '\0');
    if (std::fseek(reader->file_, static_cast<long>(bloom_off), SEEK_SET) != 0 ||
        std::fread(bloom_bytes.data(), 1, bloom_size, reader->file_) != bloom_size) {
        return Status::Corruption("cannot read sstable bloom: " + path);
    }
    reader->bloom_ = BloomFilter::decode(bloom_bytes);
    return reader;
}

std::size_t SstReader::find_block(std::string_view key) const {
    // First block whose last_key >= key.
    std::size_t lo = 0, hi = index_.size();
    while (lo < hi) {
        const std::size_t mid = (lo + hi) / 2;
        if (std::string_view(index_[mid].last_key) < key) lo = mid + 1;
        else hi = mid;
    }
    return lo;
}

Result<std::shared_ptr<const std::string>> SstReader::read_block(std::size_t idx) {
    if (idx >= index_.size()) return Status::OutOfRange("block index");
    const IndexEntry& e = index_[idx];
    if (cache_) {
        if (auto blk = cache_->lookup(BlockCache::kDecoded, file_number_, idx)) return blk;
    }

    std::shared_ptr<const std::string> stored;
    if (cache_ && version_ == 2) {
        stored = cache_->lookup(BlockCache::kCompressed, file_number_, idx);
    }
    if (!stored) {
        if (cache_) cache_->note_miss();
        auto fresh = std::make_shared<std::string>(e.size, '\0');
        {
            std::lock_guard<std::mutex> lock(file_mutex_);
            if (std::fseek(file_, static_cast<long>(e.offset), SEEK_SET) != 0 ||
                std::fread(fresh->data(), 1, fresh->size(), file_) != fresh->size()) {
                return Status::IOError("cannot read block from " + path_);
            }
        }
        if (crc32(*fresh) != e.crc) {
            return Status::Corruption("sstable block checksum mismatch in " + path_);
        }
        if (cache_) {
            cache_->note_disk_read(fresh->size());
            if (version_ == 2) {
                cache_->insert(BlockCache::kCompressed, file_number_, idx, fresh);
            }
        }
        stored = std::move(fresh);
    }

    std::shared_ptr<const std::string> decoded;
    if (version_ == 2) {
        if (block_is_compressed(*stored) && cache_) cache_->note_decompression();
        auto raw = std::make_shared<std::string>();
        Status st = decode_block(*stored, *raw);
        if (!st.ok()) {
            return Status::Corruption(st.message() + " in " + path_);
        }
        decoded = std::move(raw);
    } else {
        decoded = std::move(stored);  // v1: the stored bytes ARE the block
    }
    if (cache_) cache_->insert(BlockCache::kDecoded, file_number_, idx, decoded);
    return decoded;
}

Result<std::optional<std::string>> SstReader::get(std::string_view key) {
    if (!bloom_.may_contain(key)) return Status::NotFound("bloom miss");
    const std::size_t blk_idx = find_block(key);
    if (blk_idx >= index_.size()) return Status::NotFound("beyond last block");
    const IndexEntry& e = index_[blk_idx];
    // Per-block filter: a miss here skips the block fetch (and any decode).
    if (e.has_bloom && !e.bloom.may_contain(key)) return Status::NotFound("block bloom miss");
    auto blk = read_block(blk_idx);
    if (!blk.ok()) return blk.status();
    const std::string& data = **blk;

    // Restart-array binary search: largest restart whose key <= target, so
    // the linear scan below touches at most kRestartInterval records.
    std::size_t pos = 0;
    if (e.restarts.size() > 1) {
        std::size_t lo = 0, hi = e.restarts.size();
        while (lo + 1 < hi) {
            const std::size_t mid = (lo + hi) / 2;
            const std::size_t off = e.restarts[mid];
            if (off + 8 > data.size()) break;
            const std::uint32_t klen = read_u32(data.data() + off);
            if (off + 8 + klen > data.size()) break;
            if (std::string_view(data.data() + off + 8, klen) <= key) lo = mid;
            else hi = mid;
        }
        pos = e.restarts[lo];
    }

    while (pos + 8 <= data.size()) {
        const std::uint32_t klen = read_u32(data.data() + pos);
        const std::uint32_t vlen = read_u32(data.data() + pos + 4);
        const bool tombstone = (vlen == kTombstoneLen);
        const std::size_t vbytes = tombstone ? 0 : vlen;
        if (pos + 8 + klen + vbytes > data.size()) break;
        std::string_view entry_key(data.data() + pos + 8, klen);
        if (entry_key == key) {
            if (tombstone) return std::optional<std::string>{};
            return std::optional<std::string>(std::string(data.data() + pos + 8 + klen, vlen));
        }
        if (entry_key > key) break;  // sorted within block
        pos += 8 + klen + vbytes;
    }
    return Status::NotFound("key not in block");
}

// ------------------------------------------------------ SstReader::Iterator

Status SstReader::Iterator::load_block(std::size_t block_idx) {
    block_idx_ = block_idx;
    pos_ = 0;
    valid_ = false;
    if (block_idx_ >= reader_->index_.size()) return Status::OK();  // exhausted
    auto blk = reader_->read_block(block_idx_);
    if (!blk.ok()) return blk.status();
    block_ = *blk;
    return Status::OK();
}

bool SstReader::Iterator::parse_current() {
    if (!block_ || pos_ + 8 > block_->size()) return false;
    const std::uint32_t klen = read_u32(block_->data() + pos_);
    const std::uint32_t vlen = read_u32(block_->data() + pos_ + 4);
    tombstone_ = (vlen == kTombstoneLen);
    const std::size_t vbytes = tombstone_ ? 0 : vlen;
    if (pos_ + 8 + klen + vbytes > block_->size()) return false;
    key_.assign(block_->data() + pos_ + 8, klen);
    value_.assign(block_->data() + pos_ + 8 + klen, vbytes);
    pos_ += 8 + klen + vbytes;
    return true;
}

Status SstReader::Iterator::seek(std::string_view bound, bool inclusive) {
    valid_ = false;
    std::size_t blk = reader_->find_block(bound);
    // find_block gives the first block whose last_key >= bound; earlier keys
    // in that block may still precede the bound — advance as needed.
    while (blk < reader_->index_.size()) {
        Status st = load_block(blk);
        if (!st.ok()) return st;
        while (parse_current()) {
            const std::string_view k(key_);
            if (inclusive ? k >= bound : k > bound) {
                valid_ = true;
                return Status::OK();
            }
        }
        ++blk;
    }
    return Status::OK();  // exhausted: !valid()
}

Status SstReader::Iterator::next() {
    valid_ = false;
    while (true) {
        if (parse_current()) {
            valid_ = true;
            return Status::OK();
        }
        if (block_idx_ + 1 >= reader_->index_.size()) return Status::OK();
        Status st = load_block(block_idx_ + 1);
        if (!st.ok()) return st;
    }
}

}  // namespace hep::yokan::lsm

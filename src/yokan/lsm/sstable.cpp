#include "yokan/lsm/sstable.hpp"

#include <cassert>
#include <cstring>

#include "common/crc32.hpp"
#include "common/hash.hpp"

namespace hep::yokan::lsm {

namespace {

void append_u32(std::string& out, std::uint32_t v) {
    out.append(reinterpret_cast<const char*>(&v), 4);
}
void append_u64(std::string& out, std::uint64_t v) {
    out.append(reinterpret_cast<const char*>(&v), 8);
}
std::uint32_t read_u32(const char* p) {
    std::uint32_t v;
    std::memcpy(&v, p, 4);
    return v;
}
std::uint64_t read_u64(const char* p) {
    std::uint64_t v;
    std::memcpy(&v, p, 8);
    return v;
}

std::uint64_t cache_key(std::uint64_t file_number, std::uint64_t block) {
    return hep::mix64(file_number * 0x1000003 + block);
}

}  // namespace

// -------------------------------------------------------------- BlockCache

std::shared_ptr<const std::string> BlockCache::lookup(std::uint64_t file_number,
                                                      std::uint64_t block) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = index_.find(cache_key(file_number, block));
    if (it == index_.end()) {
        ++misses_;
        return nullptr;
    }
    ++hits_;
    // Move to front.
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->data;
}

void BlockCache::insert(std::uint64_t file_number, std::uint64_t block,
                        std::shared_ptr<const std::string> data) {
    std::lock_guard<std::mutex> lock(mutex_);
    const std::uint64_t key = cache_key(file_number, block);
    if (index_.count(key)) return;
    used_ += data->size();
    lru_.push_front(Entry{key, std::move(data)});
    index_[key] = lru_.begin();
    while (used_ > capacity_ && !lru_.empty()) {
        auto& victim = lru_.back();
        used_ -= victim.data->size();
        index_.erase(victim.key);
        lru_.pop_back();
    }
}

// --------------------------------------------------------------- SstWriter

SstWriter::SstWriter(std::string path, std::uint64_t file_number, std::size_t block_bytes,
                     std::size_t expected_keys)
    : path_(std::move(path)), block_bytes_(block_bytes), bloom_(expected_keys) {
    meta_.file_number = file_number;
}

Status SstWriter::add(std::string_view key, std::string_view value, bool tombstone) {
    if (have_last_ && key <= last_key_) {
        return Status::InvalidArgument("SstWriter::add keys must be strictly increasing");
    }
    if (!have_last_) meta_.min_key.assign(key);
    last_key_.assign(key);
    have_last_ = true;

    append_u32(current_block_, static_cast<std::uint32_t>(key.size()));
    append_u32(current_block_, tombstone ? kTombstoneLen
                                         : static_cast<std::uint32_t>(value.size()));
    current_block_.append(key);
    if (!tombstone) current_block_.append(value);
    bloom_.insert(key);
    ++meta_.entries;
    if (current_block_.size() >= block_bytes_) cut_block();
    return Status::OK();
}

void SstWriter::cut_block() {
    if (current_block_.empty()) return;
    index_.push_back(
        {last_key_, file_contents_.size(), current_block_.size(), crc32(current_block_)});
    file_contents_.append(current_block_);
    current_block_.clear();
}

Result<TableMeta> SstWriter::finish() {
    cut_block();
    meta_.max_key = last_key_;

    std::string index_bytes;
    append_u64(index_bytes, index_.size());
    for (const auto& e : index_) {
        append_u32(index_bytes, static_cast<std::uint32_t>(e.last_key.size()));
        index_bytes.append(e.last_key);
        append_u64(index_bytes, e.offset);
        append_u64(index_bytes, e.size);
        append_u32(index_bytes, e.crc);
    }
    const std::string bloom_bytes = bloom_.encode();

    const std::uint64_t index_off = file_contents_.size();
    file_contents_.append(index_bytes);
    const std::uint64_t bloom_off = file_contents_.size();
    file_contents_.append(bloom_bytes);
    append_u64(file_contents_, index_off);
    append_u64(file_contents_, index_bytes.size());
    append_u64(file_contents_, bloom_off);
    append_u64(file_contents_, bloom_bytes.size());
    append_u64(file_contents_, meta_.entries);
    append_u64(file_contents_, kSstMagic);

    std::FILE* f = std::fopen(path_.c_str(), "wb");
    if (!f) return Status::IOError("cannot create sstable " + path_);
    const bool ok =
        std::fwrite(file_contents_.data(), 1, file_contents_.size(), f) == file_contents_.size();
    std::fclose(f);
    if (!ok) return Status::IOError("short write creating sstable " + path_);
    meta_.bytes = file_contents_.size();
    return meta_;
}

// --------------------------------------------------------------- SstReader

SstReader::~SstReader() {
    if (file_) std::fclose(file_);
}

Result<std::shared_ptr<SstReader>> SstReader::open(const std::string& path,
                                                   std::uint64_t file_number,
                                                   std::shared_ptr<BlockCache> cache) {
    auto reader = std::shared_ptr<SstReader>(new SstReader());
    reader->self_ = reader;
    reader->path_ = path;
    reader->file_number_ = file_number;
    reader->cache_ = std::move(cache);
    reader->file_ = std::fopen(path.c_str(), "rb");
    if (!reader->file_) return Status::IOError("cannot open sstable " + path);

    // Footer.
    if (std::fseek(reader->file_, -48, SEEK_END) != 0) {
        return Status::Corruption("sstable too small: " + path);
    }
    char footer[48];
    if (std::fread(footer, 1, 48, reader->file_) != 48) {
        return Status::Corruption("cannot read sstable footer: " + path);
    }
    const std::uint64_t index_off = read_u64(footer);
    const std::uint64_t index_size = read_u64(footer + 8);
    const std::uint64_t bloom_off = read_u64(footer + 16);
    const std::uint64_t bloom_size = read_u64(footer + 24);
    reader->entry_count_ = read_u64(footer + 32);
    if (read_u64(footer + 40) != kSstMagic) {
        return Status::Corruption("bad sstable magic: " + path);
    }

    // Index.
    std::string index_bytes(index_size, '\0');
    if (std::fseek(reader->file_, static_cast<long>(index_off), SEEK_SET) != 0 ||
        std::fread(index_bytes.data(), 1, index_size, reader->file_) != index_size) {
        return Status::Corruption("cannot read sstable index: " + path);
    }
    std::size_t pos = 0;
    if (index_size < 8) return Status::Corruption("sstable index truncated: " + path);
    const std::uint64_t n = read_u64(index_bytes.data());
    pos = 8;
    reader->index_.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
        if (pos + 4 > index_bytes.size()) return Status::Corruption("index entry truncated");
        const std::uint32_t klen = read_u32(index_bytes.data() + pos);
        pos += 4;
        if (pos + klen + 20 > index_bytes.size()) {
            return Status::Corruption("index entry truncated");
        }
        IndexEntry e;
        e.last_key.assign(index_bytes.data() + pos, klen);
        pos += klen;
        e.offset = read_u64(index_bytes.data() + pos);
        e.size = read_u64(index_bytes.data() + pos + 8);
        e.crc = read_u32(index_bytes.data() + pos + 16);
        pos += 20;
        reader->index_.push_back(std::move(e));
    }

    // Bloom.
    std::string bloom_bytes(bloom_size, '\0');
    if (std::fseek(reader->file_, static_cast<long>(bloom_off), SEEK_SET) != 0 ||
        std::fread(bloom_bytes.data(), 1, bloom_size, reader->file_) != bloom_size) {
        return Status::Corruption("cannot read sstable bloom: " + path);
    }
    reader->bloom_ = BloomFilter::decode(bloom_bytes);
    return reader;
}

std::size_t SstReader::find_block(std::string_view key) const {
    // First block whose last_key >= key.
    std::size_t lo = 0, hi = index_.size();
    while (lo < hi) {
        const std::size_t mid = (lo + hi) / 2;
        if (std::string_view(index_[mid].last_key) < key) lo = mid + 1;
        else hi = mid;
    }
    return lo;
}

Result<std::shared_ptr<const std::string>> SstReader::read_block(std::size_t idx) {
    if (idx >= index_.size()) return Status::OutOfRange("block index");
    if (cache_) {
        if (auto blk = cache_->lookup(file_number_, idx)) return blk;
    }
    auto blk = std::make_shared<std::string>(index_[idx].size, '\0');
    {
        std::lock_guard<std::mutex> lock(file_mutex_);
        if (std::fseek(file_, static_cast<long>(index_[idx].offset), SEEK_SET) != 0 ||
            std::fread(blk->data(), 1, blk->size(), file_) != blk->size()) {
            return Status::IOError("cannot read block from " + path_);
        }
    }
    if (crc32(*blk) != index_[idx].crc) {
        return Status::Corruption("sstable block checksum mismatch in " + path_);
    }
    std::shared_ptr<const std::string> out = blk;
    if (cache_) cache_->insert(file_number_, idx, out);
    return out;
}

Result<std::optional<std::string>> SstReader::get(std::string_view key) {
    if (!bloom_.may_contain(key)) return Status::NotFound("bloom miss");
    const std::size_t blk_idx = find_block(key);
    if (blk_idx >= index_.size()) return Status::NotFound("beyond last block");
    auto blk = read_block(blk_idx);
    if (!blk.ok()) return blk.status();
    const std::string& data = **blk;
    std::size_t pos = 0;
    while (pos + 8 <= data.size()) {
        const std::uint32_t klen = read_u32(data.data() + pos);
        const std::uint32_t vlen = read_u32(data.data() + pos + 4);
        const bool tombstone = (vlen == kTombstoneLen);
        const std::size_t vbytes = tombstone ? 0 : vlen;
        if (pos + 8 + klen + vbytes > data.size()) break;
        std::string_view entry_key(data.data() + pos + 8, klen);
        if (entry_key == key) {
            if (tombstone) return std::optional<std::string>{};
            return std::optional<std::string>(std::string(data.data() + pos + 8 + klen, vlen));
        }
        if (entry_key > key) break;  // sorted within block
        pos += 8 + klen + vbytes;
    }
    return Status::NotFound("key not in block");
}

// ------------------------------------------------------ SstReader::Iterator

Status SstReader::Iterator::load_block(std::size_t block_idx) {
    block_idx_ = block_idx;
    pos_ = 0;
    valid_ = false;
    if (block_idx_ >= reader_->index_.size()) return Status::OK();  // exhausted
    auto blk = reader_->read_block(block_idx_);
    if (!blk.ok()) return blk.status();
    block_ = *blk;
    return Status::OK();
}

bool SstReader::Iterator::parse_current() {
    if (!block_ || pos_ + 8 > block_->size()) return false;
    const std::uint32_t klen = read_u32(block_->data() + pos_);
    const std::uint32_t vlen = read_u32(block_->data() + pos_ + 4);
    tombstone_ = (vlen == kTombstoneLen);
    const std::size_t vbytes = tombstone_ ? 0 : vlen;
    if (pos_ + 8 + klen + vbytes > block_->size()) return false;
    key_.assign(block_->data() + pos_ + 8, klen);
    value_.assign(block_->data() + pos_ + 8 + klen, vbytes);
    pos_ += 8 + klen + vbytes;
    return true;
}

Status SstReader::Iterator::seek(std::string_view bound, bool inclusive) {
    valid_ = false;
    std::size_t blk = reader_->find_block(bound);
    // find_block gives the first block whose last_key >= bound; earlier keys
    // in that block may still precede the bound — advance as needed.
    while (blk < reader_->index_.size()) {
        Status st = load_block(blk);
        if (!st.ok()) return st;
        while (parse_current()) {
            const std::string_view k(key_);
            if (inclusive ? k >= bound : k > bound) {
                valid_ = true;
                return Status::OK();
            }
        }
        ++blk;
    }
    return Status::OK();  // exhausted: !valid()
}

Status SstReader::Iterator::next() {
    valid_ = false;
    while (true) {
        if (parse_current()) {
            valid_ = true;
            return Status::OK();
        }
        if (block_idx_ + 1 >= reader_->index_.size()) return Status::OK();
        Status st = load_block(block_idx_ + 1);
        if (!st.ok()) return st;
    }
}

}  // namespace hep::yokan::lsm

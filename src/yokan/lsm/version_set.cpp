#include "yokan/lsm/version_set.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <filesystem>

#include "common/compression.hpp"
#include "common/crc32.hpp"
#include "common/json.hpp"

namespace fs = std::filesystem;

namespace hep::yokan::lsm {

namespace {

constexpr const char* kCurrentName = "CURRENT";
constexpr const char* kLegacyJsonName = "MANIFEST.json";

// VersionEdit payload tags.
constexpr std::uint64_t kTagNextFile = 1;
constexpr std::uint64_t kTagLastSeq = 2;
constexpr std::uint64_t kTagWalFloor = 3;
constexpr std::uint64_t kTagAddTable = 4;
constexpr std::uint64_t kTagDeleteTable = 5;

void put_string(std::string& out, std::string_view s) {
    compress::put_varint(out, s.size());
    out.append(s);
}

bool get_string(std::string_view in, std::size_t& pos, std::string& out) {
    std::uint64_t len = 0;
    if (!compress::get_varint(in, pos, len)) return false;
    if (len > in.size() - pos) return false;
    out.assign(in.data() + pos, len);
    pos += len;
    return true;
}

Status sync_file(std::FILE* f, const char* what) {
    if (std::fflush(f) != 0) return Status::IOError(std::string("cannot flush ") + what);
    if (::fsync(::fileno(f)) != 0) return Status::IOError(std::string("cannot fsync ") + what);
    return Status::OK();
}

Status sync_dir(const std::string& dir) {
    const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0) return Status::IOError("cannot open directory for fsync: " + dir);
    const int rc = ::fsync(fd);
    ::close(fd);
    if (rc != 0) return Status::IOError("cannot fsync directory: " + dir);
    return Status::OK();
}

}  // namespace

// ------------------------------------------------------------- VersionEdit

std::string VersionEdit::encode() const {
    std::string out;
    if (next_file_number) {
        compress::put_varint(out, kTagNextFile);
        compress::put_varint(out, *next_file_number);
    }
    if (last_seq) {
        compress::put_varint(out, kTagLastSeq);
        compress::put_varint(out, *last_seq);
    }
    if (wal_floor) {
        compress::put_varint(out, kTagWalFloor);
        compress::put_varint(out, *wal_floor);
    }
    for (const auto& [level, meta] : added) {
        compress::put_varint(out, kTagAddTable);
        compress::put_varint(out, level);
        compress::put_varint(out, meta.file_number);
        compress::put_varint(out, meta.entries);
        compress::put_varint(out, meta.bytes);
        compress::put_varint(out, meta.has_meta ? 1 : 0);
        put_string(out, meta.min_key);
        put_string(out, meta.max_key);
    }
    for (const auto& [level, file_number] : deleted) {
        compress::put_varint(out, kTagDeleteTable);
        compress::put_varint(out, level);
        compress::put_varint(out, file_number);
    }
    return out;
}

Result<VersionEdit> VersionEdit::decode(std::string_view payload) {
    VersionEdit edit;
    std::size_t pos = 0;
    while (pos < payload.size()) {
        std::uint64_t tag = 0, v = 0;
        if (!compress::get_varint(payload, pos, tag)) {
            return Status::Corruption("manifest edit tag truncated");
        }
        switch (tag) {
            case kTagNextFile:
                if (!compress::get_varint(payload, pos, v)) break;
                edit.next_file_number = v;
                continue;
            case kTagLastSeq:
                if (!compress::get_varint(payload, pos, v)) break;
                edit.last_seq = v;
                continue;
            case kTagWalFloor:
                if (!compress::get_varint(payload, pos, v)) break;
                edit.wal_floor = v;
                continue;
            case kTagAddTable: {
                std::uint64_t level = 0, has_meta = 0;
                TableMeta meta;
                if (!compress::get_varint(payload, pos, level) ||
                    !compress::get_varint(payload, pos, meta.file_number) ||
                    !compress::get_varint(payload, pos, meta.entries) ||
                    !compress::get_varint(payload, pos, meta.bytes) ||
                    !compress::get_varint(payload, pos, has_meta) ||
                    !get_string(payload, pos, meta.min_key) ||
                    !get_string(payload, pos, meta.max_key)) {
                    break;
                }
                meta.has_meta = has_meta != 0;
                edit.added.emplace_back(static_cast<std::uint32_t>(level), std::move(meta));
                continue;
            }
            case kTagDeleteTable: {
                std::uint64_t level = 0, file_number = 0;
                if (!compress::get_varint(payload, pos, level) ||
                    !compress::get_varint(payload, pos, file_number)) {
                    break;
                }
                edit.deleted.emplace_back(static_cast<std::uint32_t>(level), file_number);
                continue;
            }
            default:
                return Status::Corruption("unknown manifest edit tag " + std::to_string(tag));
        }
        return Status::Corruption("manifest edit truncated");
    }
    return edit;
}

void ManifestState::apply(const VersionEdit& edit) {
    if (edit.next_file_number) next_file_number = *edit.next_file_number;
    if (edit.last_seq) last_seq = *edit.last_seq;
    if (edit.wal_floor) wal_floor = *edit.wal_floor;
    for (const auto& [level, file_number] : edit.deleted) {
        if (level >= levels.size()) continue;
        auto& lvl = levels[level];
        lvl.erase(std::remove_if(lvl.begin(), lvl.end(),
                                 [fn = file_number](const TableMeta& m) {
                                     return m.file_number == fn;
                                 }),
                  lvl.end());
    }
    for (const auto& [level, meta] : edit.added) {
        if (level >= levels.size()) levels.resize(level + 1);
        levels[level].push_back(meta);
    }
}

// -------------------------------------------------------------- VersionSet

VersionSet::VersionSet(std::string dir, std::size_t max_levels,
                       std::function<void(std::string_view)> crash_hook)
    : dir_(std::move(dir)), max_levels_(max_levels), crash_hook_(std::move(crash_hook)) {
    state_.levels.resize(max_levels_);
}

VersionSet::~VersionSet() {
    if (log_) std::fclose(log_);
}

std::string VersionSet::log_path(char which) const {
    return dir_ + "/MANIFEST-" + which + ".log";
}

bool VersionSet::is_manifest_file(std::string_view name) noexcept {
    return name == kCurrentName || name == "CURRENT.tmp" || name == kLegacyJsonName ||
           name == "MANIFEST-A.log" || name == "MANIFEST-B.log" || name == "MANIFEST.tmp";
}

Status VersionSet::append_record(std::string_view payload) {
    std::string frame;
    frame.reserve(8 + payload.size());
    const std::uint32_t crc = crc32(payload);
    const auto len = static_cast<std::uint32_t>(payload.size());
    frame.append(reinterpret_cast<const char*>(&crc), 4);
    frame.append(reinterpret_cast<const char*>(&len), 4);
    frame.append(payload);
    if (std::fwrite(frame.data(), 1, frame.size(), log_) != frame.size()) {
        return Status::IOError("short manifest append in " + log_path(live_));
    }
    Status st = sync_file(log_, "manifest log");
    if (!st.ok()) return st;
    log_bytes_ += frame.size();
    return Status::OK();
}

Status VersionSet::open_live_log(bool truncate) {
    if (log_) {
        std::fclose(log_);
        log_ = nullptr;
    }
    const std::string path = log_path(live_);
    log_ = std::fopen(path.c_str(), truncate ? "wb" : "ab");
    if (!log_) return Status::IOError("cannot open manifest log " + path);
    log_bytes_ = truncate ? 0 : static_cast<std::size_t>(fs::file_size(path));
    return Status::OK();
}

Status VersionSet::load_log(const std::string& path) {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (!f) return Status::IOError("cannot open manifest log " + path);
    std::string contents;
    {
        std::fseek(f, 0, SEEK_END);
        const long size = std::ftell(f);
        std::fseek(f, 0, SEEK_SET);
        contents.resize(size > 0 ? static_cast<std::size_t>(size) : 0);
        const std::size_t got = contents.empty()
                                    ? 0
                                    : std::fread(contents.data(), 1, contents.size(), f);
        contents.resize(got);
        std::fclose(f);
    }
    state_ = ManifestState{};
    state_.levels.resize(max_levels_);
    // Replay every complete, checksum-valid record; a torn tail (crash mid
    // append) simply ends the log early — by construction nothing after it
    // was ever acknowledged.
    std::size_t pos = 0;
    while (pos + 8 <= contents.size()) {
        std::uint32_t crc = 0, len = 0;
        std::memcpy(&crc, contents.data() + pos, 4);
        std::memcpy(&len, contents.data() + pos + 4, 4);
        if (pos + 8 + len > contents.size()) break;  // torn tail
        const std::string_view payload(contents.data() + pos + 8, len);
        if (crc32(payload) != crc) break;  // corrupt tail
        auto edit = VersionEdit::decode(payload);
        if (!edit.ok()) break;
        state_.apply(*edit);
        pos += 8 + len;
    }
    if (state_.levels.size() < max_levels_) state_.levels.resize(max_levels_);
    // L1+ invariant: non-overlapping tables sorted by min_key. Edits append
    // in publish order, so restore the sort here (L0 keeps append order —
    // newest last — which the read path depends on).
    for (std::size_t li = 1; li < state_.levels.size(); ++li) {
        std::sort(state_.levels[li].begin(), state_.levels[li].end(),
                  [](const TableMeta& a, const TableMeta& b) { return a.min_key < b.min_key; });
    }
    return Status::OK();
}

Status VersionSet::load_legacy_json(const std::string& path, bool& found) {
    found = false;
    if (!fs::exists(path)) return Status::OK();
    auto doc = json::parse_file(path);
    if (!doc.ok()) return Status::Corruption("manifest unreadable: " + doc.status().message());
    const json::Value& v = *doc;
    state_ = ManifestState{};
    state_.levels.resize(max_levels_);
    state_.next_file_number = static_cast<std::uint64_t>(v["next_file"].as_int(1));
    state_.last_seq = static_cast<std::uint64_t>(v["last_seq"].as_int(0));
    const json::Value& levels = v["levels"];
    for (std::size_t li = 0; li < levels.size(); ++li) {
        if (li >= state_.levels.size()) state_.levels.resize(li + 1);
        const json::Value& level = levels.at(li);
        for (std::size_t ti = 0; ti < level.size(); ++ti) {
            const json::Value& t = level.at(ti);
            TableMeta meta;
            meta.file_number = static_cast<std::uint64_t>(t["file"].as_int());
            meta.min_key = t["min"].as_string();
            meta.max_key = t["max"].as_string();
            meta.entries = static_cast<std::uint64_t>(t["entries"].as_int());
            meta.bytes = static_cast<std::uint64_t>(t["bytes"].as_int());
            meta.has_meta = t["meta"].as_bool(false);
            state_.levels[li].push_back(std::move(meta));
        }
    }
    found = true;
    return Status::OK();
}

Status VersionSet::recover() {
    const std::string current_path = dir_ + "/" + kCurrentName;
    if (fs::exists(current_path)) {
        std::string which;
        {
            std::FILE* f = std::fopen(current_path.c_str(), "rb");
            if (!f) return Status::IOError("cannot read " + current_path);
            char buf[8] = {};
            const std::size_t got = std::fread(buf, 1, sizeof buf, f);
            std::fclose(f);
            which.assign(buf, got);
        }
        char live = !which.empty() && (which[0] == 'A' || which[0] == 'B') ? which[0] : 'A';
        // CURRENT flips atomically, but a missing/unreadable log falls back
        // to the sibling — the flip protocol guarantees at least one of the
        // two holds a complete snapshot.
        Status st = fs::exists(log_path(live)) ? load_log(log_path(live))
                                               : Status::IOError("manifest log missing");
        if (!st.ok()) {
            const char other = live == 'A' ? 'B' : 'A';
            if (!fs::exists(log_path(other))) return st;
            st = load_log(log_path(other));
            if (!st.ok()) return st;
            live = other;
        }
        live_ = live;
        st = open_live_log(/*truncate=*/false);
        if (!st.ok()) return st;
        // Finish an interrupted legacy upgrade: CURRENT is durable, the JSON
        // file is stale at best.
        std::error_code ec;
        fs::remove(dir_ + "/" + kLegacyJsonName, ec);
        return Status::OK();
    }

    bool legacy_found = false;
    Status st = load_legacy_json(dir_ + "/" + kLegacyJsonName, legacy_found);
    if (!st.ok()) return st;
    // Fresh database or legacy upgrade: either way, persist the state in the
    // new format so CURRENT exists from here on.
    live_ = 'B';  // write_snapshot_and_flip targets the other file: 'A'
    st = write_snapshot_and_flip('A');
    if (!st.ok()) return st;
    if (legacy_found) {
        std::error_code ec;
        fs::remove(dir_ + "/" + kLegacyJsonName, ec);
        // Removal is best-effort: CURRENT now exists and takes precedence.
    }
    return Status::OK();
}

Status VersionSet::write_snapshot_and_flip(char target) {
    hook("manifest:before_snapshot");
    // Full state as a single edit — the leading record of the new log.
    VersionEdit snapshot;
    snapshot.next_file_number = state_.next_file_number;
    if (state_.last_seq > 0) snapshot.last_seq = state_.last_seq;
    if (state_.wal_floor > 0) snapshot.wal_floor = state_.wal_floor;
    for (std::size_t li = 0; li < state_.levels.size(); ++li) {
        for (const auto& meta : state_.levels[li]) {
            snapshot.added.emplace_back(static_cast<std::uint32_t>(li), meta);
        }
    }

    // Build the target log with its own handle; the live log (and live_)
    // stay authoritative until the CURRENT flip commits, so any failure on
    // this path leaves the old manifest fully intact.
    const std::string target_path = log_path(target);
    std::FILE* target_log = std::fopen(target_path.c_str(), "wb");
    if (!target_log) return Status::IOError("cannot open manifest log " + target_path);
    std::size_t target_bytes = 0;
    {
        const std::string payload = snapshot.encode();
        std::string frame;
        frame.reserve(8 + payload.size());
        const std::uint32_t crc = crc32(payload);
        const auto len = static_cast<std::uint32_t>(payload.size());
        frame.append(reinterpret_cast<const char*>(&crc), 4);
        frame.append(reinterpret_cast<const char*>(&len), 4);
        frame.append(payload);
        const bool ok = std::fwrite(frame.data(), 1, frame.size(), target_log) == frame.size() &&
                        sync_file(target_log, "manifest snapshot").ok();
        if (!ok) {
            std::fclose(target_log);
            return Status::IOError("cannot write manifest snapshot " + target_path);
        }
        target_bytes = frame.size();
    }
    Status st = sync_dir(dir_);
    if (!st.ok()) {
        std::fclose(target_log);
        return st;
    }
    hook("manifest:snapshot_synced");

    // Flip CURRENT: tmp + fsync + rename + dir fsync. The rename is the
    // atomic commit point of the whole save.
    const std::string tmp = dir_ + "/CURRENT.tmp";
    const std::string current_path = dir_ + "/" + kCurrentName;
    {
        std::FILE* f = std::fopen(tmp.c_str(), "wb");
        if (!f) {
            std::fclose(target_log);
            return Status::IOError("cannot write " + tmp);
        }
        const char line[2] = {target, '\n'};
        const bool ok = std::fwrite(line, 1, 2, f) == 2 && sync_file(f, "CURRENT.tmp").ok();
        std::fclose(f);
        if (!ok) {
            std::fclose(target_log);
            return Status::IOError("cannot sync " + tmp);
        }
    }
    std::error_code ec;
    fs::rename(tmp, current_path, ec);
    if (ec) {
        std::fclose(target_log);
        return Status::IOError("CURRENT rename failed: " + ec.message());
    }
    st = sync_dir(dir_);
    if (!st.ok()) {
        std::fclose(target_log);
        return st;
    }
    // Committed: adopt the new log as the live one.
    if (log_) std::fclose(log_);
    log_ = target_log;
    log_bytes_ = target_bytes;
    live_ = target;
    hook("manifest:current_flipped");
    return Status::OK();
}

Status VersionSet::log_and_apply(const VersionEdit& edit) {
    hook("manifest:before_append");
    Status st = append_record(edit.encode());
    if (!st.ok()) return st;
    state_.apply(edit);
    hook("manifest:after_append");
    if (log_bytes_ > rotate_threshold_bytes_) {
        st = write_snapshot_and_flip(live_ == 'A' ? 'B' : 'A');
        if (!st.ok()) return st;
    }
    return Status::OK();
}

}  // namespace hep::yokan::lsm

#include "yokan/lsm/lsm_db.hpp"

#include <algorithm>
#include <filesystem>

#include "common/logging.hpp"

namespace fs = std::filesystem;

namespace hep::yokan::lsm {

namespace {
constexpr const char* kManifestName = "MANIFEST.json";
constexpr const char* kWalName = "wal.log";
}  // namespace

LsmDb::LsmDb(LsmOptions options) : options_(std::move(options)) {
    cache_ = std::make_shared<BlockCache>(options_.block_cache_bytes);
    levels_.resize(options_.max_levels);
}

LsmDb::~LsmDb() {
    // Best-effort durability on clean shutdown.
    std::unique_lock lock(mutex_);
    (void)wal_.sync();
}

std::string LsmDb::table_path(std::uint64_t file_number) const {
    return options_.path + "/" + std::to_string(file_number) + ".sst";
}

Result<std::unique_ptr<LsmDb>> LsmDb::open(LsmOptions options) {
    std::error_code ec;
    fs::create_directories(options.path, ec);
    if (ec) return Status::IOError("cannot create " + options.path + ": " + ec.message());

    auto db = std::unique_ptr<LsmDb>(new LsmDb(std::move(options)));
    Status st = db->load_manifest();
    if (!st.ok()) return st;
    st = db->recover_wal();
    if (!st.ok()) return st;
    return db;
}

Status LsmDb::load_manifest() {
    const std::string path = options_.path + "/" + kManifestName;
    if (!fs::exists(path)) return Status::OK();  // fresh database
    auto doc = json::parse_file(path);
    if (!doc.ok()) return Status::Corruption("manifest unreadable: " + doc.status().message());
    const json::Value& v = *doc;
    next_file_number_ = static_cast<std::uint64_t>(v["next_file"].as_int(1));
    const json::Value& levels = v["levels"];
    for (std::size_t li = 0; li < levels.size() && li < levels_.size(); ++li) {
        const json::Value& level = levels.at(li);
        for (std::size_t ti = 0; ti < level.size(); ++ti) {
            const json::Value& t = level.at(ti);
            TableMeta meta;
            meta.file_number = static_cast<std::uint64_t>(t["file"].as_int());
            meta.min_key = t["min"].as_string();
            meta.max_key = t["max"].as_string();
            meta.entries = static_cast<std::uint64_t>(t["entries"].as_int());
            meta.bytes = static_cast<std::uint64_t>(t["bytes"].as_int());
            auto reader = open_table(meta);
            if (!reader.ok()) return reader.status();
            levels_[li].tables.push_back(std::move(meta));
            levels_[li].readers.push_back(std::move(reader.value()));
        }
    }
    return Status::OK();
}

Status LsmDb::save_manifest() {
    json::Value doc = json::Value::make_object();
    doc["next_file"] = next_file_number_;
    json::Value levels = json::Value::make_array();
    for (const auto& level : levels_) {
        json::Value arr = json::Value::make_array();
        for (const auto& t : level.tables) {
            json::Value entry = json::Value::make_object();
            entry["file"] = t.file_number;
            entry["min"] = t.min_key;
            entry["max"] = t.max_key;
            entry["entries"] = t.entries;
            entry["bytes"] = t.bytes;
            arr.push_back(std::move(entry));
        }
        levels.push_back(std::move(arr));
    }
    doc["levels"] = std::move(levels);

    const std::string tmp = options_.path + "/MANIFEST.tmp";
    const std::string final_path = options_.path + "/" + kManifestName;
    {
        std::FILE* f = std::fopen(tmp.c_str(), "wb");
        if (!f) return Status::IOError("cannot write manifest tmp");
        const std::string text = doc.dump(2);
        const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
        std::fclose(f);
        if (!ok) return Status::IOError("short manifest write");
    }
    std::error_code ec;
    fs::rename(tmp, final_path, ec);
    if (ec) return Status::IOError("manifest rename failed: " + ec.message());
    return Status::OK();
}

Status LsmDb::recover_wal() {
    const std::string wal_path = options_.path + "/" + kWalName;
    auto replayed = Wal::replay(wal_path, [&](Wal::RecordType type, std::string_view key,
                                              std::string_view value) {
        if (type == Wal::RecordType::kPut) {
            memtable_.insert_or_assign(std::string(key),
                                       hep::BufferView(hep::Buffer::copy_of(value)));
            memtable_bytes_ += key.size() + value.size() + 32;
        } else {
            memtable_.insert_or_assign(std::string(key), std::nullopt);
            memtable_bytes_ += key.size() + 32;
        }
    });
    if (!replayed.ok()) return replayed.status();
    if (*replayed > 0) {
        HEP_LOG_INFO("lsm %s: replayed %llu WAL records", options_.path.c_str(),
                     static_cast<unsigned long long>(*replayed));
    }
    return wal_.open(wal_path);
}

Result<std::shared_ptr<SstReader>> LsmDb::open_table(const TableMeta& meta) const {
    return SstReader::open(table_path(meta.file_number), meta.file_number, cache_);
}

// ------------------------------------------------------------------ writes

Status LsmDb::put(std::string_view key, std::string_view value, bool overwrite) {
    // Legacy contiguous path: the memtable must own the bytes, so this copy is
    // the point (and is counted by copy_of).
    return put_view(key, hep::BufferView(hep::Buffer::copy_of(value)), overwrite);
}

Status LsmDb::put_view(std::string_view key, hep::BufferView value, bool overwrite) {
    hep::BufferView owned = value.to_owned();
    std::unique_lock lock(mutex_);
    ++stats_.puts;
    if (!overwrite) {
        // "create" semantics require an existence probe.
        auto mem = memtable_.find(key);
        if (mem != memtable_.end()) {
            if (mem->second.has_value()) return Status::AlreadyExists(std::string(key));
        } else {
            auto found = table_lookup(key);
            if (found.ok() && found->has_value()) {
                return Status::AlreadyExists(std::string(key));
            }
        }
    }
    Status st = wal_.append_put(key, owned.sv());
    if (!st.ok()) return st;
    if (options_.wal_sync_every_put) {
        st = wal_.sync();
        if (!st.ok()) return st;
    }
    memtable_bytes_ += key.size() + owned.size() + 32;
    memtable_.insert_or_assign(std::string(key), std::move(owned));
    if (memtable_bytes_ >= options_.memtable_bytes) {
        st = flush_memtable_locked();
        if (!st.ok()) return st;
        st = maybe_compact_locked();
        if (!st.ok()) return st;
        st = save_manifest();
        if (!st.ok()) return st;
    }
    return Status::OK();
}

Status LsmDb::erase(std::string_view key) {
    std::unique_lock lock(mutex_);
    ++stats_.erases;
    // Contract: erasing a missing key is NotFound (matches the map backend).
    auto mem = memtable_.find(key);
    if (mem != memtable_.end()) {
        if (!mem->second.has_value()) return Status::NotFound(std::string(key));
    } else {
        auto found = table_lookup(key);
        if (!found.ok() || !found->has_value()) return Status::NotFound(std::string(key));
    }
    Status st = wal_.append_delete(key);
    if (!st.ok()) return st;
    memtable_.insert_or_assign(std::string(key), std::nullopt);
    memtable_bytes_ += key.size() + 32;
    return Status::OK();
}

Status LsmDb::flush() {
    std::unique_lock lock(mutex_);
    if (memtable_.empty()) return Status::OK();
    Status st = flush_memtable_locked();
    if (!st.ok()) return st;
    st = maybe_compact_locked();
    if (!st.ok()) return st;
    return save_manifest();
}

Status LsmDb::flush_memtable_locked() {
    if (memtable_.empty()) return Status::OK();
    const std::uint64_t file_number = next_file_number_++;
    SstWriter writer(table_path(file_number), file_number, options_.block_bytes,
                     memtable_.size());
    for (const auto& [key, value] : memtable_) {
        Status st = value.has_value() ? writer.add(key, value->sv()) : writer.add(key, {}, true);
        if (!st.ok()) return st;
    }
    auto meta = writer.finish();
    if (!meta.ok()) return meta.status();
    auto reader = open_table(*meta);
    if (!reader.ok()) return reader.status();
    levels_[0].tables.push_back(std::move(meta.value()));  // newest last
    levels_[0].readers.push_back(std::move(reader.value()));
    memtable_.clear();
    memtable_bytes_ = 0;
    ++lsm_stats_.flushes;
    ++lsm_stats_.sst_files_written;
    return wal_.reset();
}

Status LsmDb::maybe_compact_locked() {
    bool changed = true;
    while (changed) {
        changed = false;
        if (levels_[0].tables.size() >= options_.l0_compaction_trigger) {
            Status st = compact_level_locked(0);
            if (!st.ok()) return st;
            changed = true;
            continue;
        }
        std::uint64_t budget = options_.level_base_bytes;
        for (std::size_t i = 1; i + 1 < levels_.size(); ++i) {
            if (levels_[i].bytes() > budget) {
                Status st = compact_level_locked(i);
                if (!st.ok()) return st;
                changed = true;
                break;
            }
            budget *= options_.level_multiplier;
        }
    }
    return Status::OK();
}

namespace {

/// Merge source over an SSTable iterator with a recency priority:
/// lower `prio` wins for equal keys.
struct MergeSource {
    SstReader::Iterator it;
    std::size_t prio;
};

bool ranges_overlap(const TableMeta& a, std::string_view min_key, std::string_view max_key) {
    return !(std::string_view(a.max_key) < min_key || max_key < std::string_view(a.min_key));
}

}  // namespace

Status LsmDb::compact_level_locked(std::size_t level) {
    const std::size_t target = level + 1;
    if (target >= levels_.size()) return Status::OK();

    // Choose input tables from `level`.
    std::vector<std::size_t> src_idx;
    if (level == 0) {
        for (std::size_t i = 0; i < levels_[0].tables.size(); ++i) src_idx.push_back(i);
    } else {
        src_idx.push_back(0);  // oldest-first keeps levels rolling forward
    }
    if (src_idx.empty()) return Status::OK();

    std::string min_key = levels_[level].tables[src_idx[0]].min_key;
    std::string max_key = levels_[level].tables[src_idx[0]].max_key;
    for (std::size_t i : src_idx) {
        min_key = std::min(min_key, levels_[level].tables[i].min_key);
        max_key = std::max(max_key, levels_[level].tables[i].max_key);
    }

    // Overlapping tables in the target level.
    std::vector<std::size_t> dst_idx;
    for (std::size_t i = 0; i < levels_[target].tables.size(); ++i) {
        if (ranges_overlap(levels_[target].tables[i], min_key, max_key)) dst_idx.push_back(i);
    }

    // Tombstones may be dropped only if no key version can exist deeper.
    bool deeper_empty = true;
    for (std::size_t d = target + 1; d < levels_.size(); ++d) {
        if (!levels_[d].tables.empty()) deeper_empty = false;
    }

    // Build merge sources; lower prio wins. L0 newest (highest index) is the
    // most recent version; target-level tables are oldest.
    std::vector<MergeSource> sources;
    std::uint64_t input_entries = 0;
    if (level == 0) {
        for (auto rit = src_idx.rbegin(); rit != src_idx.rend(); ++rit) {
            sources.push_back({levels_[0].readers[*rit]->make_iterator(), sources.size()});
            input_entries += levels_[0].tables[*rit].entries;
        }
    } else {
        for (std::size_t i : src_idx) {
            sources.push_back({levels_[level].readers[i]->make_iterator(), sources.size()});
            input_entries += levels_[level].tables[i].entries;
        }
    }
    for (std::size_t i : dst_idx) {
        sources.push_back({levels_[target].readers[i]->make_iterator(), sources.size()});
        input_entries += levels_[target].tables[i].entries;
    }
    for (auto& s : sources) {
        Status st = s.it.seek_after(std::string_view{});  // from the beginning
        if (!st.ok()) return st;
    }

    // Merge into new target-level tables.
    std::vector<TableMeta> outputs;
    std::optional<SstWriter> writer;
    std::size_t out_bytes_estimate = 0;
    auto open_writer = [&]() {
        const std::uint64_t fn = next_file_number_++;
        writer.emplace(table_path(fn), fn, options_.block_bytes,
                       std::max<std::size_t>(16, input_entries));
        out_bytes_estimate = 0;
    };
    auto close_writer = [&]() -> Status {
        if (!writer) return Status::OK();
        auto meta = writer->finish();
        if (!meta.ok()) return meta.status();
        // Drop empty output tables.
        if (meta->entries > 0) outputs.push_back(std::move(meta.value()));
        else std::filesystem::remove(table_path(meta->file_number));
        writer.reset();
        return Status::OK();
    };

    while (true) {
        // Smallest current key across sources; ties won by lowest prio.
        const MergeSource* best = nullptr;
        for (const auto& s : sources) {
            if (!s.it.valid()) continue;
            if (!best || s.it.key() < best->it.key() ||
                (s.it.key() == best->it.key() && s.prio < best->prio)) {
                best = &s;
            }
        }
        if (!best) break;
        const std::string key(best->it.key());
        const std::string value(best->it.value());
        const bool tombstone = best->it.is_tombstone();
        // Advance every source positioned at this key.
        for (auto& s : sources) {
            while (s.it.valid() && s.it.key() == key) {
                Status st = s.it.next();
                if (!st.ok()) return st;
            }
        }
        if (tombstone && deeper_empty) continue;  // fully reclaim
        if (!writer) open_writer();
        Status st = writer->add(key, value, tombstone);
        if (!st.ok()) return st;
        out_bytes_estimate += key.size() + value.size() + 8;
        if (out_bytes_estimate >= options_.target_file_bytes) {
            st = close_writer();
            if (!st.ok()) return st;
        }
    }
    Status st = close_writer();
    if (!st.ok()) return st;

    // Install outputs: delete inputs from both levels, insert outputs sorted.
    auto remove_tables = [&](Level& lvl, const std::vector<std::size_t>& idx) {
        // idx is sorted ascending; erase from the back.
        for (auto rit = idx.rbegin(); rit != idx.rend(); ++rit) {
            std::filesystem::remove(table_path(lvl.tables[*rit].file_number));
            lvl.tables.erase(lvl.tables.begin() + static_cast<std::ptrdiff_t>(*rit));
            lvl.readers.erase(lvl.readers.begin() + static_cast<std::ptrdiff_t>(*rit));
        }
    };
    remove_tables(levels_[level], src_idx);
    remove_tables(levels_[target], dst_idx);

    for (auto& meta : outputs) {
        auto reader = open_table(meta);
        if (!reader.ok()) return reader.status();
        // Insert sorted by min_key (levels >= 1 are non-overlapping).
        auto pos = std::lower_bound(
            levels_[target].tables.begin(), levels_[target].tables.end(), meta,
            [](const TableMeta& a, const TableMeta& b) { return a.min_key < b.min_key; });
        const auto offset = pos - levels_[target].tables.begin();
        levels_[target].tables.insert(pos, std::move(meta));
        levels_[target].readers.insert(levels_[target].readers.begin() + offset,
                                       std::move(reader.value()));
    }
    ++lsm_stats_.compactions;
    lsm_stats_.sst_files_written += outputs.size();
    return Status::OK();
}

// ------------------------------------------------------------------- reads

Result<std::optional<std::string>> LsmDb::table_lookup(std::string_view key) const {
    // L0: newest to oldest (later files shadow earlier ones).
    const Level& l0 = levels_[0];
    for (std::size_t i = l0.tables.size(); i-- > 0;) {
        const TableMeta& t = l0.tables[i];
        if (key < std::string_view(t.min_key) || std::string_view(t.max_key) < key) continue;
        auto r = l0.readers[i]->get(key);
        if (r.ok()) return r;  // value or tombstone
        if (r.status().code() != StatusCode::kNotFound) return r.status();
    }
    // Deeper levels: at most one candidate file per level.
    for (std::size_t li = 1; li < levels_.size(); ++li) {
        const Level& lvl = levels_[li];
        // First table with max_key >= key.
        std::size_t lo = 0, hi = lvl.tables.size();
        while (lo < hi) {
            const std::size_t mid = (lo + hi) / 2;
            if (std::string_view(lvl.tables[mid].max_key) < key) lo = mid + 1;
            else hi = mid;
        }
        if (lo == lvl.tables.size()) continue;
        if (key < std::string_view(lvl.tables[lo].min_key)) continue;
        auto r = lvl.readers[lo]->get(key);
        if (r.ok()) return r;
        if (r.status().code() != StatusCode::kNotFound) return r.status();
    }
    return Status::NotFound(std::string(key));
}

Result<std::string> LsmDb::get(std::string_view key) {
    std::shared_lock lock(mutex_);
    ++stats_.gets;
    auto mem = memtable_.find(key);
    if (mem != memtable_.end()) {
        if (!mem->second.has_value()) return Status::NotFound(std::string(key));
        hep::count_buffer_copy(mem->second->size());
        return std::string(mem->second->sv());
    }
    auto found = table_lookup(key);
    if (!found.ok()) return found.status();
    if (!found->has_value()) return Status::NotFound(std::string(key));
    return std::move(**found);
}

Result<hep::BufferView> LsmDb::get_view(std::string_view key) {
    std::shared_lock lock(mutex_);
    ++stats_.gets;
    auto mem = memtable_.find(key);
    if (mem != memtable_.end()) {
        if (!mem->second.has_value()) return Status::NotFound(std::string(key));
        return *mem->second;  // refcount bump only
    }
    auto found = table_lookup(key);
    if (!found.ok()) return found.status();
    if (!found->has_value()) return Status::NotFound(std::string(key));
    // Table values materialize from disk/cache as a fresh string; adopt it.
    return hep::BufferView(hep::Buffer::adopt(std::move(**found)));
}

Result<bool> LsmDb::exists(std::string_view key) {
    std::shared_lock lock(mutex_);
    ++stats_.gets;
    auto mem = memtable_.find(key);
    if (mem != memtable_.end()) return mem->second.has_value();
    auto found = table_lookup(key);
    if (!found.ok()) return false;
    return found->has_value();
}

Result<std::uint64_t> LsmDb::length(std::string_view key) {
    auto v = get(key);
    if (!v.ok()) return v.status();
    return static_cast<std::uint64_t>(v->size());
}

Status LsmDb::scan(std::string_view after, std::string_view prefix, bool with_values,
                   const ScanFn& fn) {
    (void)with_values;  // values come along for free in this implementation
    std::shared_lock lock(mutex_);
    ++stats_.scans;

    const bool start_at_prefix = !prefix.empty() && after < prefix;

    // Source 0: memtable. Sources 1..: tables, ordered newest-first so the
    // lowest source index always holds the most recent version of a key.
    auto mem_it = start_at_prefix ? memtable_.lower_bound(prefix) : memtable_.upper_bound(after);

    std::vector<SstReader::Iterator> its;
    for (std::size_t i = levels_[0].readers.size(); i-- > 0;) {
        its.push_back(levels_[0].readers[i]->make_iterator());
    }
    for (std::size_t li = 1; li < levels_.size(); ++li) {
        for (const auto& r : levels_[li].readers) its.push_back(r->make_iterator());
    }
    for (auto& it : its) {
        Status st = start_at_prefix ? it.seek_geq(prefix) : it.seek_after(after);
        if (!st.ok()) return st;
    }

    auto prefix_matches = [&](std::string_view key) {
        return prefix.empty() ||
               (key.size() >= prefix.size() && key.compare(0, prefix.size(), prefix) == 0);
    };

    while (true) {
        // Smallest key across memtable + table iterators.
        const std::string* mem_key =
            mem_it != memtable_.end() ? &mem_it->first : nullptr;
        std::string_view best;
        bool have_best = false;
        if (mem_key) {
            best = *mem_key;
            have_best = true;
        }
        for (auto& it : its) {
            if (it.valid() && (!have_best || it.key() < best)) {
                best = it.key();
                have_best = true;
            }
        }
        if (!have_best) break;
        if (!prefix_matches(best) && best > prefix) break;  // past the prefix range

        // Resolve winner: memtable first, then newest table.
        bool emitted_handled = false;
        bool keep_going = true;
        const std::string key(best);
        if (mem_key && *mem_key == key) {
            if (mem_it->second.has_value() && prefix_matches(key)) {
                keep_going = fn(key, mem_it->second->sv());
            }
            emitted_handled = true;
            ++mem_it;
        }
        for (auto& it : its) {
            if (it.valid() && it.key() == key) {
                if (!emitted_handled) {
                    if (!it.is_tombstone() && prefix_matches(key)) {
                        keep_going = fn(key, it.value());
                    }
                    emitted_handled = true;
                }
                Status st = it.next();
                if (!st.ok()) return st;
            }
        }
        if (!keep_going) break;
    }
    return Status::OK();
}

std::uint64_t LsmDb::size() const {
    // Exact but O(n): merge-count live keys. Documented as approximate in the
    // interface; rockslite chooses correctness over speed here.
    std::uint64_t count = 0;
    const_cast<LsmDb*>(this)->scan({}, {}, false, [&](std::string_view, std::string_view) {
        ++count;
        return true;
    });
    return count;
}

BackendStats LsmDb::stats() const {
    std::shared_lock lock(mutex_);
    return stats_;
}

LsmStats LsmDb::lsm_stats() const {
    std::shared_lock lock(mutex_);
    LsmStats out = lsm_stats_;
    out.cache_hits = cache_->hits();
    out.cache_misses = cache_->misses();
    out.files_per_level.clear();
    for (const auto& l : levels_) out.files_per_level.push_back(l.tables.size());
    return out;
}

}  // namespace hep::yokan::lsm

#include "yokan/lsm/lsm_db.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <limits>
#include <set>

#include "common/logging.hpp"

namespace fs = std::filesystem;

namespace hep::yokan::lsm {

namespace {
constexpr const char* kLegacyWalName = "wal.log";
constexpr std::size_t kNoLevel = std::numeric_limits<std::size_t>::max();

/// MVCC stamp prefix on SSTable values (format-2 tables): seq u64 + epoch
/// u32, little-endian. Tombstones carry no stamp (their seq only matters for
/// manifest last_seq accounting, done at flush time).
constexpr std::size_t kStampBytes = 12;

std::string wrap_stamped(const Stamp& stamp, std::string_view value) {
    std::string out;
    out.reserve(kStampBytes + value.size());
    out.append(reinterpret_cast<const char*>(&stamp.seq), 8);
    out.append(reinterpret_cast<const char*>(&stamp.epoch), 4);
    out.append(value);
    return out;
}

/// Strips the stamp prefix off `value` in place and returns it; pre-format-2
/// tables (has_meta false) read as stamp (0, 0).
Stamp unwrap_stamp(std::string_view& value, bool has_meta) {
    Stamp stamp;
    if (has_meta && value.size() >= kStampBytes) {
        std::memcpy(&stamp.seq, value.data(), 8);
        std::memcpy(&stamp.epoch, value.data() + 8, 4);
        value.remove_prefix(kStampBytes);
    }
    return stamp;
}
}  // namespace

std::uint64_t LsmDb::Version::level_bytes(std::size_t li) const {
    std::uint64_t b = 0;
    for (const auto& t : levels[li]) b += t.meta.bytes;
    return b;
}

LsmDb::LsmDb(LsmOptions options) : options_(std::move(options)) {
    cache_ = std::make_shared<BlockCache>(options_.block_cache_bytes,
                                          options_.compressed_cache_bytes);
    active_.store(make_memtable(), std::memory_order_relaxed);
    auto v = std::make_shared<Version>();
    v->levels.resize(options_.max_levels);
    current_ = std::move(v);
}

LsmDb::~LsmDb() {
    if (worker_) {
        {
            abt::LockGuard g(coord_mutex_);
            stop_ = true;
            work_cv_.notify_all();
            idle_cv_.notify_all();
        }
        worker_->join();
        worker_.reset();
    }
    own_xstream_.reset();
    // Best-effort durability on clean shutdown; unflushed memtables are
    // covered by their WAL segments.
    std::lock_guard wl(write_mutex_);
    (void)wal_.sync();
}

std::shared_ptr<LsmDb::MemTable> LsmDb::make_memtable() const {
    auto mt = std::make_shared<MemTable>();
    mt->rep = make_memtable_rep(options_.memtable, options_.arena_block_bytes,
                                static_cast<int>(options_.skiplist_max_height));
    return mt;
}

hep::BufferView LsmDb::anchor_entry(const std::shared_ptr<const MemTable>& mem,
                                    std::string_view bytes) {
    // Aliasing shared_ptr: the view's owner handle keeps the whole memtable
    // (and its arena, where `bytes` lives) alive for as long as the view does.
    return hep::BufferView(bytes.data(), bytes.size(),
                           std::shared_ptr<std::string>(mem, &mem->anchor_tag));
}

std::string LsmDb::table_path(std::uint64_t file_number) const {
    return options_.path + "/" + std::to_string(file_number) + ".sst";
}

std::string LsmDb::wal_segment_path(std::uint64_t seq) const {
    char buf[32];
    std::snprintf(buf, sizeof buf, "wal.%06llu.log", static_cast<unsigned long long>(seq));
    return options_.path + "/" + buf;
}

Result<std::unique_ptr<LsmDb>> LsmDb::open(LsmOptions options) {
    std::error_code ec;
    fs::create_directories(options.path, ec);
    if (ec) return Status::IOError("cannot create " + options.path + ": " + ec.message());

    auto db = std::unique_ptr<LsmDb>(new LsmDb(std::move(options)));
    Status st = db->load_manifest();
    if (!st.ok()) return st;
    st = db->remove_orphan_tables();
    if (!st.ok()) return st;
    st = db->recover_wal();
    if (!st.ok()) return st;
    // Rebuild the published-epoch set from the durable publish markers
    // (tables and replayed WAL records alike).
    st = db->scan(std::string_view{}, kPublishMarkerPrefix, /*with_values=*/false,
                  [&](std::string_view key, std::string_view) {
                      if (const std::uint32_t epoch = parse_publish_marker(key)) {
                          db->observe_marker(epoch);
                      }
                      return true;
                  });
    if (!st.ok()) return st;
    db->start_worker();
    return db;
}

Status LsmDb::load_manifest() {
    versions_ = std::make_unique<VersionSet>(options_.path, options_.max_levels,
                                             options_.crash_hook);
    Status st = versions_->recover();
    if (!st.ok()) return st;
    const ManifestState& ms = versions_->state();
    next_file_number_.store(std::max<std::uint64_t>(1, ms.next_file_number));
    // The seq ceiling of flushed data. WAL replay re-stamps every unflushed
    // record deterministically from here.
    last_flushed_seq_.store(ms.last_seq, std::memory_order_relaxed);
    seq_source().advance_to(ms.last_seq);

    auto nv = std::make_shared<Version>();
    nv->levels.resize(options_.max_levels);
    for (std::size_t li = 0; li < ms.levels.size() && li < nv->levels.size(); ++li) {
        for (const TableMeta& meta : ms.levels[li]) {
            auto reader = open_table(meta);
            if (!reader.ok()) return reader.status();
            nv->levels[li].push_back({meta, std::move(reader.value())});
        }
    }
    std::lock_guard vl(version_mutex_);
    current_ = std::move(nv);
    return Status::OK();
}

Status LsmDb::remove_orphan_tables() {
    // SSTables on disk but absent from the manifest are leftovers of a flush
    // or compaction that crashed before its edit committed; the WAL (resp.
    // the input tables) still holds their data, so they are garbage.
    std::set<std::uint64_t> live;
    for (const auto& level : versions_->state().levels) {
        for (const TableMeta& meta : level) live.insert(meta.file_number);
    }
    std::error_code ec;
    for (const auto& e : fs::directory_iterator(options_.path, ec)) {
        const std::string name = e.path().filename().string();
        if (name.size() <= 4 || name.compare(name.size() - 4, 4, ".sst") != 0) continue;
        const std::string digits = name.substr(0, name.size() - 4);
        if (digits.empty() || digits.find_first_not_of("0123456789") != std::string::npos) {
            continue;
        }
        const std::uint64_t fn = std::strtoull(digits.c_str(), nullptr, 10);
        if (live.count(fn)) continue;
        HEP_LOG_INFO("lsm %s: removing orphan table %s", options_.path.c_str(), name.c_str());
        std::error_code rec;
        fs::remove(e.path(), rec);
    }
    return Status::OK();
}

Status LsmDb::open_wal_segment() {
    return wal_.open(wal_segment_path(wal_seq_));
}

Status LsmDb::recover_wal() {
    // Replay the legacy single log (pre-segmentation layout) first, then
    // every wal.NNNNNN.log segment in sequence order: last writer wins, and
    // segments are strictly newer than any legacy log. Segments below the
    // manifest's wal_floor are already in an SSTable — they are skipped (and
    // unlinked), so no record is ever double-replayed and the re-derived
    // stamps match the pre-crash ones exactly.
    auto mem = active_.load(std::memory_order_relaxed);
    auto apply = [&](Wal::RecordType type, std::string_view key, std::string_view value) {
        const std::uint64_t seq = seq_source().next();
        if (type == Wal::RecordType::kDelete) {
            mem->rep->insert(key, {}, Stamp{seq, 0}, /*tombstone=*/true);
            mem->bytes.fetch_add(key.size() + 32, std::memory_order_relaxed);
            return;
        }
        std::uint32_t epoch = 0;
        if (type == Wal::RecordType::kPutEpoch) {
            std::memcpy(&epoch, value.data(), 4);
            value.remove_prefix(4);
        }
        mem->rep->insert(key, value, Stamp{seq, epoch}, /*tombstone=*/false);
        mem->bytes.fetch_add(key.size() + value.size() + 32, std::memory_order_relaxed);
    };

    const std::uint64_t floor = versions_->state().wal_floor;
    std::uint64_t total = 0;
    const std::string legacy = options_.path + "/" + kLegacyWalName;
    if (fs::exists(legacy)) {
        if (floor == 0) {  // the legacy log is segment 0
            auto replayed = Wal::replay(legacy, apply);
            if (!replayed.ok()) return replayed.status();
            total += *replayed;
            mem->wal_segments.push_back(legacy);
        } else {
            std::error_code ec;
            fs::remove(legacy, ec);
        }
    }

    std::vector<std::pair<std::uint64_t, std::string>> segments;
    std::error_code ec;
    for (const auto& e : fs::directory_iterator(options_.path, ec)) {
        const std::string name = e.path().filename().string();
        if (name.size() <= 8 || name.rfind("wal.", 0) != 0 ||
            name.compare(name.size() - 4, 4, ".log") != 0 || name == kLegacyWalName) {
            continue;
        }
        const std::string digits = name.substr(4, name.size() - 8);
        if (digits.empty() || digits.find_first_not_of("0123456789") != std::string::npos) {
            continue;
        }
        segments.emplace_back(std::strtoull(digits.c_str(), nullptr, 10), e.path().string());
    }
    std::sort(segments.begin(), segments.end());
    for (const auto& [seq, path] : segments) {
        wal_seq_ = std::max(wal_seq_, seq);
        if (seq < floor) {  // flushed before the crash; retirement unfinished
            std::error_code rec;
            fs::remove(path, rec);
            continue;
        }
        auto replayed = Wal::replay(path, apply);
        if (!replayed.ok()) return replayed.status();
        total += *replayed;
        mem->wal_segments.push_back(path);
        mem->max_wal_segment = std::max(mem->max_wal_segment, seq);
    }
    if (total > 0) {
        HEP_LOG_INFO("lsm %s: replayed %llu WAL records", options_.path.c_str(),
                     static_cast<unsigned long long>(total));
    }

    ++wal_seq_;
    Status st = open_wal_segment();
    if (!st.ok()) return st;

    // If replay overfilled the memtable, flush inline before serving traffic
    // (the worker is not running yet).
    if (mem->bytes.load(std::memory_order_relaxed) >= options_.memtable_bytes) {
        {
            std::lock_guard wl(write_mutex_);
            st = seal_active();
            if (!st.ok()) return st;
        }
        st = drain_work(/*background=*/false);
        if (!st.ok()) return st;
    }
    return Status::OK();
}

Result<std::shared_ptr<SstReader>> LsmDb::open_table(const TableMeta& meta) const {
    return SstReader::open(table_path(meta.file_number), meta.file_number, cache_);
}

std::shared_ptr<const LsmDb::Version> LsmDb::snapshot_version() const {
    std::lock_guard vl(version_mutex_);
    return current_;
}

// ------------------------------------------------------------ worker plumbing

void LsmDb::start_worker() {
    if (!options_.background_compaction) return;
    if (options_.compaction_pool) {
        worker_pool_ = options_.compaction_pool;
    } else {
        worker_pool_ = abt::Pool::create("lsm-compaction");
        own_xstream_ = abt::Xstream::create({worker_pool_}, "lsm-compaction");
    }
    worker_ = abt::Ult::create(worker_pool_, [this] { worker_loop(); });
}

void LsmDb::signal_work() {
    abt::LockGuard g(coord_mutex_);
    work_pending_ = true;
    work_cv_.notify_one();
}

void LsmDb::notify_installed() {
    abt::LockGuard g(coord_mutex_);
    idle_cv_.notify_all();
}

void LsmDb::worker_loop() {
    while (true) {
        {
            abt::LockGuard g(coord_mutex_);
            while (!work_pending_ && !stop_) work_cv_.wait(coord_mutex_);
            if (stop_) break;  // unflushed memtables stay WAL-covered
            work_pending_ = false;
            worker_busy_ = true;
        }
        Status st = drain_work(/*background=*/true);
        if (!st.ok()) set_background_error(st);
        {
            abt::LockGuard g(coord_mutex_);
            worker_busy_ = false;
            idle_cv_.notify_all();
        }
    }
}

void LsmDb::set_background_error(const Status& st) {
    std::lock_guard g(err_mutex_);
    if (bg_error_.ok()) bg_error_ = st;
    bg_error_set_.store(true, std::memory_order_release);
}

Status LsmDb::background_error() const {
    if (!bg_error_set_.load(std::memory_order_acquire)) return Status::OK();
    std::lock_guard g(err_mutex_);
    return bg_error_;
}

std::size_t LsmDb::compaction_candidate(const Version& v) const {
    if (!v.levels.empty() && v.levels[0].size() >= options_.l0_compaction_trigger) return 0;
    std::uint64_t budget = options_.level_base_bytes;
    for (std::size_t i = 1; i + 1 < v.levels.size(); ++i) {
        if (v.level_bytes(i) > budget) return i;
        budget *= options_.level_multiplier;
    }
    return kNoLevel;
}

Status LsmDb::drain_work(bool background) {
    abt::LockGuard serial(work_serial_);
    compaction_running_.store(true, std::memory_order_relaxed);
    Status st;
    while (st.ok()) {
        auto v = snapshot_version();
        if (!v->imm.empty()) {
            st = flush_oldest_imm();
            if (st.ok()) notify_installed();
            continue;
        }
        const std::size_t lvl = compaction_candidate(*v);
        if (lvl == kNoLevel) break;
        st = compact_level(lvl);
        if (st.ok()) {
            {
                std::lock_guard g(stats_mutex_);
                ++lsm_stats_.compactions;
                if (background) ++lsm_stats_.compactions_background;
                else ++lsm_stats_.compactions_inline;
            }
            notify_installed();
        }
    }
    compaction_running_.store(false, std::memory_order_relaxed);
    return st;
}

Status LsmDb::flush_oldest_imm() {
    auto v = snapshot_version();
    if (v->imm.empty()) return Status::OK();
    // seal prepends at the front; the worker (sole remover) drains the back.
    std::shared_ptr<const MemTable> victim = v->imm.back();

    std::optional<TableHandle> handle;
    std::uint64_t max_seq = last_flushed_seq_.load(std::memory_order_relaxed);
    if (victim->rep->count() > 0) {
        const std::uint64_t fn = next_file_number_.fetch_add(1);
        SstWriter writer(table_path(fn), fn, options_.block_bytes, victim->rep->count(),
                         compress_blocks());
        auto cur = victim->rep->cursor();
        for (cur->seek_first(); cur->valid(); cur->next()) {
            const MemEntry e = cur->entry();
            max_seq = std::max(max_seq, e.stamp.seq);
            Status st = e.tombstone ? writer.add(cur->key(), {}, true)
                                    : writer.add(cur->key(), wrap_stamped(e.stamp, e.value));
            if (!st.ok()) return st;
        }
        auto meta = writer.finish();
        if (!meta.ok()) return meta.status();
        meta->has_meta = true;
        auto reader = open_table(*meta);
        if (!reader.ok()) return reader.status();
        handle.emplace(TableHandle{std::move(meta.value()), std::move(reader.value())});
    }
    last_flushed_seq_.store(max_seq, std::memory_order_relaxed);
    hook("flush:table_written");

    // One durable manifest edit makes the flush atomic: the table enters the
    // level set, last_seq rises, and the memtable's WAL segments retire (any
    // segment below wal_floor is never replayed again).
    VersionEdit edit;
    edit.next_file_number = next_file_number_.load();
    edit.last_seq = max_seq;
    edit.wal_floor = victim->max_wal_segment + 1;
    if (handle) edit.added.emplace_back(0u, handle->meta);
    Status st = versions_->log_and_apply(edit);
    if (!st.ok()) return st;
    hook("flush:manifest_logged");

    {
        std::lock_guard vl(version_mutex_);
        auto nv = std::make_shared<Version>(*current_);
        nv->imm.pop_back();
        if (handle) nv->levels[0].push_back(std::move(*handle));  // newest last
        current_ = std::move(nv);
    }
    {
        std::lock_guard g(stats_mutex_);
        ++lsm_stats_.flushes;
        if (handle) ++lsm_stats_.sst_files_written;
    }
    // The memtable is on disk; its log segments are no longer needed.
    for (const auto& seg : victim->wal_segments) {
        std::error_code ec;
        fs::remove(seg, ec);
    }
    hook("flush:wal_retired");
    return Status::OK();
}

namespace {

/// Merge source over an SSTable iterator with a recency priority:
/// lower `prio` wins for equal keys.
struct MergeSource {
    SstReader::Iterator it;
    std::size_t prio;
    bool has_meta;  // source values carry the stamp prefix
};

bool ranges_overlap(const TableMeta& a, std::string_view min_key, std::string_view max_key) {
    return !(std::string_view(a.max_key) < min_key || max_key < std::string_view(a.min_key));
}

}  // namespace

Status LsmDb::compact_level(std::size_t level) {
    // Levels are only mutated under work_serial_, so this copy is the truth;
    // concurrent seals/flushes only touch the imm queue and L0 appends are
    // re-merged at publish time.
    auto base = snapshot_version();
    std::vector<std::vector<TableHandle>> levels = base->levels;
    const std::size_t target = level + 1;
    if (target >= levels.size()) return Status::OK();

    std::vector<std::size_t> src_idx;
    if (level == 0) {
        for (std::size_t i = 0; i < levels[0].size(); ++i) src_idx.push_back(i);
    } else if (!levels[level].empty()) {
        src_idx.push_back(0);  // oldest-first keeps levels rolling forward
    }
    if (src_idx.empty()) return Status::OK();

    std::string min_key = levels[level][src_idx[0]].meta.min_key;
    std::string max_key = levels[level][src_idx[0]].meta.max_key;
    for (std::size_t i : src_idx) {
        min_key = std::min(min_key, levels[level][i].meta.min_key);
        max_key = std::max(max_key, levels[level][i].meta.max_key);
    }

    std::vector<std::size_t> dst_idx;
    for (std::size_t i = 0; i < levels[target].size(); ++i) {
        if (ranges_overlap(levels[target][i].meta, min_key, max_key)) dst_idx.push_back(i);
    }

    // Tombstones may be dropped only if no key version can exist deeper.
    bool deeper_empty = true;
    for (std::size_t d = target + 1; d < levels.size(); ++d) {
        if (!levels[d].empty()) deeper_empty = false;
    }

    // Build merge sources; lower prio wins. L0 newest (highest index) is the
    // most recent version; target-level tables are oldest.
    std::vector<MergeSource> sources;
    std::uint64_t input_entries = 0;
    if (level == 0) {
        for (auto rit = src_idx.rbegin(); rit != src_idx.rend(); ++rit) {
            sources.push_back({levels[0][*rit].reader->make_iterator(), sources.size(),
                               levels[0][*rit].meta.has_meta});
            input_entries += levels[0][*rit].meta.entries;
        }
    } else {
        for (std::size_t i : src_idx) {
            sources.push_back({levels[level][i].reader->make_iterator(), sources.size(),
                               levels[level][i].meta.has_meta});
            input_entries += levels[level][i].meta.entries;
        }
    }
    for (std::size_t i : dst_idx) {
        sources.push_back({levels[target][i].reader->make_iterator(), sources.size(),
                           levels[target][i].meta.has_meta});
        input_entries += levels[target][i].meta.entries;
    }
    for (auto& s : sources) {
        Status st = s.it.seek_after(std::string_view{});  // from the beginning
        if (!st.ok()) return st;
    }

    // Merge into new target-level tables.
    std::vector<TableMeta> outputs;
    std::optional<SstWriter> writer;
    std::size_t out_bytes_estimate = 0;
    auto open_writer = [&]() {
        const std::uint64_t fn = next_file_number_.fetch_add(1);
        writer.emplace(table_path(fn), fn, options_.block_bytes,
                       std::max<std::size_t>(16, input_entries), compress_blocks());
        out_bytes_estimate = 0;
    };
    auto close_writer = [&]() -> Status {
        if (!writer) return Status::OK();
        auto meta = writer->finish();
        if (!meta.ok()) return meta.status();
        meta->has_meta = true;  // outputs are always stamp-prefixed
        // Drop empty output tables.
        if (meta->entries > 0) outputs.push_back(std::move(meta.value()));
        else fs::remove(table_path(meta->file_number));
        writer.reset();
        return Status::OK();
    };

    while (true) {
        // Smallest current key across sources; ties won by lowest prio.
        const MergeSource* best = nullptr;
        for (const auto& s : sources) {
            if (!s.it.valid()) continue;
            if (!best || s.it.key() < best->it.key() ||
                (s.it.key() == best->it.key() && s.prio < best->prio)) {
                best = &s;
            }
        }
        if (!best) break;
        const std::string key(best->it.key());
        std::string value(best->it.value());
        const bool tombstone = best->it.is_tombstone();
        // Legacy (pre-stamp) sources get a zero stamp prepended so every
        // output value uses the format-2 layout.
        if (!tombstone && !best->has_meta) value.insert(0, kStampBytes, '\0');
        // Advance every source positioned at this key.
        for (auto& s : sources) {
            while (s.it.valid() && s.it.key() == key) {
                Status st = s.it.next();
                if (!st.ok()) return st;
            }
        }
        if (tombstone && deeper_empty) continue;  // fully reclaim
        if (!writer) open_writer();
        Status st = writer->add(key, value, tombstone);
        if (!st.ok()) return st;
        out_bytes_estimate += key.size() + value.size() + 8;
        if (out_bytes_estimate >= options_.target_file_bytes) {
            st = close_writer();
            if (!st.ok()) return st;
        }
    }
    Status st = close_writer();
    if (!st.ok()) return st;
    hook("compact:tables_written");

    // Remove inputs from the working copy; their files are only unlinked
    // after the new version (without them) is published, so readers pinning
    // an old version keep valid open handles (POSIX unlink semantics).
    VersionEdit edit;
    edit.next_file_number = next_file_number_.load();
    std::vector<std::string> doomed;
    auto remove_tables = [&](std::size_t li, std::vector<TableHandle>& lvl,
                             const std::vector<std::size_t>& idx) {
        for (auto rit = idx.rbegin(); rit != idx.rend(); ++rit) {
            doomed.push_back(table_path(lvl[*rit].meta.file_number));
            edit.deleted.emplace_back(static_cast<std::uint32_t>(li),
                                      lvl[*rit].meta.file_number);
            lvl.erase(lvl.begin() + static_cast<std::ptrdiff_t>(*rit));
        }
    };
    remove_tables(level, levels[level], src_idx);
    remove_tables(target, levels[target], dst_idx);

    for (auto& meta : outputs) {
        edit.added.emplace_back(static_cast<std::uint32_t>(target), meta);
        auto reader = open_table(meta);
        if (!reader.ok()) return reader.status();
        // Insert sorted by min_key (levels >= 1 are non-overlapping).
        auto pos = std::lower_bound(
            levels[target].begin(), levels[target].end(), meta,
            [](const TableHandle& a, const TableMeta& b) { return a.meta.min_key < b.min_key; });
        levels[target].insert(pos, {std::move(meta), std::move(reader.value())});
    }

    // The edit commits the whole compaction atomically: recovery sees either
    // the inputs or the outputs, never both.
    st = versions_->log_and_apply(edit);
    if (!st.ok()) return st;
    hook("compact:manifest_logged");

    {
        std::lock_guard vl(version_mutex_);
        auto nv = std::make_shared<Version>(*current_);  // picks up fresh seals
        nv->levels = std::move(levels);
        current_ = std::move(nv);
    }
    {
        std::lock_guard g(stats_mutex_);
        lsm_stats_.sst_files_written += outputs.size();
    }
    for (const auto& p : doomed) {
        std::error_code ec;
        fs::remove(p, ec);
    }
    return Status::OK();
}

// ------------------------------------------------------------------ writes

Status LsmDb::put(std::string_view key, std::string_view value, bool overwrite) {
    // The memtable rep copies the bytes into its arena; a non-owning view is
    // enough (write_impl consumes it synchronously).
    return put_stamped(key, hep::BufferView(value), overwrite, 0);
}

Status LsmDb::put_view(std::string_view key, hep::BufferView value, bool overwrite) {
    return put_stamped(key, std::move(value), overwrite, 0);
}

Status LsmDb::put_stamped(std::string_view key, hep::BufferView value, bool overwrite,
                          std::uint32_t epoch) {
    {
        std::lock_guard g(stats_mutex_);
        ++stats_.puts;
    }
    Status st = write_impl(key, std::move(value), overwrite, /*is_erase=*/false, epoch);
    if (st.ok()) {
        if (const std::uint32_t published = parse_publish_marker(key)) {
            observe_marker(published);
        }
    }
    return st;
}

Status LsmDb::erase(std::string_view key) {
    {
        std::lock_guard g(stats_mutex_);
        ++stats_.erases;
    }
    // Tombstones grow the memtable too: erase goes through the same seal /
    // backpressure path as put so delete-heavy workloads still flush.
    return write_impl(key, std::nullopt, /*overwrite=*/true, /*is_erase=*/true, 0);
}

bool LsmDb::key_present(std::string_view key) const {
    // Lock-free probe; see the ordering note in seal_active().
    auto mem = active_.load(std::memory_order_acquire);
    MemEntry e;
    if (mem->rep->get(key, e)) return !e.tombstone;
    auto ver = snapshot_version();
    for (const auto& m : ver->imm) {
        if (m->rep->get(key, e)) return !e.tombstone;
    }
    auto found = table_lookup(*ver, key);
    return found.ok() && found->value.has_value();
}

void LsmDb::maybe_stall() {
    auto over_stop = [&](const Version& v) {
        return v.imm.size() >= options_.max_immutable_memtables ||
               (!v.levels.empty() && v.levels[0].size() >= options_.l0_stop_trigger);
    };
    auto v = snapshot_version();
    if (over_stop(*v)) {
        const auto t0 = std::chrono::steady_clock::now();
        {
            abt::LockGuard g(coord_mutex_);
            while (!stop_ && background_error().ok()) {
                auto cur = snapshot_version();
                if (!over_stop(*cur)) break;
                work_pending_ = true;
                work_cv_.notify_one();
                idle_cv_.wait(coord_mutex_);
            }
        }
        const auto dt = std::chrono::steady_clock::now() - t0;
        std::lock_guard g(stats_mutex_);
        ++lsm_stats_.write_stalls;
        lsm_stats_.write_stall_micros += static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(dt).count());
    } else if (!v->levels.empty() && v->levels[0].size() >= options_.l0_slowdown_trigger) {
        {
            std::lock_guard g(stats_mutex_);
            ++lsm_stats_.write_slowdowns;
        }
        abt::yield();  // one scheduling quantum of grace for the worker
    }
}

Status LsmDb::write_impl(std::string_view key, std::optional<hep::BufferView> value,
                         bool overwrite, bool is_erase, std::uint32_t epoch) {
    Status bg = background_error();
    if (!bg.ok()) return bg;
    if (options_.background_compaction) maybe_stall();

    bool sealed = false;
    std::uint64_t my_seq = 0;
    {
        std::lock_guard wl(write_mutex_);
        if (is_erase || !overwrite) {
            const bool present = key_present(key);
            // Contract (matches the map backend): erasing a missing key is
            // NotFound; "create" semantics make an existing key AlreadyExists.
            if (is_erase && !present) return Status::NotFound(std::string(key));
            if (!is_erase && present) return Status::AlreadyExists(std::string(key));
        }
        Status st = is_erase ? wal_.append_delete(key)
                    : epoch == 0
                        ? wal_.append_put(key, value->sv())
                        : wal_.append_put_epoch(key, value->sv(), epoch);
        if (!st.ok()) return st;
        my_seq = append_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
        // MVCC seq drawn under write_mutex_: memtable stamp order equals WAL
        // append order, which is what recovery's re-stamping relies on.
        const Stamp stamp{seq_source().next(), is_erase ? 0 : epoch};
        auto mem = active_.load(std::memory_order_relaxed);  // writer-owned
        mem->bytes.fetch_add(key.size() + (value ? value->size() : 0) + 32,
                             std::memory_order_relaxed);
        mem->rep->insert(key, value ? value->sv() : std::string_view{}, stamp, is_erase);
        if (mem->bytes.load(std::memory_order_relaxed) >= options_.memtable_bytes) {
            st = seal_active();
            if (!st.ok()) return st;
            sealed = true;
        }
        if (options_.wal_sync_every_put && !options_.group_commit && !sealed) {
            st = wal_.sync();
            if (!st.ok()) return st;
        }
    }
    // The sync happens outside every lock the read/insert paths use; under
    // group commit a single leader flushes for the whole batch.
    if (options_.wal_sync_every_put && options_.group_commit) {
        Status st = group_sync(my_seq);
        if (!st.ok()) return st;
    }
    if (sealed) {
        if (options_.background_compaction) {
            signal_work();
        } else {
            Status st = drain_work(/*background=*/false);
            if (!st.ok()) return st;
        }
    }
    return Status::OK();
}

Status LsmDb::seal_active() {
    auto mem = active_.load(std::memory_order_relaxed);  // writer-owned
    // Rotate the WAL: closing the segment flushes the sealed memtable's
    // records, so this doubles as a group commit for everything appended.
    wal_.close();
    mem->wal_segments.push_back(wal_segment_path(wal_seq_));
    mem->max_wal_segment = std::max(mem->max_wal_segment, wal_seq_);
    {
        std::lock_guard sl(sync_mutex_);
        const std::uint64_t appended = append_seq_.load(std::memory_order_relaxed);
        if (appended > synced_seq_) synced_seq_ = appended;
    }
    ++wal_seq_;
    Status st = open_wal_segment();
    if (!st.ok()) return st;

    // Ordering contract with the lock-free read path: the Version carrying
    // this memtable on its imm queue is published BEFORE the active pointer
    // swaps, so a reader that misses in the new (empty) active always finds
    // the sealed one in the version it snapshots afterwards.
    {
        std::lock_guard vl(version_mutex_);
        auto nv = std::make_shared<Version>(*current_);
        nv->imm.insert(nv->imm.begin(), mem);  // newest first
        current_ = std::move(nv);
    }
    active_.store(make_memtable(), std::memory_order_release);
    return Status::OK();
}

Status LsmDb::group_sync(std::uint64_t my_seq) {
    while (true) {
        std::shared_ptr<abt::Eventual<bool>> batch;
        {
            std::unique_lock sl(sync_mutex_);
            if (synced_seq_ >= my_seq) return last_sync_status_;
            if (!sync_leader_active_) {
                sync_leader_active_ = true;
                sl.unlock();
                // Leader: one flush covers every record appended so far.
                std::uint64_t target = 0;
                Status st;
                {
                    std::lock_guard wl(write_mutex_);
                    target = append_seq_.load(std::memory_order_relaxed);
                    st = wal_.sync();
                }
                std::shared_ptr<abt::Eventual<bool>> done;
                std::uint64_t covered = 0;
                {
                    std::lock_guard sl2(sync_mutex_);
                    sync_leader_active_ = false;
                    if (target > synced_seq_) {
                        covered = target - synced_seq_;
                        synced_seq_ = target;
                    }
                    last_sync_status_ = st;
                    done = std::move(pending_batch_);
                    pending_batch_.reset();
                }
                {
                    std::lock_guard g(stats_mutex_);
                    ++lsm_stats_.group_commit_syncs;
                    lsm_stats_.group_commit_records += covered;
                }
                if (done) done->set(true);
                continue;  // re-check: our own seq is covered now
            }
            // Follower: ride the next leader's flush.
            if (!pending_batch_) pending_batch_ = std::make_shared<abt::Eventual<bool>>();
            batch = pending_batch_;
        }
        batch->wait();
    }
}

Status LsmDb::flush() {
    Status bg = background_error();
    if (!bg.ok()) return bg;
    {
        std::lock_guard wl(write_mutex_);
        auto mem = active_.load(std::memory_order_relaxed);
        if (mem->rep->count() > 0) {
            Status st = seal_active();
            if (!st.ok()) return st;
        }
    }
    if (!options_.background_compaction) return drain_work(/*background=*/false);

    signal_work();
    abt::LockGuard g(coord_mutex_);
    while (true) {
        bg = background_error();
        if (!bg.ok()) return bg;
        if (!worker_busy_ && !work_pending_) {
            auto v = snapshot_version();
            if (v->imm.empty() && compaction_candidate(*v) == kNoLevel) break;
            work_pending_ = true;  // worker missed it or new work arrived
            work_cv_.notify_one();
        }
        idle_cv_.wait(coord_mutex_);
    }
    return Status::OK();
}

// ------------------------------------------------------------------- reads

Result<LsmDb::TableHit> LsmDb::table_lookup(const Version& v, std::string_view key) const {
    auto make_hit = [](std::optional<std::string> raw, bool has_meta) {
        TableHit hit;
        if (raw.has_value()) {
            if (has_meta && raw->size() >= kStampBytes) {
                std::memcpy(&hit.stamp.seq, raw->data(), 8);
                std::memcpy(&hit.stamp.epoch, raw->data() + 8, 4);
                raw->erase(0, kStampBytes);
            }
            hit.value = std::move(raw);
        }
        return hit;
    };
    // L0: newest to oldest (later files shadow earlier ones).
    const auto& l0 = v.levels[0];
    for (std::size_t i = l0.size(); i-- > 0;) {
        const TableMeta& t = l0[i].meta;
        if (key < std::string_view(t.min_key) || std::string_view(t.max_key) < key) continue;
        auto r = l0[i].reader->get(key);
        if (r.ok()) return make_hit(std::move(r.value()), t.has_meta);  // value or tombstone
        if (r.status().code() != StatusCode::kNotFound) return r.status();
    }
    // Deeper levels: at most one candidate file per level.
    for (std::size_t li = 1; li < v.levels.size(); ++li) {
        const auto& lvl = v.levels[li];
        // First table with max_key >= key.
        std::size_t lo = 0, hi = lvl.size();
        while (lo < hi) {
            const std::size_t mid = (lo + hi) / 2;
            if (std::string_view(lvl[mid].meta.max_key) < key) lo = mid + 1;
            else hi = mid;
        }
        if (lo == lvl.size()) continue;
        if (key < std::string_view(lvl[lo].meta.min_key)) continue;
        auto r = lvl[lo].reader->get(key);
        if (r.ok()) return make_hit(std::move(r.value()), lvl[lo].meta.has_meta);
        if (r.status().code() != StatusCode::kNotFound) return r.status();
    }
    return Status::NotFound(std::string(key));
}

Result<std::string> LsmDb::get(std::string_view key) {
    {
        std::lock_guard g(stats_mutex_);
        ++stats_.gets;
        if (compaction_running_.load(std::memory_order_relaxed)) {
            ++lsm_stats_.reads_during_compaction;
        }
    }
    // Lock-free active probe: the skiplist tolerates concurrent inserts, and
    // seal ordering guarantees any memtable this load misses is reachable
    // through the version snapshot taken next.
    auto mem = active_.load(std::memory_order_acquire);
    MemEntry e;
    if (mem->rep->get(key, e)) {
        if (e.tombstone) return Status::NotFound(std::string(key));
        hep::count_buffer_copy(e.value.size());
        return std::string(e.value);
    }
    auto ver = snapshot_version();
    for (const auto& m : ver->imm) {
        if (m->rep->get(key, e)) {
            if (e.tombstone) return Status::NotFound(std::string(key));
            hep::count_buffer_copy(e.value.size());
            return std::string(e.value);
        }
    }
    auto found = table_lookup(*ver, key);
    if (!found.ok()) return found.status();
    if (!found->value.has_value()) return Status::NotFound(std::string(key));
    return std::move(*found->value);
}

Result<hep::BufferView> LsmDb::get_view(std::string_view key) {
    {
        std::lock_guard g(stats_mutex_);
        ++stats_.gets;
        if (compaction_running_.load(std::memory_order_relaxed)) {
            ++lsm_stats_.reads_during_compaction;
        }
    }
    auto mem = active_.load(std::memory_order_acquire);
    MemEntry e;
    if (mem->rep->get(key, e)) {
        if (e.tombstone) return Status::NotFound(std::string(key));
        return anchor_entry(mem, e.value);  // zero-copy: pins the memtable
    }
    auto ver = snapshot_version();
    for (const auto& m : ver->imm) {
        if (m->rep->get(key, e)) {
            if (e.tombstone) return Status::NotFound(std::string(key));
            return anchor_entry(m, e.value);
        }
    }
    auto found = table_lookup(*ver, key);
    if (!found.ok()) return found.status();
    if (!found->value.has_value()) return Status::NotFound(std::string(key));
    // Table values materialize from disk/cache as a fresh string; adopt it.
    return hep::BufferView(hep::Buffer::adopt(std::move(*found->value)));
}

Result<std::pair<hep::BufferView, Stamp>> LsmDb::get_stamped(std::string_view key) {
    {
        std::lock_guard g(stats_mutex_);
        ++stats_.gets;
        if (compaction_running_.load(std::memory_order_relaxed)) {
            ++lsm_stats_.reads_during_compaction;
        }
    }
    auto mem = active_.load(std::memory_order_acquire);
    MemEntry e;
    if (mem->rep->get(key, e)) {
        if (e.tombstone) return Status::NotFound(std::string(key));
        return std::make_pair(anchor_entry(mem, e.value), e.stamp);
    }
    auto ver = snapshot_version();
    for (const auto& m : ver->imm) {
        if (m->rep->get(key, e)) {
            if (e.tombstone) return Status::NotFound(std::string(key));
            return std::make_pair(anchor_entry(m, e.value), e.stamp);
        }
    }
    auto found = table_lookup(*ver, key);
    if (!found.ok()) return found.status();
    if (!found->value.has_value()) return Status::NotFound(std::string(key));
    return std::make_pair(hep::BufferView(hep::Buffer::adopt(std::move(*found->value))),
                          found->stamp);
}

Result<bool> LsmDb::exists(std::string_view key) {
    {
        std::lock_guard g(stats_mutex_);
        ++stats_.gets;
    }
    return key_present(key);
}

Result<std::uint64_t> LsmDb::length(std::string_view key) {
    auto v = get(key);
    if (!v.ok()) return v.status();
    return static_cast<std::uint64_t>(v->size());
}

Status LsmDb::scan(std::string_view after, std::string_view prefix, bool with_values,
                   const ScanFn& fn) {
    return scan_stamped(after, prefix, with_values,
                        [&fn](std::string_view key, std::string_view value, const Stamp&) {
                            return fn(key, value);
                        });
}

Status LsmDb::scan_stamped(std::string_view after, std::string_view prefix, bool with_values,
                           const StampedScanFn& fn) {
    (void)with_values;  // values come along for free in this implementation
    {
        std::lock_guard g(stats_mutex_);
        ++stats_.scans;
        if (compaction_running_.load(std::memory_order_relaxed)) {
            ++lsm_stats_.reads_during_compaction;
        }
    }

    // Pin the active memtable, then a version snapshot. A racing seal either
    // happens after both loads (the pinned memtable stays reachable and keeps
    // absorbing inserts — the documented resume-after contract), or lands the
    // pinned memtable on the imm queue we merge anyway; duplicate sources
    // carry identical entries and the per-key dedup below collapses them.
    std::shared_ptr<const MemTable> mem = active_.load(std::memory_order_acquire);
    std::shared_ptr<const Version> ver = snapshot_version();

    const bool start_at_prefix = !prefix.empty() && after < prefix;

    // Cursor over the (possibly still live) active memtable. Rep cursors are
    // safe against concurrent inserts: keys inserted behind the cursor are
    // skipped, keys ahead may appear.
    auto mcur = mem->rep->cursor();
    if (start_at_prefix) mcur->seek_geq(prefix);
    else mcur->seek_gt(after);

    // Sealed memtables are frozen — plain cursors, newest first.
    std::vector<std::unique_ptr<MemTableRep::Cursor>> imms;
    imms.reserve(ver->imm.size());
    for (const auto& m : ver->imm) {
        auto c = m->rep->cursor();
        if (start_at_prefix) c->seek_geq(prefix);
        else c->seek_gt(after);
        imms.push_back(std::move(c));
    }

    // Table iterators, ordered newest-first so the lowest source index always
    // holds the most recent version of a key. Each remembers whether its table
    // carries MVCC stamp prefixes so values can be unwrapped on the fly.
    struct TableCursor {
        SstReader::Iterator it;
        bool has_meta;
    };
    std::vector<TableCursor> its;
    for (std::size_t i = ver->levels[0].size(); i-- > 0;) {
        its.push_back({ver->levels[0][i].reader->make_iterator(), ver->levels[0][i].meta.has_meta});
    }
    for (std::size_t li = 1; li < ver->levels.size(); ++li) {
        for (const auto& t : ver->levels[li]) {
            its.push_back({t.reader->make_iterator(), t.meta.has_meta});
        }
    }
    for (auto& c : its) {
        Status st = start_at_prefix ? c.it.seek_geq(prefix) : c.it.seek_after(after);
        if (!st.ok()) return st;
    }

    auto prefix_matches = [&](std::string_view key) {
        return prefix.empty() ||
               (key.size() >= prefix.size() && key.compare(0, prefix.size(), prefix) == 0);
    };

    while (true) {
        // Smallest key across the active cursor, imm cursors and tables.
        std::string_view best;
        bool have_best = false;
        if (mcur->valid()) {
            best = mcur->key();
            have_best = true;
        }
        for (const auto& c : imms) {
            if (c->valid() && (!have_best || c->key() < best)) {
                best = c->key();
                have_best = true;
            }
        }
        for (const auto& c : its) {
            if (c.it.valid() && (!have_best || c.it.key() < best)) {
                best = c.it.key();
                have_best = true;
            }
        }
        if (!have_best) break;
        if (!prefix_matches(best) && best > prefix) break;  // past the prefix range

        // Resolve winner: active memtable first, then newest imm, then
        // newest table. Advance every source positioned at this key.
        const std::string key(best);
        bool handled = false;
        bool keep_going = true;
        if (mcur->valid() && mcur->key() == key) {
            const MemEntry me = mcur->entry();
            if (!me.tombstone && prefix_matches(key)) {
                keep_going = fn(key, me.value, me.stamp);
            }
            handled = true;
            mcur->next();
        }
        for (auto& c : imms) {
            if (c->valid() && c->key() == key) {
                if (!handled) {
                    const MemEntry me = c->entry();
                    if (!me.tombstone && prefix_matches(key)) {
                        keep_going = fn(key, me.value, me.stamp);
                    }
                    handled = true;
                }
                c->next();
            }
        }
        for (auto& c : its) {
            if (c.it.valid() && c.it.key() == key) {
                if (!handled) {
                    if (!c.it.is_tombstone() && prefix_matches(key)) {
                        std::string_view tv = c.it.value();
                        const Stamp ts = unwrap_stamp(tv, c.has_meta);
                        keep_going = fn(key, tv, ts);
                    }
                    handled = true;
                }
                Status st = c.it.next();
                if (!st.ok()) return st;
            }
        }
        if (!keep_going) break;
    }
    return Status::OK();
}

std::uint64_t LsmDb::size() const {
    // Exact but O(n): merge-count live keys. Documented as approximate in the
    // interface; rockslite chooses correctness over speed here.
    std::uint64_t count = 0;
    const_cast<LsmDb*>(this)->scan({}, {}, false, [&](std::string_view, std::string_view) {
        ++count;
        return true;
    });
    return count;
}

// ------------------------------------------------------------------- stats

BackendStats LsmDb::stats() const {
    std::lock_guard g(stats_mutex_);
    return stats_;
}

LsmStats LsmDb::lsm_stats() const {
    LsmStats out;
    {
        std::lock_guard g(stats_mutex_);
        out = lsm_stats_;
    }
    const BlockCacheStats cs = cache_->stats();
    out.cache_hits = cs.decoded_hits + cs.compressed_hits;
    out.cache_misses = cs.misses;
    out.cache_compressed_hits = cs.compressed_hits;
    out.cache_decompressions = cs.decompressions;
    out.cache_disk_reads = cs.disk_reads;
    out.cache_disk_bytes_read = cs.disk_bytes_read;
    out.cache_evictions = cs.evictions;
    auto v = snapshot_version();
    out.immutable_queue_depth = v->imm.size();
    std::uint64_t backlog = 0;
    for (const auto& m : v->imm) backlog += m->bytes.load(std::memory_order_relaxed);
    if (!v->levels.empty()) backlog += v->level_bytes(0);
    out.compaction_backlog_bytes = backlog;
    out.files_per_level.clear();
    for (const auto& l : v->levels) out.files_per_level.push_back(l.size());
    return out;
}

json::Value LsmDb::stats_json() const {
    const LsmStats s = lsm_stats();
    const BackendStats b = stats();
    json::Value doc = json::Value::make_object();
    doc["puts"] = b.puts;
    doc["gets"] = b.gets;
    doc["scans"] = b.scans;
    doc["erases"] = b.erases;
    doc["flushes"] = s.flushes;
    doc["compactions"] = s.compactions;
    doc["compactions_background"] = s.compactions_background;
    doc["compactions_inline"] = s.compactions_inline;
    doc["sst_files_written"] = s.sst_files_written;
    doc["cache_hits"] = s.cache_hits;
    doc["cache_misses"] = s.cache_misses;
    doc["cache_compressed_hits"] = s.cache_compressed_hits;
    doc["cache_decompressions"] = s.cache_decompressions;
    doc["cache_disk_reads"] = s.cache_disk_reads;
    doc["cache_disk_bytes_read"] = s.cache_disk_bytes_read;
    doc["cache_evictions"] = s.cache_evictions;
    doc["write_stalls"] = s.write_stalls;
    doc["write_stall_micros"] = s.write_stall_micros;
    doc["write_slowdowns"] = s.write_slowdowns;
    doc["group_commit_syncs"] = s.group_commit_syncs;
    doc["group_commit_records"] = s.group_commit_records;
    doc["group_commit_batch_size"] =
        s.group_commit_syncs ? static_cast<double>(s.group_commit_records) /
                                   static_cast<double>(s.group_commit_syncs)
                             : 0.0;
    doc["reads_during_compaction"] = s.reads_during_compaction;
    doc["immutable_queue_depth"] = s.immutable_queue_depth;
    doc["compaction_backlog_bytes"] = s.compaction_backlog_bytes;
    json::Value fpl = json::Value::make_array();
    for (std::size_t n : s.files_per_level) fpl.push_back(static_cast<std::uint64_t>(n));
    doc["files_per_level"] = std::move(fpl);
    // Knob echo (satellite: per-db tuning must be observable via symbio).
    doc["memtable"] = options_.memtable;
    doc["block_compression"] = options_.block_compression;
    doc["block_cache_bytes"] = static_cast<std::uint64_t>(options_.block_cache_bytes);
    doc["compressed_cache_bytes"] = static_cast<std::uint64_t>(options_.compressed_cache_bytes);
    doc["arena_block_bytes"] = static_cast<std::uint64_t>(options_.arena_block_bytes);
    doc["skiplist_max_height"] = static_cast<std::uint64_t>(options_.skiplist_max_height);
    return doc;
}

}  // namespace hep::yokan::lsm

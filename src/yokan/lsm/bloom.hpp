// Bloom filter used by SSTables to skip files that cannot contain a key —
// the standard LSM read-amplification mitigation (RocksDB does the same).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/hash.hpp"

namespace hep::yokan::lsm {

class BloomFilter {
  public:
    /// Build an empty filter sized for `expected_keys` at ~1% FPR.
    explicit BloomFilter(std::size_t expected_keys = 0) {
        // ~10 bits/key, 7 hashes gives ~0.8% FPR.
        const std::size_t bits = std::max<std::size_t>(64, expected_keys * 10);
        bits_.assign((bits + 63) / 64, 0);
    }

    void insert(std::string_view key) {
        const auto [h1, h2] = hashes(key);
        for (std::uint32_t i = 0; i < kHashes; ++i) {
            set_bit((h1 + i * h2) % bit_count());
        }
    }

    [[nodiscard]] bool may_contain(std::string_view key) const {
        if (bits_.empty()) return false;
        const auto [h1, h2] = hashes(key);
        for (std::uint32_t i = 0; i < kHashes; ++i) {
            if (!get_bit((h1 + i * h2) % bit_count())) return false;
        }
        return true;
    }

    /// Serialize to bytes (u64 word count + words) / restore from bytes.
    [[nodiscard]] std::string encode() const;
    static BloomFilter decode(std::string_view bytes);

    [[nodiscard]] std::size_t bit_count() const noexcept { return bits_.size() * 64; }

  private:
    static constexpr std::uint32_t kHashes = 7;

    static std::pair<std::uint64_t, std::uint64_t> hashes(std::string_view key) {
        const std::uint64_t h = fnv1a64(key);
        return {h, mix64(h) | 1};  // odd second hash avoids cycling
    }

    void set_bit(std::size_t i) { bits_[i / 64] |= (1ULL << (i % 64)); }
    [[nodiscard]] bool get_bit(std::size_t i) const {
        return (bits_[i / 64] >> (i % 64)) & 1ULL;
    }

    std::vector<std::uint64_t> bits_;
};

}  // namespace hep::yokan::lsm

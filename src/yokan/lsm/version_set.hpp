// VersionSet: the durable manifest of an LSM database.
//
// Replaces the whole-file MANIFEST.json rewrite with a leveldb-style
// append-only edit log. Every structural change (flush, compaction, WAL
// retirement) is one VersionEdit record appended — and fsync'd — to the
// active manifest log; recovery replays the log from its leading snapshot
// and applies edits in order. Any prefix of the log is a consistent state,
// so a crash between any two syscalls recovers deterministically.
//
// Durability protocol (the A/B atomic save):
//   * two log files, MANIFEST-A.log / MANIFEST-B.log; the CURRENT file names
//     the live one ("A\n" or "B\n");
//   * appends go to the live log: write record, fflush, fsync(file);
//   * when the log outgrows its threshold, the full state is written as the
//     first record of the OTHER file, that file is fsync'd, the directory is
//     fsync'd, and only then is CURRENT flipped (write CURRENT.tmp, fsync,
//     rename, fsync dir). A crash before the flip leaves the old log
//     authoritative; after the flip the new one is — never neither.
//   * records are CRC-framed ([crc32 u32][len u32][payload]); replay stops at
//     the first torn or corrupt record, which by construction only ever
//     truncates un-acknowledged tail edits.
//
// Legacy upgrade: when no CURRENT exists but a format-1/2 MANIFEST.json
// does, recover() parses it, immediately persists the state in the new
// format, and removes the JSON file only after CURRENT is durable.
#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"
#include "yokan/lsm/sstable.hpp"

namespace hep::yokan::lsm {

/// One atomic batch of manifest changes.
struct VersionEdit {
    std::optional<std::uint64_t> next_file_number;
    std::optional<std::uint64_t> last_seq;
    /// Lowest WAL segment number whose records are NOT yet in an SSTable;
    /// segments below it are retired and must not be replayed again.
    std::optional<std::uint64_t> wal_floor;
    std::vector<std::pair<std::uint32_t, TableMeta>> added;     // (level, meta)
    std::vector<std::pair<std::uint32_t, std::uint64_t>> deleted;  // (level, file#)

    [[nodiscard]] bool empty() const noexcept {
        return !next_file_number && !last_seq && !wal_floor && added.empty() && deleted.empty();
    }

    [[nodiscard]] std::string encode() const;
    static Result<VersionEdit> decode(std::string_view payload);
};

/// The cumulative manifest state a recovery produces.
struct ManifestState {
    std::uint64_t next_file_number = 1;
    std::uint64_t last_seq = 0;
    std::uint64_t wal_floor = 0;
    std::vector<std::vector<TableMeta>> levels;

    void apply(const VersionEdit& edit);
};

class VersionSet {
  public:
    /// `crash_hook` (optional, for torture tests) is invoked with a label at
    /// every durability boundary; throwing from it simulates a crash there.
    VersionSet(std::string dir, std::size_t max_levels,
               std::function<void(std::string_view)> crash_hook = nullptr);
    ~VersionSet();
    VersionSet(const VersionSet&) = delete;
    VersionSet& operator=(const VersionSet&) = delete;

    /// Load the manifest: new format via CURRENT if present, else legacy
    /// MANIFEST.json (upgrading it on the spot), else a fresh empty state.
    Status recover();

    /// Durably append one edit (fsync'd before returning) and fold it into
    /// state(). Rotates to the other log file with a fresh snapshot when the
    /// live log exceeds `rotate_threshold_bytes`.
    Status log_and_apply(const VersionEdit& edit);

    [[nodiscard]] const ManifestState& state() const noexcept { return state_; }

    /// Manifest log size knob, mostly for tests (default 1 MB).
    void set_rotate_threshold(std::size_t bytes) noexcept { rotate_threshold_bytes_ = bytes; }

    /// Names that belong to the manifest machinery (recovery-time GC must not
    /// treat them as orphans).
    static bool is_manifest_file(std::string_view name) noexcept;

  private:
    Status load_log(const std::string& path);
    Status load_legacy_json(const std::string& path, bool& found);
    Status write_snapshot_and_flip(char target);
    Status append_record(std::string_view payload);
    Status open_live_log(bool truncate);
    [[nodiscard]] std::string log_path(char which) const;
    void hook(std::string_view label) const {
        if (crash_hook_) crash_hook_(label);
    }

    std::string dir_;
    std::size_t max_levels_;
    std::function<void(std::string_view)> crash_hook_;
    ManifestState state_;
    char live_ = 'A';
    std::FILE* log_ = nullptr;
    std::size_t log_bytes_ = 0;
    std::size_t rotate_threshold_bytes_ = 1024 * 1024;
};

}  // namespace hep::yokan::lsm

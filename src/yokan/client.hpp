// Yokan client: a remote handle to one database served by a Provider.
//
// A handle may carry replica::FailoverState: the logical database's replica
// group plus a retry policy. Every operation is then issued through a
// retry/failover loop — transport failures (Unavailable, Timeout,
// DeadlineExceeded) are retried with bounded exponential backoff, and after a
// few attempts the next replica is promoted and the operation transparently
// re-issued against it. Reads can additionally rotate across backups when
// the policy's read_from_replicas flag is set.
//
// A handle may also carry qos::ClientQos: operations are then stamped with
// the policy's tenant + per-op-kind priority class, Overloaded responses trip
// a per-server circuit breaker and are retried after the server's retry-after
// hint (without promoting a replica — the server is alive, just shedding),
// and calls to a server with an open breaker fail fast locally.
#pragma once

#include <algorithm>
#include <chrono>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "margo/engine.hpp"
#include "qos/client.hpp"
#include "replica/failover.hpp"
#include "yokan/protocol.hpp"

namespace hep::yokan {

/// Addresses one database instance: (server address, provider id, db name).
/// Cheap to copy; safe to use from many ULTs concurrently.
class DatabaseHandle {
  public:
    DatabaseHandle() = default;
    DatabaseHandle(margo::Engine& engine, std::string server, rpc::ProviderId provider,
                   std::string db_name)
        : engine_(&engine),
          server_(std::move(server)),
          provider_(provider),
          db_(std::move(db_name)) {}

    [[nodiscard]] bool valid() const noexcept { return engine_ != nullptr; }
    [[nodiscard]] const std::string& server() const noexcept { return server_; }
    [[nodiscard]] const std::string& name() const noexcept { return db_; }
    [[nodiscard]] rpc::ProviderId provider() const noexcept { return provider_; }

    /// Attach the replica group + retry policy. The state is SHARED by every
    /// copy of this handle (and every handle of the same logical database
    /// that received the same state), so one ULT's failover promotion is
    /// immediately visible to all of them.
    void set_failover(std::shared_ptr<replica::FailoverState> state) {
        failover_ = std::move(state);
    }
    [[nodiscard]] const std::shared_ptr<replica::FailoverState>& failover() const noexcept {
        return failover_;
    }

    /// Attach the client QoS state (classification policy + circuit breaker),
    /// shared across all handles of one DataStore connection.
    void set_qos(std::shared_ptr<qos::ClientQos> q) { qos_ = std::move(q); }
    [[nodiscard]] const std::shared_ptr<qos::ClientQos>& qos() const noexcept { return qos_; }

    /// A copy of this handle whose every operation is stamped with `cls`
    /// instead of the policy's per-op-kind class (prefetcher/loader use this
    /// to demote themselves to batch/bulk explicitly).
    [[nodiscard]] DatabaseHandle with_class(std::uint8_t cls) const {
        DatabaseHandle h = *this;
        h.class_override_ = cls;
        return h;
    }

    /// A copy of this handle whose every read carries the MVCC pin: the
    /// server resolves get/list/scan/get_multi against snapshot_at(pin.seq)
    /// with pin's epoch filter instead of "latest". Writes are unaffected.
    [[nodiscard]] DatabaseHandle with_snapshot(proto::ReadPin pin) const {
        DatabaseHandle h = *this;
        h.pin_ = std::move(pin);
        return h;
    }
    [[nodiscard]] const proto::ReadPin& snapshot() const noexcept { return pin_; }

    /// Legacy contiguous put (copies `value` into the request). `epoch`
    /// tags the write with an ingest epoch invisible to snapshot readers
    /// until published (0 = immediately visible).
    Status put(std::string_view key, std::string_view value, bool overwrite = true,
               std::uint32_t epoch = 0) const;
    /// Zero-copy put: the Buffer rides the request by reference
    /// ("yokan_put_owned"); the server parks the received bytes directly.
    Status put(std::string_view key, hep::Buffer value, bool overwrite = true,
               std::uint32_t epoch = 0) const;
    Result<std::string> get(std::string_view key) const;
    /// Zero-copy get: the value comes back as a view anchored to the response
    /// frame (one receive buffer, no per-value copy).
    Result<hep::BufferView> get_view(std::string_view key) const;
    /// Versioned zero-copy get: the value plus the database's mutation seq
    /// (sampled before the read — see proto::GetSeqResp). The read-cache
    /// fills record the seq so expired leases revalidate with one cheap
    /// mutation_seq() probe instead of refetching the value.
    Result<proto::GetSeqResp> get_view_vs(std::string_view key) const;
    /// Current mutation sequence of the database (replica seqs when
    /// replicated, backend put+erase count otherwise).
    Result<std::uint64_t> mutation_seq() const;
    Result<bool> exists(std::string_view key) const;
    Result<std::uint64_t> length(std::string_view key) const;
    Status erase(std::string_view key) const;
    Result<std::vector<std::string>> list_keys(std::string_view after, std::string_view prefix,
                                               std::size_t max = 128) const;
    Result<std::vector<KeyValue>> list_keyvals(std::string_view after, std::string_view prefix,
                                               std::size_t max = 128) const;
    Result<std::uint64_t> count() const;

    /// Paged scan with explicit cursor state: examines up to `max` keys and
    /// reports the exact resume key plus whether the key space ran out.
    Result<proto::ScanResp> scan_page(std::string_view after, std::string_view prefix,
                                      std::size_t max = 128, bool with_values = false) const;

    /// Legacy batched store: one RPC + one bulk read on the server side.
    /// Returns the number of newly stored pairs.
    Result<std::uint64_t> put_multi(const std::vector<KeyValue>& items,
                                    bool overwrite = true, std::uint32_t epoch = 0) const;

    /// Zero-copy batched store ("yokan_put_packed"): headers go into one
    /// metadata buffer, the item values ride the RPC payload as referenced
    /// views — no packing copy, no bulk round-trip. Every entry in the batch
    /// is tagged with `epoch`.
    Result<std::uint64_t> put_multi(const std::vector<BatchItem>& items,
                                    bool overwrite = true, std::uint32_t epoch = 0) const;

    /// Batched erase; returns how many keys existed and were removed.
    Result<std::uint64_t> erase_multi(const std::vector<std::string>& keys) const;

    /// Batched load: one RPC + one bulk write from the server (retried once
    /// with a larger buffer if the initial estimate was too small).
    /// Missing keys come back as nullopt.
    Result<std::vector<std::optional<std::string>>> get_multi(
        const std::vector<std::string>& keys, std::size_t buffer_hint = 1 << 20) const;

    /// Zero-copy batched load: values land in ONE receive buffer and come
    /// back as refcounted views into it (missing keys = nullopt). The views
    /// share the buffer's storage, so they stay valid independently.
    /// `seq_out`, when non-null, receives the database's mutation seq sampled
    /// before the reads (so read-cache bulk fills get versioning for free).
    Result<std::vector<std::optional<hep::BufferView>>> get_multi_views(
        const std::vector<std::string>& keys, std::size_t buffer_hint = 1 << 20,
        std::uint64_t* seq_out = nullptr) const;

  private:
    /// One wire attempt against `server`, wrapped with the circuit breaker:
    /// an open breaker fails fast locally (same Overloaded shape, remaining
    /// window as the hint), a shed response trips it, a success closes it.
    template <typename T, typename Fn>
    Result<T> attempt_once(Fn& op, const std::string& server, rpc::ProviderId provider,
                           const std::string& db) const {
        if (qos_) {
            if (auto left = qos_->breaker().open_for(server)) {
                qos_->note_fast_fail();
                return qos::make_overloaded(*left, "circuit breaker open for " + server);
            }
        }
        Result<T> r = op(server, provider, db);
        if (qos_) {
            if (r.ok()) {
                qos_->breaker().reset(server);
            } else if (r.status().code() == StatusCode::kOverloaded) {
                qos_->note_overloaded();
                qos_->breaker().trip(server, overload_wait_ms(r.status()));
            }
        }
        return r;
    }

    /// The clamped retry-after hint of an Overloaded status (milliseconds).
    [[nodiscard]] std::uint32_t overload_wait_ms(const Status& st) const {
        const std::uint32_t cap = qos_ ? qos_->policy().max_retry_after_ms : 1000;
        const std::uint32_t hint = qos::retry_after_ms(st).value_or(1);
        return std::min(std::max<std::uint32_t>(1, hint), cap);
    }

    /// Sleep out a shed's retry-after window (yielding, ULT-friendly).
    void overload_backoff(const Status& st) const {
        const auto end = std::chrono::steady_clock::now() +
                         std::chrono::milliseconds(overload_wait_ms(st));
        while (std::chrono::steady_clock::now() < end) {
            abt::yield();
            std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
    }

    /// Run `op(server, provider, db)` through the retry/failover loop (or
    /// an Overloaded-only retry loop when no failover state is attached).
    /// Overloaded retries wait the server's retry-after hint and re-issue
    /// against the SAME target — shedding is not failure, so it never
    /// promotes a replica or counts toward the per-target attempt budget.
    template <typename T, typename Fn>
    Result<T> with_failover(bool is_read, Fn&& op) const {
        if (!failover_) {
            Result<T> r = attempt_once<T>(op, server_, provider_, db_);
            if (!qos_) return r;
            std::uint32_t sheds = 0;
            while (!r.ok() && r.status().code() == StatusCode::kOverloaded &&
                   sheds < qos_->policy().max_overload_retries) {
                ++sheds;
                overload_backoff(r.status());
                r = attempt_once<T>(op, server_, provider_, db_);
            }
            if (r.ok() && sheds > 0) qos_->note_retry_success();
            return r;
        }
        auto& fo = *failover_;
        const auto& policy = fo.policy();
        std::size_t idx = is_read ? fo.read_start() : fo.primary();
        std::uint32_t tried_here = 0;
        bool was_shed = false;
        Result<T> last = Status::Unavailable("no replica of '" + db_ + "' reachable");
        for (std::uint32_t attempt = 0; attempt < policy.max_attempts; ++attempt) {
            const replica::Target& t = fo.target(idx);
            Result<T> r = attempt_once<T>(op, t.server, t.provider, t.db);
            if (r.ok()) {
                if (was_shed && qos_) qos_->note_retry_success();
                return r;
            }
            if (!replica::FailoverState::retryable(r.status().code())) return r;
            last = std::move(r);
            fo.count_retry();
            if (last.status().code() == StatusCode::kOverloaded) {
                was_shed = true;
                overload_backoff(last.status());
                continue;
            }
            if (++tried_here >= policy.attempts_per_target) {
                // This replica looks dead. If it was the group primary,
                // promote the next one for everybody; either way move on.
                if (idx == fo.primary()) fo.promote(idx);
                idx = is_read ? (idx + 1) % fo.size() : fo.primary();
                tried_here = 0;
            } else if (!is_read) {
                idx = fo.primary();  // another ULT may have promoted meanwhile
            }
            fo.backoff(attempt);
        }
        return last;
    }

    /// QoS stamp for one operation kind; the explicit class override (from
    /// with_class) wins over the policy's per-kind class.
    [[nodiscard]] qos::QosTag tag(qos::QosTag base) const {
        if (class_override_ != qos::kClassUnset) {
            if (base.tenant.empty() && qos_) base.tenant = qos_->policy().tenant;
            base.cls = class_override_;
        }
        return base;
    }
    [[nodiscard]] qos::QosTag point_tag() const {
        return tag(qos_ ? qos_->point_tag() : qos::QosTag{});
    }
    [[nodiscard]] qos::QosTag scan_tag() const {
        return tag(qos_ ? qos_->scan_tag() : qos::QosTag{});
    }
    [[nodiscard]] qos::QosTag bulk_tag() const {
        return tag(qos_ ? qos_->bulk_tag() : qos::QosTag{});
    }

    /// Per-attempt RPC deadline from the failover policy (zero otherwise).
    [[nodiscard]] std::chrono::milliseconds deadline() const noexcept {
        return std::chrono::milliseconds{failover_ ? failover_->policy().deadline_ms : 0};
    }

    margo::Engine* engine_ = nullptr;
    std::string server_;
    rpc::ProviderId provider_ = 0;
    std::string db_;
    std::shared_ptr<replica::FailoverState> failover_;
    std::shared_ptr<qos::ClientQos> qos_;
    std::uint8_t class_override_ = qos::kClassUnset;
    proto::ReadPin pin_;  // seq 0 = read latest
};

}  // namespace hep::yokan

// Yokan client: a remote handle to one database served by a Provider.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "margo/engine.hpp"
#include "yokan/protocol.hpp"

namespace hep::yokan {

/// Addresses one database instance: (server address, provider id, db name).
/// Cheap to copy; safe to use from many ULTs concurrently.
class DatabaseHandle {
  public:
    DatabaseHandle() = default;
    DatabaseHandle(margo::Engine& engine, std::string server, rpc::ProviderId provider,
                   std::string db_name)
        : engine_(&engine),
          server_(std::move(server)),
          provider_(provider),
          db_(std::move(db_name)) {}

    [[nodiscard]] bool valid() const noexcept { return engine_ != nullptr; }
    [[nodiscard]] const std::string& server() const noexcept { return server_; }
    [[nodiscard]] const std::string& name() const noexcept { return db_; }
    [[nodiscard]] rpc::ProviderId provider() const noexcept { return provider_; }

    Status put(std::string_view key, std::string_view value, bool overwrite = true) const;
    Result<std::string> get(std::string_view key) const;
    Result<bool> exists(std::string_view key) const;
    Result<std::uint64_t> length(std::string_view key) const;
    Status erase(std::string_view key) const;
    Result<std::vector<std::string>> list_keys(std::string_view after, std::string_view prefix,
                                               std::size_t max = 128) const;
    Result<std::vector<KeyValue>> list_keyvals(std::string_view after, std::string_view prefix,
                                               std::size_t max = 128) const;
    Result<std::uint64_t> count() const;

    /// Batched store: one RPC + one bulk read on the server side.
    /// Returns the number of newly stored pairs.
    Result<std::uint64_t> put_multi(const std::vector<KeyValue>& items,
                                    bool overwrite = true) const;

    /// Batched erase; returns how many keys existed and were removed.
    Result<std::uint64_t> erase_multi(const std::vector<std::string>& keys) const;

    /// Batched load: one RPC + one bulk write from the server (retried once
    /// with a larger buffer if the initial estimate was too small).
    /// Missing keys come back as nullopt.
    Result<std::vector<std::optional<std::string>>> get_multi(
        const std::vector<std::string>& keys, std::size_t buffer_hint = 1 << 20) const;

  private:
    margo::Engine* engine_ = nullptr;
    std::string server_;
    rpc::ProviderId provider_ = 0;
    std::string db_;
};

}  // namespace hep::yokan

// Yokan client: a remote handle to one database served by a Provider.
//
// A handle may carry replica::FailoverState: the logical database's replica
// group plus a retry policy. Every operation is then issued through a
// retry/failover loop — transport failures (Unavailable, Timeout,
// DeadlineExceeded) are retried with bounded exponential backoff, and after a
// few attempts the next replica is promoted and the operation transparently
// re-issued against it. Reads can additionally rotate across backups when
// the policy's read_from_replicas flag is set.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "margo/engine.hpp"
#include "replica/failover.hpp"
#include "yokan/protocol.hpp"

namespace hep::yokan {

/// Addresses one database instance: (server address, provider id, db name).
/// Cheap to copy; safe to use from many ULTs concurrently.
class DatabaseHandle {
  public:
    DatabaseHandle() = default;
    DatabaseHandle(margo::Engine& engine, std::string server, rpc::ProviderId provider,
                   std::string db_name)
        : engine_(&engine),
          server_(std::move(server)),
          provider_(provider),
          db_(std::move(db_name)) {}

    [[nodiscard]] bool valid() const noexcept { return engine_ != nullptr; }
    [[nodiscard]] const std::string& server() const noexcept { return server_; }
    [[nodiscard]] const std::string& name() const noexcept { return db_; }
    [[nodiscard]] rpc::ProviderId provider() const noexcept { return provider_; }

    /// Attach the replica group + retry policy. The state is SHARED by every
    /// copy of this handle (and every handle of the same logical database
    /// that received the same state), so one ULT's failover promotion is
    /// immediately visible to all of them.
    void set_failover(std::shared_ptr<replica::FailoverState> state) {
        failover_ = std::move(state);
    }
    [[nodiscard]] const std::shared_ptr<replica::FailoverState>& failover() const noexcept {
        return failover_;
    }

    /// Legacy contiguous put (copies `value` into the request).
    Status put(std::string_view key, std::string_view value, bool overwrite = true) const;
    /// Zero-copy put: the Buffer rides the request by reference
    /// ("yokan_put_owned"); the server parks the received bytes directly.
    Status put(std::string_view key, hep::Buffer value, bool overwrite = true) const;
    Result<std::string> get(std::string_view key) const;
    /// Zero-copy get: the value comes back as a view anchored to the response
    /// frame (one receive buffer, no per-value copy).
    Result<hep::BufferView> get_view(std::string_view key) const;
    Result<bool> exists(std::string_view key) const;
    Result<std::uint64_t> length(std::string_view key) const;
    Status erase(std::string_view key) const;
    Result<std::vector<std::string>> list_keys(std::string_view after, std::string_view prefix,
                                               std::size_t max = 128) const;
    Result<std::vector<KeyValue>> list_keyvals(std::string_view after, std::string_view prefix,
                                               std::size_t max = 128) const;
    Result<std::uint64_t> count() const;

    /// Paged scan with explicit cursor state: examines up to `max` keys and
    /// reports the exact resume key plus whether the key space ran out.
    Result<proto::ScanResp> scan_page(std::string_view after, std::string_view prefix,
                                      std::size_t max = 128, bool with_values = false) const;

    /// Legacy batched store: one RPC + one bulk read on the server side.
    /// Returns the number of newly stored pairs.
    Result<std::uint64_t> put_multi(const std::vector<KeyValue>& items,
                                    bool overwrite = true) const;

    /// Zero-copy batched store ("yokan_put_packed"): headers go into one
    /// metadata buffer, the item values ride the RPC payload as referenced
    /// views — no packing copy, no bulk round-trip.
    Result<std::uint64_t> put_multi(const std::vector<BatchItem>& items,
                                    bool overwrite = true) const;

    /// Batched erase; returns how many keys existed and were removed.
    Result<std::uint64_t> erase_multi(const std::vector<std::string>& keys) const;

    /// Batched load: one RPC + one bulk write from the server (retried once
    /// with a larger buffer if the initial estimate was too small).
    /// Missing keys come back as nullopt.
    Result<std::vector<std::optional<std::string>>> get_multi(
        const std::vector<std::string>& keys, std::size_t buffer_hint = 1 << 20) const;

    /// Zero-copy batched load: values land in ONE receive buffer and come
    /// back as refcounted views into it (missing keys = nullopt). The views
    /// share the buffer's storage, so they stay valid independently.
    Result<std::vector<std::optional<hep::BufferView>>> get_multi_views(
        const std::vector<std::string>& keys, std::size_t buffer_hint = 1 << 20) const;

  private:
    /// Run `op(server, provider, db)` through the retry/failover loop (or
    /// once, directly, when no failover state is attached).
    template <typename T, typename Fn>
    Result<T> with_failover(bool is_read, Fn&& op) const {
        if (!failover_) return op(server_, provider_, db_);
        auto& fo = *failover_;
        const auto& policy = fo.policy();
        std::size_t idx = is_read ? fo.read_start() : fo.primary();
        std::uint32_t tried_here = 0;
        Result<T> last = Status::Unavailable("no replica of '" + db_ + "' reachable");
        for (std::uint32_t attempt = 0; attempt < policy.max_attempts; ++attempt) {
            const replica::Target& t = fo.target(idx);
            Result<T> r = op(t.server, t.provider, t.db);
            if (r.ok() || !replica::FailoverState::retryable(r.status().code())) return r;
            last = std::move(r);
            fo.count_retry();
            if (++tried_here >= policy.attempts_per_target) {
                // This replica looks dead. If it was the group primary,
                // promote the next one for everybody; either way move on.
                if (idx == fo.primary()) fo.promote(idx);
                idx = is_read ? (idx + 1) % fo.size() : fo.primary();
                tried_here = 0;
            } else if (!is_read) {
                idx = fo.primary();  // another ULT may have promoted meanwhile
            }
            fo.backoff(attempt);
        }
        return last;
    }

    /// Per-attempt RPC deadline from the failover policy (zero otherwise).
    [[nodiscard]] std::chrono::milliseconds deadline() const noexcept {
        return std::chrono::milliseconds{failover_ ? failover_->policy().deadline_ms : 0};
    }

    margo::Engine* engine_ = nullptr;
    std::string server_;
    rpc::ProviderId provider_ = 0;
    std::string db_;
    std::shared_ptr<replica::FailoverState> failover_;
};

}  // namespace hep::yokan

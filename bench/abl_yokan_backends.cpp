// Ablation B (paper §II-B/§IV-D): Yokan backend comparison — the in-memory
// std::map backend vs rockslite (the RocksDB substitute) — on puts, point
// gets and ordered scans across value sizes.
#include <benchmark/benchmark.h>

#include <filesystem>

#include "bench_table.hpp"
#include "common/rng.hpp"
#include "yokan/backend.hpp"

namespace {

using namespace hep;
namespace fs = std::filesystem;

std::unique_ptr<yokan::Database> make_backend(const std::string& type, const std::string& tag) {
    json::Value cfg = json::Value::make_object();
    cfg["type"] = type;
    if (type == "lsm") {
        const auto dir = fs::temp_directory_path() / ("bench_yokan_" + tag);
        fs::remove_all(dir);
        cfg["path"] = dir.string();
        cfg["memtable_bytes"] = 1 << 20;
    }
    return yokan::create_database(cfg).value();
}

std::string key_of(std::uint64_t i) {
    char buf[24];
    std::snprintf(buf, sizeof(buf), "key%012llu", static_cast<unsigned long long>(i));
    return buf;
}

void BM_Put(benchmark::State& state, const std::string& type) {
    const auto value_size = static_cast<std::size_t>(state.range(0));
    auto db = make_backend(type, type + "_put" + std::to_string(value_size));
    const std::string value(value_size, 'x');
    std::uint64_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(db->put(key_of(i++), value, true));
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(value_size));
}
BENCHMARK_CAPTURE(BM_Put, map, "map")->Arg(64)->Arg(4096);
BENCHMARK_CAPTURE(BM_Put, lsm, "lsm")->Arg(64)->Arg(4096);

void BM_Get(benchmark::State& state, const std::string& type) {
    constexpr std::uint64_t kKeys = 20000;
    auto db = make_backend(type, type + "_get");
    for (std::uint64_t i = 0; i < kKeys; ++i) {
        (void)db->put(key_of(i), std::string(256, 'v'), true);
    }
    (void)db->flush();
    Rng rng(7);
    for (auto _ : state) {
        auto v = db->get(key_of(rng.uniform(0, kKeys - 1)));
        benchmark::DoNotOptimize(v);
    }
}
BENCHMARK_CAPTURE(BM_Get, map, "map");
BENCHMARK_CAPTURE(BM_Get, lsm, "lsm");

void BM_GetMissing(benchmark::State& state, const std::string& type) {
    // Bloom filters make LSM negative lookups cheap — worth showing.
    auto db = make_backend(type, type + "_miss");
    for (std::uint64_t i = 0; i < 10000; ++i) {
        (void)db->put(key_of(i), "v", true);
    }
    (void)db->flush();
    std::uint64_t i = 0;
    for (auto _ : state) {
        auto v = db->get("absent" + std::to_string(i++));
        benchmark::DoNotOptimize(v);
    }
}
BENCHMARK_CAPTURE(BM_GetMissing, map, "map");
BENCHMARK_CAPTURE(BM_GetMissing, lsm, "lsm");

void BM_Scan(benchmark::State& state, const std::string& type) {
    constexpr std::uint64_t kKeys = 20000;
    auto db = make_backend(type, type + "_scan");
    for (std::uint64_t i = 0; i < kKeys; ++i) {
        (void)db->put(key_of(i), std::string(64, 'v'), true);
    }
    (void)db->flush();
    for (auto _ : state) {
        std::uint64_t count = 0;
        (void)db->scan("", "", false, [&](std::string_view, std::string_view) {
            ++count;
            return true;
        });
        benchmark::DoNotOptimize(count);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(kKeys));
}
BENCHMARK_CAPTURE(BM_Scan, map, "map")->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Scan, lsm, "lsm")->Unit(benchmark::kMillisecond);

void print_reproduction() {
    hep::bench::print_header(
        "Ablation B — Yokan backends: std::map (in-memory) vs rockslite (LSM)\n"
        "expect: map faster across the board; lsm pays WAL+SST on writes and\n"
        "merge/bloom work on reads — the Fig. 2 backend gap in miniature");
}

}  // namespace

HEP_BENCH_MAIN(print_reproduction)

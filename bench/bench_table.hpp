// Small helpers for the figure-reproduction benches: aligned table printing
// plus a standard main() that prints the reproduction tables and then runs
// any registered google-benchmark micro-benchmarks.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

namespace hep::bench {

inline void print_header(const std::string& title) {
    std::printf("\n================================================================\n");
    std::printf("%s\n", title.c_str());
    std::printf("================================================================\n");
}

inline void print_row(const std::vector<std::string>& cells, int width = 14) {
    for (const auto& c : cells) std::printf("%-*s", width, c.c_str());
    std::printf("\n");
}

inline std::string fmt(double v, int precision = 2) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

inline std::string fmt_throughput(double slices_per_s) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.2fM", slices_per_s / 1e6);
    return buf;
}

}  // namespace hep::bench

/// Each figure bench defines `void print_reproduction();` and uses this main.
#define HEP_BENCH_MAIN(print_fn)                                  \
    int main(int argc, char** argv) {                            \
        print_fn();                                               \
        ::benchmark::Initialize(&argc, argv);                     \
        if (::benchmark::ReportUnrecognizedArguments(argc, argv)) \
            return 1;                                             \
        ::benchmark::RunSpecifiedBenchmarks();                    \
        return 0;                                                 \
    }

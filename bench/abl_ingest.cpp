// Ablation H (paper §III-B): scalability of the ingestion step.
//
// "It becomes the first step of an HEP workflow, and the only step whose
//  scalability is constrained by the number of files."
//
// Sweeps node counts on the Theta model for the 1929-file sample: ingest
// throughput stops improving once loader ranks outnumber files, while the
// selection step (fed from HEPnOS at event granularity) keeps scaling.
#include "bench_table.hpp"
#include "simcluster/theta.hpp"

namespace {

using namespace hep;
using namespace hep::simcluster;

void print_reproduction() {
    using bench::fmt;
    using bench::fmt_throughput;

    ThetaParams params;
    const SimDataset dataset = SimDataset::paper_sample(1);  // 1929 files

    bench::print_header(
        "Ablation H — ingestion (DataLoader) vs selection scalability, 1929 files");
    bench::print_row({"nodes", "ingest-map", "ingest-lsm", "loader occ.", "select-map"});
    for (std::size_t nodes : {16, 32, 64, 128, 256}) {
        const auto ing_map = simulate_ingest(params, dataset, nodes, Backend::kMap);
        const auto ing_lsm = simulate_ingest(params, dataset, nodes, Backend::kLsm);
        const auto sel = simulate_hepnos(params, dataset, nodes, Backend::kMap);
        bench::print_row({std::to_string(nodes), fmt_throughput(ing_map.throughput),
                          fmt_throughput(ing_lsm.throughput),
                          fmt(100.0 * ing_map.core_busy_fraction, 1) + "%",
                          fmt_throughput(sel.throughput)});
    }
    std::printf(
        "\nexpect: ingest throughput flattens once loader ranks >= 1929 files\n"
        "(occupancy < 100%%), while the selection step keeps scaling — the\n"
        "file-count constraint is confined to the first workflow step.\n");
}

void BM_IngestPoint(benchmark::State& state) {
    ThetaParams params;
    const SimDataset dataset = SimDataset::paper_sample(1);
    for (auto _ : state) {
        auto r = simulate_ingest(params, dataset, static_cast<std::size_t>(state.range(0)),
                                 Backend::kMap);
        benchmark::DoNotOptimize(r);
        state.counters["sim_throughput_slices_s"] = r.throughput;
    }
}
BENCHMARK(BM_IngestPoint)->Arg(16)->Arg(256)->Unit(benchmark::kMillisecond);

}  // namespace

HEP_BENCH_MAIN(print_reproduction)

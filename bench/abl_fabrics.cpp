// Ablation I: transport comparison — the same RPC and bulk operations over
// the in-process loopback fabric vs the TCP fabric. Quantifies what the
// paper's native uGNI transport buys relative to a commodity path (§IV-C
// discusses exactly this choice: "an installation of libfabric with the
// user-space Generic Network Interface (uGNI) ... to harness the full
// potential of networking bandwidth").
#include <benchmark/benchmark.h>

#include "bench_table.hpp"
#include "margo/engine.hpp"
#include "rpc/network.hpp"
#include "rpc/tcp_fabric.hpp"

namespace {

using namespace hep;

struct LoopbackPair {
    rpc::Network fabric;
    std::shared_ptr<rpc::Endpoint> server;
    std::shared_ptr<rpc::Endpoint> client;

    LoopbackPair() {
        server = fabric.create_endpoint("server");
        client = fabric.create_endpoint("client");
        install(*server);
    }
    static void install(rpc::Endpoint& ep) {
        ep.register_handler("echo", 0,
                            [](rpc::RequestContext& ctx) { ctx.respond(ctx.payload()); });
        ep.register_handler("pull", 0, [](rpc::RequestContext& ctx) {
            rpc::BulkRef ref{};
            serial::from_string(ctx.payload(), ref);
            std::string sink(ref.size, '\0');
            Status st = ctx.bulk_get(ref, 0, sink.data(), ref.size);
            ctx.respond(st.ok() ? "ok" : st.to_string());
        });
    }
};

struct TcpPair {
    rpc::TcpFabric server_fabric;
    rpc::TcpFabric client_fabric;
    std::shared_ptr<rpc::Endpoint> server;
    std::shared_ptr<rpc::Endpoint> client;

    TcpPair() {
        server = server_fabric.create_endpoint("server");
        client = client_fabric.create_endpoint("client");
        LoopbackPair::install(*server);
    }
};

template <typename Pair>
void bench_echo(benchmark::State& state) {
    static Pair pair;  // shared across iterations; benchmark runs serially
    const std::string payload(static_cast<std::size_t>(state.range(0)), 'x');
    for (auto _ : state) {
        auto r = pair.client->call(pair.server->address(), "echo", 0, payload);
        if (!r.ok()) state.SkipWithError(r.status().to_string().c_str());
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 2 *
                            state.range(0));
}

template <typename Pair>
void bench_bulk_pull(benchmark::State& state) {
    static Pair pair;
    std::string blob(static_cast<std::size_t>(state.range(0)), 'b');
    rpc::BulkRef ref = pair.client->expose(blob.data(), blob.size());
    const std::string request = serial::to_string(ref);
    for (auto _ : state) {
        auto r = pair.client->call(pair.server->address(), "pull", 0, request);
        if (!r.ok() || *r != "ok") state.SkipWithError("bulk pull failed");
    }
    pair.client->unexpose(ref);
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}

void BM_EchoLoopback(benchmark::State& state) { bench_echo<LoopbackPair>(state); }
void BM_EchoTcp(benchmark::State& state) { bench_echo<TcpPair>(state); }
void BM_BulkLoopback(benchmark::State& state) { bench_bulk_pull<LoopbackPair>(state); }
void BM_BulkTcp(benchmark::State& state) { bench_bulk_pull<TcpPair>(state); }

BENCHMARK(BM_EchoLoopback)->Arg(64)->Arg(65536);
BENCHMARK(BM_EchoTcp)->Arg(64)->Arg(65536);
BENCHMARK(BM_BulkLoopback)->Arg(1 << 20);
BENCHMARK(BM_BulkTcp)->Arg(1 << 20);

void print_reproduction() {
    hep::bench::print_header(
        "Ablation I — transports: in-process loopback vs TCP sockets\n"
        "expect: loopback echoes in ~10us (thread handoff), TCP adds socket\n"
        "round-trips; bulk bandwidth gap shows what RDMA-class transports buy");
}

}  // namespace

HEP_BENCH_MAIN(print_reproduction)

// Reproduction of paper Figure 2 (strong scaling):
//
//   "Plot illustrating the throughput (in slices processed per second) as a
//    function of the total number of nodes used for processing the data using
//    the existing traditional workflow and the HEPnOS based workflows."
//
// Fixed workload: the largest sample (7716 files, 17,437,656 events,
// ~71.5M slices). Node counts 16..256. Three series: file-based, HEPnOS
// with the RocksDB-substitute (lsm) backend, HEPnOS in-memory (map).
//
// Shape targets from the paper (not absolute Theta numbers):
//   - HEPnOS superior across all node counts;
//   - lsm == map at small scale, increasing cost beyond 32 nodes, up to ~2x
//     at the largest counts;
//   - in-memory ~85% strong-scaling efficiency at 128 nodes;
//   - file-based scales poorly after 64 nodes (cores outnumber files).
#include "bench_table.hpp"
#include "simcluster/theta.hpp"

namespace {

using namespace hep;
using namespace hep::simcluster;

const std::vector<std::size_t> kNodes{16, 32, 64, 128, 256};

/// The paper plots several repetitions per configuration ("The dots have
/// been jittered to reduce over-plotting"); we repeat with varied seeds.
constexpr int kRepetitions = 3;

struct Spread {
    double mean = 0, lo = 0, hi = 0;
};

template <typename F>
Spread repeat(F&& run_once) {
    Spread s;
    s.lo = 1e300;
    s.hi = 0;
    for (int rep = 0; rep < kRepetitions; ++rep) {
        const double v = run_once(rep);
        s.mean += v / kRepetitions;
        s.lo = std::min(s.lo, v);
        s.hi = std::max(s.hi, v);
    }
    return s;
}

void print_reproduction() {
    using bench::fmt;
    using bench::fmt_throughput;

    ThetaParams params;

    bench::print_header(
        "Figure 2 — throughput (slices/s) vs nodes, 7716-file / 17.4M-event sample\n"
        "(mean of 3 seeded repetitions; spread column = max/min across reps)");
    bench::print_row({"nodes", "file-based", "hepnos-lsm", "hepnos-map", "map/lsm",
                      "map eff.", "lsm spread"});

    auto seeded = [&](int rep) {
        SimDataset d = SimDataset::paper_sample(4);  // 7716 files
        d.seed = 2018 + static_cast<std::uint64_t>(rep) * 131;
        return d;
    };

    double map_base = 0;
    for (std::size_t nodes : kNodes) {
        const Spread fb = repeat(
            [&](int rep) { return simulate_filebased(params, seeded(rep), nodes).throughput; });
        const Spread lsm = repeat([&](int rep) {
            return simulate_hepnos(params, seeded(rep), nodes, Backend::kLsm).throughput;
        });
        const Spread map = repeat([&](int rep) {
            return simulate_hepnos(params, seeded(rep), nodes, Backend::kMap).throughput;
        });
        if (nodes == kNodes.front()) map_base = map.mean;
        const double efficiency =
            (map.mean / map_base) /
            (static_cast<double>(nodes) / static_cast<double>(kNodes.front()));
        bench::print_row({std::to_string(nodes), fmt_throughput(fb.mean),
                          fmt_throughput(lsm.mean), fmt_throughput(map.mean),
                          fmt(map.mean / lsm.mean), fmt(efficiency),
                          fmt(lsm.hi / lsm.lo)});
    }
    std::printf(
        "\npaper anchors: HEPnOS > file-based everywhere; map/lsm ~1 at <=32 nodes,\n"
        "up to ~2x at the largest counts; map efficiency ~0.85 at 128 nodes;\n"
        "file-based flat after 64 nodes (cores outnumber files). The seeded\n"
        "repetitions stand in for the paper's jittered dots; with thousands of\n"
        "batches per run the spread stays small.\n");
}

// Micro-benchmark: cost of one DES evaluation per configuration (useful when
// sweeping the model).
void BM_SimulateHepnosMap(benchmark::State& state) {
    ThetaParams params;
    const SimDataset dataset = SimDataset::paper_sample(4);
    const auto nodes = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        auto r = simulate_hepnos(params, dataset, nodes, Backend::kMap);
        benchmark::DoNotOptimize(r);
        state.counters["sim_throughput_slices_s"] = r.throughput;
        state.counters["sim_seconds"] = r.seconds;
    }
}
BENCHMARK(BM_SimulateHepnosMap)->Arg(16)->Arg(64)->Arg(256)->Unit(benchmark::kMillisecond);

void BM_SimulateFileBased(benchmark::State& state) {
    ThetaParams params;
    const SimDataset dataset = SimDataset::paper_sample(4);
    const auto nodes = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        auto r = simulate_filebased(params, dataset, nodes);
        benchmark::DoNotOptimize(r);
        state.counters["sim_throughput_slices_s"] = r.throughput;
    }
}
BENCHMARK(BM_SimulateFileBased)->Arg(16)->Arg(256)->Unit(benchmark::kMillisecond);

}  // namespace

HEP_BENCH_MAIN(print_reproduction)

// Ablation E (paper §II-A): C++ object (de)serialization cost — the price of
// "stor[ing] and load[ing] C++ objects directly rather than going through
// files". Uses the NOvA slice products the selection workflow ships.
#include <benchmark/benchmark.h>

#include "bench_table.hpp"
#include "nova/generator.hpp"
#include "serial/archive.hpp"

namespace {

using namespace hep;

std::vector<nova::Slice> make_slices(std::size_t n) {
    nova::Generator gen;
    std::vector<nova::Slice> slices;
    std::uint64_t event = 0;
    while (slices.size() < n) {
        auto rec = gen.make_event(10000, 1, event++);
        slices.insert(slices.end(), rec.slices.begin(), rec.slices.end());
    }
    slices.resize(n);
    return slices;
}

void BM_SerializeSliceVector(benchmark::State& state) {
    const auto slices = make_slices(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        auto bytes = serial::to_string(slices);
        benchmark::DoNotOptimize(bytes);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
    state.counters["bytes_per_slice"] = static_cast<double>(
        serial::to_string(slices).size() / static_cast<std::size_t>(state.range(0)));
}
BENCHMARK(BM_SerializeSliceVector)->Arg(4)->Arg(64)->Arg(1024);

void BM_DeserializeSliceVector(benchmark::State& state) {
    const auto slices = make_slices(static_cast<std::size_t>(state.range(0)));
    const std::string bytes = serial::to_string(slices);
    for (auto _ : state) {
        std::vector<nova::Slice> out;
        serial::from_string(bytes, out);
        benchmark::DoNotOptimize(out);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DeserializeSliceVector)->Arg(4)->Arg(64)->Arg(1024);

void BM_SerializeEventRecord(benchmark::State& state) {
    nova::Generator gen;
    const auto rec = gen.make_event(10000, 2, 42);
    for (auto _ : state) {
        auto bytes = serial::to_string(rec);
        benchmark::DoNotOptimize(bytes);
    }
}
BENCHMARK(BM_SerializeEventRecord);

void BM_SerializedSizeOnly(benchmark::State& state) {
    // The SizingArchive path used by WriteBatch to budget buffers.
    const auto slices = make_slices(1024);
    for (auto _ : state) {
        auto n = serial::serialized_size(slices);
        benchmark::DoNotOptimize(n);
    }
}
BENCHMARK(BM_SerializedSizeOnly);

void print_reproduction() {
    hep::bench::print_header(
        "Ablation E — serialization cost of NOvA slice products (paper §II-A)\n"
        "expect: linear in slice count; deserialize ~ serialize; sizing pass\n"
        "far cheaper than a full serialize");
}

}  // namespace

HEP_BENCH_MAIN(print_reproduction)

// Reproduction of paper Figure 3 (throughput vs dataset size at 128 nodes):
//
//   "Plot illustrating the throughput of the traditional workflow compared to
//    the HEPnOS based workflow for varying sizes of datasets using 128 nodes.
//    We see that constraints set by the performance of the parallel file
//    system hamper the throughput achieved by the traditional based workflow
//    for smaller data-sets."
//
// Fixed allocation: 128 nodes. Dataset sizes: the paper's three samples —
// 1929 / 3858 / 7716 files (4.36M / 8.72M / 17.4M events).
//
// Shape targets: file-based especially poor on the small samples (at 1929
// files only ~24% of cores are busy); HEPnOS nearly flat across sizes.
#include "bench_table.hpp"
#include "simcluster/theta.hpp"

namespace {

using namespace hep;
using namespace hep::simcluster;

constexpr std::size_t kNodes = 128;

void print_reproduction() {
    using bench::fmt;
    using bench::fmt_throughput;

    ThetaParams params;
    bench::print_header("Figure 3 — throughput (slices/s) vs dataset size at 128 nodes");
    bench::print_row({"files", "events", "file-based", "fb busy%", "hepnos-lsm",
                      "hepnos-map"});

    for (int replicas : {1, 2, 4}) {
        const SimDataset dataset = SimDataset::paper_sample(replicas);
        const auto fb = simulate_filebased(params, dataset, kNodes);
        const auto lsm = simulate_hepnos(params, dataset, kNodes, Backend::kLsm);
        const auto map = simulate_hepnos(params, dataset, kNodes, Backend::kMap);
        bench::print_row({std::to_string(dataset.num_files),
                          std::to_string(dataset.total_events),
                          fmt_throughput(fb.throughput),
                          fmt(100.0 * fb.core_busy_fraction, 1) + "%",
                          fmt_throughput(lsm.throughput), fmt_throughput(map.throughput)});
    }
    std::printf(
        "\npaper anchors: file-based especially poor on small samples (1929 files\n"
        "keep only ~24%% of 128x64 cores busy); HEPnOS nearly flat across sizes.\n");
}

void BM_Fig3Sweep(benchmark::State& state) {
    ThetaParams params;
    const SimDataset dataset = SimDataset::paper_sample(static_cast<int>(state.range(0)));
    for (auto _ : state) {
        auto fb = simulate_filebased(params, dataset, kNodes);
        auto map = simulate_hepnos(params, dataset, kNodes, Backend::kMap);
        benchmark::DoNotOptimize(fb);
        benchmark::DoNotOptimize(map);
        state.counters["fb_slices_s"] = fb.throughput;
        state.counters["map_slices_s"] = map.throughput;
    }
}
BENCHMARK(BM_Fig3Sweep)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace

HEP_BENCH_MAIN(print_reproduction)

// Ablation: zero-copy buffer pipeline vs the legacy string pipeline on the
// same ingest workload.
//
// Before the hep::Buffer refactor every stored product was memcpy'd at each
// layer boundary: into the serialization archive, into the packed batch, into
// the RPC request, out of it on the server, and finally into the backend. The
// legacy string paths are kept (and self-instrumented through the global
// BufferCounters), so this bench ingests the SAME serialized nova products
// twice — once through the legacy put_multi(vector<KeyValue>) path and once
// through the chain-based put_multi(vector<BatchItem>) path — against both
// the map and the lsm backend, and reports bytes-memcpy'd per stored event
// for each. Acceptance: >= 2x fewer copied bytes per event, and bit-identical
// stored values (same keys, same bytes) after the zero-copy ingest.
// Results land in BENCH_zerocopy.json in the working directory.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "bedrock/service.hpp"
#include "bench_table.hpp"
#include "hepnos/hepnos.hpp"
#include "nova/generator.hpp"
#include "serial/archive.hpp"
#include "yokan/client.hpp"

namespace {

using namespace hep;

struct CopyDelta {
    std::uint64_t copies = 0;
    std::uint64_t bytes_copied = 0;
    std::uint64_t allocations = 0;
};

CopyDelta snapshot() {
    const auto& c = hep::buffer_counters();
    return {c.copies.load(), c.bytes_copied.load(), c.allocations.load()};
}

CopyDelta operator-(const CopyDelta& a, const CopyDelta& b) {
    return {a.copies - b.copies, a.bytes_copied - b.bytes_copied,
            a.allocations - b.allocations};
}

struct LiveService {
    LiveService() {
        lsm_path = (std::filesystem::temp_directory_path() / "abl_zerocopy_lsm").string();
        std::filesystem::remove_all(lsm_path);
        auto cfg = json::parse(R"({
          "address": "bench-server",
          "margo": {"rpc_xstreams": 4},
          "providers": [{"type": "yokan", "provider_id": 1, "config": {"databases": [
            {"name": "ds", "type": "map", "role": "datasets"},
            {"name": "r0", "type": "map", "role": "runs"},
            {"name": "s0", "type": "map", "role": "subruns"},
            {"name": "e0", "type": "map", "role": "events"},
            {"name": "pm", "type": "map", "role": "products"},
            {"name": "pl", "type": "lsm", "path": ")" + lsm_path + R"(",
             "role": "products"}]}}]
        })");
        service = bedrock::ServiceProcess::create(network, *cfg).value();
        store = hepnos::DataStore::connect(network, service->descriptor());
    }
    rpc::Network network;
    std::unique_ptr<bedrock::ServiceProcess> service;
    hepnos::DataStore store;
    std::string lsm_path;
};

LiveService& live() {
    static LiveService instance;
    return instance;
}

/// The ingest payload: one slices product per event. Serialization happens
/// INSIDE each measured mode (that is where the two pipelines diverge:
/// to_string + pack + store copies vs to_buffer + shared views).
std::vector<std::vector<nova::Slice>> make_products(std::size_t count) {
    nova::Generator gen({.num_files = 4, .events_per_file = 64});
    std::vector<std::vector<nova::Slice>> products;
    products.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        products.push_back(gen.make_event(1, 1, i).slices);
    }
    return products;
}

std::string event_key(std::size_t i) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "evt/%08zu", i);
    return buf;
}

struct ModeResult {
    CopyDelta delta;
    double per_event = 0;
};

/// Legacy pipeline, exactly what the pre-refactor ingest did per product:
/// serialize into a contiguous string, pack KeyValue batches into one
/// contiguous buffer ("yokan_put_multi"), bulk transfer, unpack, string puts
/// into the backend. Every stage re-copies the value bytes.
ModeResult ingest_legacy(const yokan::DatabaseHandle& db,
                         const std::vector<std::vector<nova::Slice>>& products,
                         std::size_t batch) {
    hep::reset_buffer_counters();
    const CopyDelta before = snapshot();
    std::vector<yokan::KeyValue> items;
    for (std::size_t i = 0; i < products.size(); ++i) {
        items.push_back(yokan::KeyValue{event_key(i), serial::to_string(products[i])});
        if (items.size() == batch || i + 1 == products.size()) {
            auto r = db.put_multi(items, /*overwrite=*/true);
            if (!r.ok()) std::printf("ERROR: legacy put_multi: %s\n", r.status().to_string().c_str());
            items.clear();
        }
    }
    ModeResult out;
    out.delta = snapshot() - before;
    out.per_event = static_cast<double>(out.delta.bytes_copied) /
                    static_cast<double>(products.size());
    return out;
}

/// Zero-copy pipeline: serialize into a Buffer once; from there the bytes are
/// only ever referenced — BatchItem batches through "yokan_put_packed" ride
/// the request as refcounted views and the backend parks them by reference.
ModeResult ingest_zerocopy(const yokan::DatabaseHandle& db,
                           const std::vector<std::vector<nova::Slice>>& products,
                           std::size_t batch) {
    hep::reset_buffer_counters();
    const CopyDelta before = snapshot();
    std::vector<yokan::BatchItem> items;
    for (std::size_t i = 0; i < products.size(); ++i) {
        items.push_back(yokan::BatchItem{event_key(i), serial::to_buffer(products[i])});
        if (items.size() == batch || i + 1 == products.size()) {
            auto r = db.put_multi(items, /*overwrite=*/true);
            if (!r.ok()) std::printf("ERROR: packed put_multi: %s\n", r.status().to_string().c_str());
            items.clear();
        }
    }
    ModeResult out;
    out.delta = snapshot() - before;
    out.per_event = static_cast<double>(out.delta.bytes_copied) /
                    static_cast<double>(products.size());
    return out;
}

/// Every stored value must be byte-identical to the serialized source.
bool verify_bit_identical(const yokan::DatabaseHandle& db,
                          const std::vector<std::vector<nova::Slice>>& products) {
    for (std::size_t i = 0; i < products.size(); ++i) {
        auto v = db.get_view(event_key(i));
        if (!v.ok() || v->sv() != serial::to_string(products[i])) return false;
    }
    return true;
}

void print_reproduction() {
    using namespace hep::bench;
    auto& svc = live();

    constexpr std::size_t kEvents = 2000;
    constexpr std::size_t kBatch = 64;  // the write-batch flush shape
    const auto products = make_products(kEvents);
    std::size_t payload_bytes = 0;
    for (const auto& p : products) payload_bytes += serial::serialized_size(p);

    print_header(
        "Ablation — zero-copy buffer pipeline vs legacy string pipeline\n"
        "expect: >=2x fewer bytes memcpy'd per stored event, identical bytes stored");

    auto& impl = *svc.store.impl();
    const auto& product_dbs = impl.databases(hepnos::Role::kProducts);

    json::Value doc = json::Value::make_object();
    doc["bench"] = "zerocopy";
    doc["events"] = static_cast<std::uint64_t>(kEvents);
    doc["batch"] = static_cast<std::uint64_t>(kBatch);
    doc["payload_bytes"] = static_cast<std::uint64_t>(payload_bytes);

    print_row({"backend", "mode", "bytes-copied", "copies", "allocs", "bytes/event"});
    double min_ratio = 1e300;
    bool all_identical = true;
    const char* names[] = {"map", "lsm"};
    for (std::size_t d = 0; d < 2; ++d) {
        const auto& db = product_dbs[d];

        // Legacy first; the zero-copy pass then overwrites the SAME keys, so
        // the final database contents must equal the source bytes anyway.
        const ModeResult legacy = ingest_legacy(db, products, kBatch);
        const ModeResult zc = ingest_zerocopy(db, products, kBatch);
        const bool identical = verify_bit_identical(db, products);
        all_identical = all_identical && identical;
        if (!identical) std::printf("ERROR: %s backend stored different bytes!\n", names[d]);

        const double ratio = zc.delta.bytes_copied
                                 ? static_cast<double>(legacy.delta.bytes_copied) /
                                       static_cast<double>(zc.delta.bytes_copied)
                                 : 0.0;
        min_ratio = std::min(min_ratio, ratio);

        print_row({names[d], "legacy", std::to_string(legacy.delta.bytes_copied),
                   std::to_string(legacy.delta.copies),
                   std::to_string(legacy.delta.allocations), fmt(legacy.per_event, 0)});
        print_row({names[d], "zerocopy", std::to_string(zc.delta.bytes_copied),
                   std::to_string(zc.delta.copies), std::to_string(zc.delta.allocations),
                   fmt(zc.per_event, 0)});
        std::printf("  %s: %.1fx fewer bytes copied per stored event (identical=%s)\n",
                    names[d], ratio, identical ? "yes" : "NO");

        json::Value& b = doc["backends"][names[d]];
        b["legacy"]["bytes_copied"] = legacy.delta.bytes_copied;
        b["legacy"]["copies"] = legacy.delta.copies;
        b["legacy"]["allocations"] = legacy.delta.allocations;
        b["legacy"]["bytes_copied_per_event"] = legacy.per_event;
        b["zerocopy"]["bytes_copied"] = zc.delta.bytes_copied;
        b["zerocopy"]["copies"] = zc.delta.copies;
        b["zerocopy"]["allocations"] = zc.delta.allocations;
        b["zerocopy"]["bytes_copied_per_event"] = zc.per_event;
        b["copy_reduction_ratio"] = ratio;
        b["bit_identical"] = identical;
    }

    doc["min_copy_reduction_ratio"] = min_ratio;
    doc["pass"] = all_identical && min_ratio >= 2.0;
    std::ofstream("BENCH_zerocopy.json") << doc.dump(2) << "\n";
    std::printf("\nmin ratio %.1fx, bit-identical=%s -> %s\n", min_ratio,
                all_identical ? "yes" : "NO",
                (all_identical && min_ratio >= 2.0) ? "PASS" : "FAIL");
    std::printf("wrote BENCH_zerocopy.json\n");
}

// Micro-benchmark: batch assembly cost — legacy contiguous pack_entries vs
// the scatter-gather pack_items chain (one metadata allocation, zero value
// copies).
void BM_PackEntriesContiguous(benchmark::State& state) {
    std::vector<yokan::KeyValue> items;
    for (int i = 0; i < 64; ++i) {
        items.push_back(yokan::KeyValue{"key-" + std::to_string(i), std::string(4096, 'v')});
    }
    for (auto _ : state) {
        std::string out;
        yokan::proto::pack_entries(out, items);
        benchmark::DoNotOptimize(out);
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 64 * 4096);
}
BENCHMARK(BM_PackEntriesContiguous);

void BM_PackItemsChain(benchmark::State& state) {
    std::vector<yokan::BatchItem> items;
    for (int i = 0; i < 64; ++i) {
        items.push_back(yokan::BatchItem{"key-" + std::to_string(i),
                                         hep::Buffer::adopt(std::string(4096, 'v'))});
    }
    for (auto _ : state) {
        hep::BufferChain chain = yokan::proto::pack_items(items);
        benchmark::DoNotOptimize(chain);
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 64 * 4096);
}
BENCHMARK(BM_PackItemsChain);

// Single-value store path: serialize-into-string-and-copy vs
// serialize-into-buffer-and-share.
void BM_SerializeToString(benchmark::State& state) {
    const std::vector<double> value(512, 3.14);
    for (auto _ : state) {
        std::string bytes = serial::to_string(value);
        benchmark::DoNotOptimize(bytes);
    }
}
BENCHMARK(BM_SerializeToString);

void BM_SerializeToBuffer(benchmark::State& state) {
    const std::vector<double> value(512, 3.14);
    for (auto _ : state) {
        hep::Buffer bytes = serial::to_buffer(value);
        benchmark::DoNotOptimize(bytes);
    }
}
BENCHMARK(BM_SerializeToBuffer);

}  // namespace

HEP_BENCH_MAIN(print_reproduction)

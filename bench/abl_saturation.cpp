// Ablation: saturation-scale load harness with live autotune closure.
//
// Drives a LIVE in-process cluster (not the DES model) with an open-loop,
// coordinated-omission-safe client population (src/loadgen).
//
// Default (tier-1 smoke, seconds): a fixed-seed mixed run — ingest +
// pushdown queries + cached hot reads + pinned scans — against 2 servers
// with one mid-run failover. Pass bar: zero lost acked writes.
//
// --full (knee-finding profile, minutes): three phases written to
// BENCH_saturation.json:
//   saturation — >= 1000 simulated clients, mixed classes, two failovers;
//                per-class p99 SLO gates enforced on the intended-time
//                (CO-safe) latency distributions; zero lost acked writes.
//   knee       — rate_scale ramp at fixed population: achieved vs offered
//                throughput and the interactive p99 as load crosses the
//                service knee.
//   autotune   — autotune::Tuner over live bedrock knobs (qos weights,
//                shed/slowdown thresholds, cache capacity, replication
//                fanout); every sample boots a fresh cluster, replays the
//                same seeded schedule and scores SLO-penalized throughput.
//                Pass bar: the tuned assignment beats the default knobs.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_table.hpp"
#include "loadgen/harness.hpp"

namespace {

using namespace hep;
using namespace hep::loadgen;

void print_report_row(const std::string& label, const RunReport& r) {
    bench::print_row({label, bench::fmt(r.offered_ops_s, 0), bench::fmt(r.achieved_ops_s, 0),
                      bench::fmt(r.objective, 0), r.slo_pass ? "yes" : "no",
                      std::to_string(r.lost_writes), std::to_string(r.failovers),
                      bench::fmt(r.scrape.cache_hit_rate(), 2),
                      std::to_string(r.scrape.qos_shed)});
}

void print_verdicts(const RunReport& r) {
    bench::print_row({"  class", "ops", "p50_ms", "p99_ms", "p999_ms", "err", "pass"});
    for (const auto& v : r.verdicts) {
        bench::print_row({"  " + v.class_name, std::to_string(v.ops), bench::fmt(v.p50_ms, 1),
                          bench::fmt(v.p99_ms, 1), bench::fmt(v.p999_ms, 1),
                          bench::fmt(v.error_rate, 3), v.pass ? "yes" : "no"});
        for (const auto& why : v.violations) std::printf("      %s\n", why.c_str());
    }
}

WorkloadSpec smoke_spec() {
    auto spec = WorkloadSpec::saturation_default(96, 1.5);
    spec.seed = 20260809;
    spec.servers = 2;
    spec.hot_keys = 128;
    spec.query_events = 48;
    spec.workers = 48;
    spec.worker_xstreams = 2;
    spec.connections = 2;
    spec.scrape_interval_ms = 150;
    spec.failures = {{0.6, 1}};
    return spec;
}

int run_smoke() {
    bench::print_header(
        "abl_saturation (smoke): 96 open-loop clients, 2 servers, 1 failover");
    Knobs knobs;
    knobs.replication = 2;
    knobs.cache_capacity_kb = 4096;
    Harness harness(smoke_spec(), knobs, ".");
    auto report = harness.run();
    if (!report.ok()) {
        std::printf("ERROR: smoke run failed: %s\n", report.status().to_string().c_str());
        return 1;
    }
    bench::print_row({"profile", "offered/s", "achieved/s", "objective", "slo", "lost",
                      "failover", "hit_rate", "shed"});
    print_report_row("smoke", *report);
    print_verdicts(*report);
    std::printf("\nacked=%llu verified=%llu lost=%llu scrapes=%llu\n",
                static_cast<unsigned long long>(report->acked_writes),
                static_cast<unsigned long long>(report->verified_writes),
                static_cast<unsigned long long>(report->lost_writes),
                static_cast<unsigned long long>(report->scrape.scrapes_ok));
    if (report->lost_writes != 0) {
        std::printf("FAIL: lost %llu acked writes\n",
                    static_cast<unsigned long long>(report->lost_writes));
        return 1;
    }
    std::printf("PASS: zero lost acked writes across the failover\n");
    return 0;
}

int run_full(std::size_t clients) {
    json::Value doc = json::Value::make_object();
    bool pass = true;

    // ---- phase 1: saturation at >= 1000 clients with failovers ----------
    bench::print_header("abl_saturation (--full) phase 1: " + std::to_string(clients) +
                        " clients, 2 failovers, SLO gates");
    auto spec = WorkloadSpec::saturation_default(clients, 4.0);
    spec.seed = 20260809;
    spec.servers = 2;
    spec.hot_keys = 256;
    spec.query_events = 96;
    spec.workers = 256;
    spec.worker_xstreams = 4;
    spec.connections = 4;
    spec.scrape_interval_ms = 250;
    spec.failures = {{1.2, 1}, {2.6, 0}};
    Knobs knobs;
    knobs.replication = 2;
    knobs.cache_capacity_kb = 16384;

    Harness harness(spec, knobs, ".");
    auto report = harness.run();
    if (!report.ok()) {
        std::printf("ERROR: saturation run failed: %s\n",
                    report.status().to_string().c_str());
        return 1;
    }
    bench::print_row({"profile", "offered/s", "achieved/s", "objective", "slo", "lost",
                      "failover", "hit_rate", "shed"});
    print_report_row("saturation", *report);
    print_verdicts(*report);
    doc["saturation"] = report->to_json();
    if (report->lost_writes != 0) {
        std::printf("FAIL: lost %llu acked writes\n",
                    static_cast<unsigned long long>(report->lost_writes));
        pass = false;
    }

    // ---- phase 2: rate_scale ramp to find the knee -----------------------
    bench::print_header("abl_saturation (--full) phase 2: offered-load ramp (knee)");
    bench::print_row({"rate_scale", "offered/s", "achieved/s", "ratio", "read_p99_ms",
                      "backlog", "shed"});
    json::Value knee = json::Value::make_array();
    auto ramp_spec = WorkloadSpec::saturation_default(256, 1.5);
    ramp_spec.seed = 20260809;
    ramp_spec.servers = 2;
    ramp_spec.hot_keys = 256;
    ramp_spec.query_events = 64;
    ramp_spec.workers = 128;
    ramp_spec.worker_xstreams = 4;
    ramp_spec.connections = 4;
    double knee_scale = 0;
    for (const double scale : {0.25, 0.5, 1.0, 2.0, 4.0}) {
        auto s = ramp_spec;
        s.rate_scale = scale;
        Harness h(s, knobs, ".");
        auto r = h.run();
        if (!r.ok()) {
            std::printf("ERROR: ramp %.2f failed: %s\n", scale,
                        r.status().to_string().c_str());
            pass = false;
            continue;
        }
        const double ratio = r->offered_ops_s > 0 ? r->achieved_ops_s / r->offered_ops_s : 0;
        if (ratio >= 0.9) knee_scale = scale;
        const double read_p99 = r->verdicts.empty() ? 0 : r->verdicts[0].p99_ms;
        bench::print_row({bench::fmt(scale, 2), bench::fmt(r->offered_ops_s, 0),
                          bench::fmt(r->achieved_ops_s, 0), bench::fmt(ratio, 3),
                          bench::fmt(read_p99, 1), std::to_string(r->max_backlog),
                          std::to_string(r->scrape.qos_shed)});
        json::Value point = json::Value::make_object();
        point["rate_scale"] = scale;
        point["offered_ops_s"] = r->offered_ops_s;
        point["achieved_ops_s"] = r->achieved_ops_s;
        point["ratio"] = ratio;
        point["interactive_p99_ms"] = read_p99;
        point["slo_pass"] = r->slo_pass;
        point["max_backlog"] = r->max_backlog;
        point["qos_shed"] = r->scrape.qos_shed;
        knee.push_back(std::move(point));
    }
    doc["knee"] = std::move(knee);
    doc["knee_scale"] = knee_scale;
    std::printf("knee: last rate_scale sustaining >= 90%% of offered load: %.2f\n",
                knee_scale);

    // ---- phase 3: live autotune closure ----------------------------------
    bench::print_header("abl_saturation (--full) phase 3: live autotune over bedrock knobs");
    // An ingest-heavy profile on the LSM backend: at the stock 64 KB memtable
    // the flush cadence piles up L0 files and the write path stalls, which
    // the CO-safe ingest p99 gate catches; the tuner can buy its way out with
    // a bigger memtable and a hot-read cache. This makes the tuned-vs-default
    // comparison mechanical instead of a noise-level tie.
    auto tune_spec = WorkloadSpec::saturation_default(128, 1.5);
    tune_spec.seed = 20260809;
    tune_spec.servers = 2;
    tune_spec.backend = "lsm";
    tune_spec.hot_keys = 128;
    tune_spec.query_events = 48;
    tune_spec.workers = 64;
    tune_spec.worker_xstreams = 2;
    tune_spec.connections = 2;
    tune_spec.scrape_interval_ms = 200;
    for (auto& cls : tune_spec.classes) {
        if (cls.op == OpKind::kIngest) {
            cls.rate_hz = 2.0;
            cls.batch_events = 8;
            cls.value_words = 2048;  // 16 KB per event
            cls.slo.p99_ms = 400.0;
        }
    }

    // Baseline: stock knobs — cache off, 64 KB memtables, default weights.
    Knobs base;
    base.replication = 2;
    autotune::Sample baseline;
    baseline.assignment = {};
    auto objective = make_autotune_objective(tune_spec, base, "abl-sat-base");
    baseline.objective = objective({}, baseline);
    std::printf("baseline (default knobs): objective %.0f, slo %s\n", baseline.objective,
                baseline.slo_pass ? "pass" : "FAIL");

    autotune::Tuner tuner(Knobs::default_param_space(tune_spec),
                          make_autotune_objective(tune_spec, base, "abl-sat-tune"),
                          20260809);
    auto best = tuner.run(3, 1);
    std::printf("tuned after %zu live evaluations: objective %.0f\n", tuner.evaluations(),
                best.objective);
    for (const auto& [name, value] : best.assignment) {
        std::printf("  %-24s %lld\n", name.c_str(), static_cast<long long>(value));
    }
    const bool tuned_wins = best.objective > baseline.objective;
    std::printf("%s: tuned %.0f vs baseline %.0f\n", tuned_wins ? "PASS" : "FAIL",
                best.objective, baseline.objective);
    if (!tuned_wins) pass = false;

    json::Value tune = json::Value::make_object();
    tune["spec"] = tune_spec.to_json();
    tune["baseline"] = baseline.to_json();
    tune["best"] = best.to_json();
    tune["trajectory"] = tuner.trace_json();
    doc["autotune"] = std::move(tune);

    doc["pass"] = pass;
    std::ofstream out("BENCH_saturation.json");
    out << doc.dump(2) << '\n';
    std::printf("\nwrote BENCH_saturation.json (%s)\n", pass ? "pass" : "FAIL");
    return pass ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
    bool full = false;
    std::size_t clients = 1024;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--full") == 0) {
            full = true;
        } else if (std::strcmp(argv[i], "--clients") == 0 && i + 1 < argc) {
            clients = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
        } else {
            std::printf("usage: %s [--full] [--clients N]\n", argv[0]);
            return 2;
        }
    }
    return full ? run_full(clients) : run_smoke();
}

// Ablation: server-side selection pushdown (src/query) vs the client-pull
// ParallelEventProcessor selection on the same ingested dataset.
//
// The PEP path moves every slices product to the client and filters there;
// pushdown ships the cuts to the servers as a FilterProgram and moves back
// only the accepted (event, slice-ids) pairs. Both must accept the same
// slices; the interesting numbers are wall time and bytes moved client-ward.
// The table (and BENCH_pushdown.json, written to the working directory) shows
// the measured fabric traffic of each run plus the pushdown cursor accounting:
// bytes_scanned is what a client-side selection must transfer (the product
// values), bytes_received is what the pushdown client actually pulled.
#include <benchmark/benchmark.h>

#include <chrono>
#include <fstream>

#include "bedrock/service.hpp"
#include "bench_table.hpp"
#include "dataloader/loader.hpp"
#include "query/evaluator.hpp"
#include "workflow/hepnos_app.hpp"

namespace {

using namespace hep;

constexpr const char* kDataset = "nova/abl";

struct LiveService {
    LiveService() {
        auto cfg = json::parse(R"({
          "address": "bench-server",
          "margo": {"rpc_xstreams": 4},
          "query": {"enabled": true},
          "providers": [{"type": "yokan", "provider_id": 1, "config": {"databases": [
            {"name": "ds", "type": "map", "role": "datasets"},
            {"name": "r0", "type": "map", "role": "runs"},
            {"name": "s0", "type": "map", "role": "subruns"},
            {"name": "e0", "type": "map", "role": "events"},
            {"name": "e1", "type": "map", "role": "events"},
            {"name": "p0", "type": "map", "role": "products"},
            {"name": "p1", "type": "map", "role": "products"},
            {"name": "p2", "type": "map", "role": "products"},
            {"name": "p3", "type": "map", "role": "products"}]}}]
        })");
        service = bedrock::ServiceProcess::create(network, *cfg).value();
        store = hepnos::DataStore::connect(network, service->descriptor());
        gen = nova::Generator({.num_files = 32, .events_per_file = 100});
        mpisim::run_ranks(4, [&](mpisim::Comm& comm) {
            dataloader::ingest_generated(store, comm, gen, kDataset, 1024);
        });
    }
    rpc::Network network;
    std::unique_ptr<bedrock::ServiceProcess> service;
    hepnos::DataStore store;
    nova::Generator gen{nova::DatasetConfig{}};
};

LiveService& live() {
    static LiveService instance;
    return instance;
}

std::uint64_t fabric_bytes(const rpc::NetworkStats& s) {
    return s.message_bytes + s.bulk_bytes;
}

void print_reproduction() {
    using namespace hep::bench;
    auto& svc = live();

    print_header(
        "Ablation — selection pushdown vs client-pull PEP selection\n"
        "expect: identical accepted IDs; >=10x fewer bytes moved client-ward");

    workflow::HepnosAppOptions pep_opts;
    pep_opts.num_ranks = 4;
    pep_opts.pep.input_batch_size = 1024;
    auto before_pep = svc.network.stats();
    auto pep = run_hepnos_selection(svc.store, kDataset, pep_opts);
    const std::uint64_t pep_bytes = fabric_bytes(svc.network.stats()) -
                                    fabric_bytes(before_pep);

    workflow::HepnosAppOptions push_opts;
    push_opts.num_ranks = 4;
    push_opts.pushdown = true;
    auto before_push = svc.network.stats();
    auto push = run_hepnos_selection(svc.store, kDataset, push_opts);
    const std::uint64_t push_bytes = fabric_bytes(svc.network.stats()) -
                                     fabric_bytes(before_push);

    if (push.accepted_ids != pep.accepted_ids) {
        std::printf("ERROR: pushdown and PEP accepted-ID sets differ!\n");
    }

    // Cursor-level accounting straight from the query client: product bytes
    // the scan examined (what client-pull must move) vs page bytes received.
    auto spec = query::nova_selection_spec(
        pep_opts.cuts,
        std::string(hepnos::product_type_name<std::vector<nova::Slice>>()));
    auto qr = svc.store.query(svc.store[kDataset], spec);
    const auto& qs = qr->stats();

    print_row({"mode", "seconds", "accepted", "fabric-bytes", "slices/s"});
    print_row({"pep", fmt(pep.wall_seconds, 3), std::to_string(pep.accepted_ids.size()),
               std::to_string(pep_bytes), fmt(pep.throughput_slices_per_s(), 0)});
    print_row({"pushdown", fmt(push.wall_seconds, 3),
               std::to_string(push.accepted_ids.size()), std::to_string(push_bytes),
               fmt(push.throughput_slices_per_s(), 0)});

    const double fabric_ratio = push_bytes ? static_cast<double>(pep_bytes) /
                                                 static_cast<double>(push_bytes)
                                           : 0.0;
    const double value_ratio = qs.bytes_received
                                   ? static_cast<double>(qs.bytes_scanned) /
                                         static_cast<double>(qs.bytes_received)
                                   : 0.0;
    std::printf("\nclient-ward bytes: pep=%llu pushdown=%llu (%.1fx less)\n",
                static_cast<unsigned long long>(pep_bytes),
                static_cast<unsigned long long>(push_bytes), fabric_ratio);
    std::printf("cursor accounting: scanned=%llu received=%llu (%.1fx less)\n",
                static_cast<unsigned long long>(qs.bytes_scanned),
                static_cast<unsigned long long>(qs.bytes_received), value_ratio);

    json::Value doc = json::Value::make_object();
    doc["bench"] = "pushdown";
    doc["dataset"]["files"] = svc.gen.config().num_files;
    doc["dataset"]["events"] = svc.gen.total_events();
    doc["results_match"] = push.accepted_ids == pep.accepted_ids;
    doc["accepted"] = static_cast<std::uint64_t>(pep.accepted_ids.size());
    doc["pep"]["seconds"] = pep.wall_seconds;
    doc["pep"]["client_bytes"] = pep_bytes;
    doc["pushdown"]["seconds"] = push.wall_seconds;
    doc["pushdown"]["client_bytes"] = push_bytes;
    doc["pushdown"]["bytes_scanned"] = qs.bytes_scanned;
    doc["pushdown"]["bytes_received"] = qs.bytes_received;
    doc["pushdown"]["pages"] = qs.pages;
    doc["byte_ratio_fabric"] = fabric_ratio;
    doc["byte_ratio_values"] = value_ratio;
    std::ofstream("BENCH_pushdown.json") << doc.dump(2) << "\n";
    std::printf("wrote BENCH_pushdown.json\n");
}

// Micro-benchmark: the per-row cost of the interpreted FilterProgram vs the
// compiled-in Selector — the price of genericity on the server's scan path.
void BM_FilterProgramEval(benchmark::State& state) {
    auto program = query::nova_cuts_program({});
    auto slices = nova::Generator({.num_files = 1, .events_per_file = 64})
                      .make_event(1, 1, 1)
                      .slices;
    double fields[nova::kNumSliceFields];
    std::size_t i = 0, accepted = 0;
    for (auto _ : state) {
        nova::slice_fields(slices[i++ % slices.size()], fields);
        accepted += program.matches(fields, nova::kNumSliceFields);
    }
    benchmark::DoNotOptimize(accepted);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FilterProgramEval);

void BM_SelectorEval(benchmark::State& state) {
    nova::Selector selector{nova::SelectionCuts{}};
    auto slices = nova::Generator({.num_files = 1, .events_per_file = 64})
                      .make_event(1, 1, 1)
                      .slices;
    std::size_t i = 0, accepted = 0;
    for (auto _ : state) {
        accepted += selector.select(slices[i++ % slices.size()]);
    }
    benchmark::DoNotOptimize(accepted);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SelectorEval);

}  // namespace

HEP_BENCH_MAIN(print_reproduction)

// Ablation A (paper §II-D): effect of WriteBatch batching on ingestion.
//
// "To improve performance when accessing many small data items, HEPnOS
//  provides batching and asynchronous access capabilities."
//
// Measures storing many small products into a live in-process service:
//  - direct puts (one RPC per product),
//  - WriteBatch with varying flush thresholds (one bulk RPC per batch),
//  - AsyncWriteBatch (overlapped bulk RPCs).
#include <benchmark/benchmark.h>

#include "bedrock/service.hpp"
#include "bench_table.hpp"
#include "hepnos/hepnos.hpp"

namespace {

using namespace hep;

struct LiveService {
    LiveService() {
        auto cfg = json::parse(R"({
          "address": "bench-server",
          "margo": {"rpc_xstreams": 2},
          "providers": [{"type": "yokan", "provider_id": 1, "config": {"databases": [
            {"name": "ds", "type": "map", "role": "datasets"},
            {"name": "r0", "type": "map", "role": "runs"},
            {"name": "s0", "type": "map", "role": "subruns"},
            {"name": "e0", "type": "map", "role": "events"},
            {"name": "e1", "type": "map", "role": "events"},
            {"name": "p0", "type": "map", "role": "products"},
            {"name": "p1", "type": "map", "role": "products"}]}}]
        })");
        service = bedrock::ServiceProcess::create(network, *cfg).value();
        store = hepnos::DataStore::connect(network, service->descriptor());
    }
    rpc::Network network;
    std::unique_ptr<bedrock::ServiceProcess> service;
    hepnos::DataStore store;
    int round = 0;
};

LiveService& live() {
    static LiveService instance;
    return instance;
}

hepnos::SubRun fresh_subrun() {
    auto& svc = live();
    auto ds = svc.store.createDataSet("bench/batch-" + std::to_string(svc.round++));
    return ds.createRun(1).createSubRun(1);
}

void BM_DirectPuts(benchmark::State& state) {
    const auto n = static_cast<std::uint64_t>(state.range(0));
    const std::string value(64, 'v');
    for (auto _ : state) {
        auto sr = fresh_subrun();
        for (std::uint64_t e = 0; e < n; ++e) {
            auto ev = sr.createEvent(e);
            ev.store("payload", value);
        }
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(BM_DirectPuts)->Arg(512)->Unit(benchmark::kMillisecond);

void BM_WriteBatch(benchmark::State& state) {
    const std::uint64_t n = 512;
    const auto threshold = static_cast<std::size_t>(state.range(0));
    const std::string value(64, 'v');
    for (auto _ : state) {
        auto sr = fresh_subrun();
        hepnos::WriteBatch batch(live().store.impl(), threshold);
        for (std::uint64_t e = 0; e < n; ++e) {
            auto ev = sr.createEvent(batch, e);
            ev.store(batch, "payload", value);
        }
        batch.flush();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(BM_WriteBatch)->Arg(8)->Arg(64)->Arg(512)->Arg(4096)->Unit(benchmark::kMillisecond);

void BM_AsyncWriteBatch(benchmark::State& state) {
    const std::uint64_t n = 512;
    const auto threshold = static_cast<std::size_t>(state.range(0));
    const std::string value(64, 'v');
    for (auto _ : state) {
        auto sr = fresh_subrun();
        hepnos::AsyncWriteBatch batch(live().store.impl(), threshold);
        for (std::uint64_t e = 0; e < n; ++e) {
            auto ev = sr.createEvent(batch, e);
            ev.store(batch, "payload", value);
        }
        batch.flush();
        batch.wait();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(BM_AsyncWriteBatch)->Arg(64)->Arg(512)->Unit(benchmark::kMillisecond);

void print_reproduction() {
    hep::bench::print_header(
        "Ablation A — WriteBatch/AsyncWriteBatch vs direct puts (paper §II-D)\n"
        "expect: items/s rises steeply with batch size; async overlaps flushes");
}

}  // namespace

HEP_BENCH_MAIN(print_reproduction)

// Ablation: column-pruned vectorized pushdown (src/columnar + the columnar
// scan in src/query) vs the blob pushdown scan, on the same ingested dataset.
//
// Both modes evaluate identical FilterPrograms server-side and must accept
// identical (event, slice) sets — checked here with an FNV-1a readback hash
// per query, on the map AND lsm backends. The interesting numbers are what
// the server has to DECOMPRESS to answer: the blob scan deserializes every
// 45-byte slice row it examines, the columnar scan only the referenced
// member columns plus the chunk directory. A zipfian query mix models an
// analysis facility where narrow selections dominate: the headline "energy
// window" selection touches 2 of 12 members (plus the lazily-fetched id
// column) and must come out >= 3x cheaper in decompressed bytes per accepted
// event. Results land in BENCH_columnar.json.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <ctime>
#include <filesystem>
#include <fstream>

#include "bedrock/service.hpp"
#include "bench_table.hpp"
#include "columnar/chunk.hpp"
#include "columnar/schema.hpp"
#include "dataloader/loader.hpp"
#include "hepnos/query.hpp"
#include "query/evaluator.hpp"

namespace fs = std::filesystem;

namespace {

using namespace hep;

constexpr const char* kDataset = "nova/ablcol";

std::uint64_t fnv1a64(const std::vector<std::uint64_t>& ids) {
    std::uint64_t h = 1469598103934665603ull;
    for (std::uint64_t id : ids) {
        for (int b = 0; b < 8; ++b) {
            h ^= (id >> (8 * b)) & 0xFF;
            h *= 1099511628211ull;
        }
    }
    return h;
}

std::string slices_type() {
    return std::string(hepnos::product_type_name<std::vector<nova::Slice>>());
}

/// The zipfian query mix: narrow selections dominate. Each returns the spec
/// plus how many member columns (incl. the lazily-fetched id column) the
/// columnar scan must decompress.
struct Selection {
    const char* name;
    std::size_t columns;  // referenced members + id column
    query::proto::QuerySpec spec;
};

std::vector<Selection> make_selections() {
    std::vector<Selection> sels;
    // Headline: the energy-window selection — contained slices inside the
    // calorimetric window. 2 referenced members of 12, + the index id column.
    {
        auto spec = query::nova_selection_spec(nova::SelectionCuts{}, slices_type());
        query::FilterProgram p;
        p.compare(nova::kFieldContained, query::FilterOp::kEq, 1.0)
            .compare(nova::kFieldCalE, query::FilterOp::kGe, 1.0)
            .op(query::FilterOp::kAnd)
            .compare(nova::kFieldCalE, query::FilterOp::kLe, 4.0)
            .op(query::FilterOp::kAnd);
        spec.filter = std::move(p);
        sels.push_back({"energy-window", 3, std::move(spec)});
    }
    // Context: the full NOvA cuts — 6 referenced members, the pruning win
    // shrinks with selection width.
    sels.push_back({"full-cuts", 7,
                    query::nova_selection_spec(nova::SelectionCuts{}, slices_type())});
    // Tail: a single-member quality sweep.
    {
        auto spec = query::nova_selection_spec(nova::SelectionCuts{}, slices_type());
        query::FilterProgram p;
        p.compare(nova::kFieldNhits, query::FilterOp::kGe, 40.0);
        spec.filter = std::move(p);
        sels.push_back({"nhits-sweep", 2, std::move(spec)});
    }
    return sels;
}

/// Zipf(s=1) over the selections: P(k) ~ 1/k.
std::vector<std::size_t> zipf_sequence(std::size_t n_selections, std::size_t n_queries) {
    std::vector<double> cdf;
    double total = 0;
    for (std::size_t k = 1; k <= n_selections; ++k) total += 1.0 / static_cast<double>(k);
    double acc = 0;
    for (std::size_t k = 1; k <= n_selections; ++k) {
        acc += 1.0 / static_cast<double>(k) / total;
        cdf.push_back(acc);
    }
    std::vector<std::size_t> seq;
    std::uint64_t state = 0x5EED;
    for (std::size_t q = 0; q < n_queries; ++q) {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        const double u = static_cast<double>(state >> 11) / 9007199254740992.0;
        std::size_t pick = 0;
        while (pick + 1 < n_selections && u > cdf[pick]) ++pick;
        seq.push_back(pick);
    }
    return seq;
}

struct ModeResult {
    double wall_seconds = 0;
    double cpu_seconds = 0;
    query::ClientStats stats;
    std::vector<std::uint64_t> hashes;  // per query, in mix order
    std::uint64_t accepted = 0;
};

std::vector<std::uint64_t> entry_ids(const std::vector<query::proto::Entry>& entries) {
    std::vector<std::uint64_t> ids;
    for (const auto& e : entries) {
        for (std::uint32_t row : e.rows) {
            ids.push_back(nova::SliceId{e.run, e.subrun, e.event, row}.packed());
        }
    }
    std::sort(ids.begin(), ids.end());
    return ids;
}

/// Run the whole zipfian mix through one client (columnar or blob).
ModeResult run_mix(hepnos::DataStore& store, const std::vector<Selection>& sels,
                   const std::vector<std::size_t>& mix,
                   std::vector<query::ClientStats>* per_selection) {
    ModeResult r;
    const auto wall0 = std::chrono::steady_clock::now();
    const std::clock_t cpu0 = std::clock();
    for (std::size_t pick : mix) {
        auto res = hepnos::run_query(store, store[kDataset], sels[pick].spec);
        if (!res.ok()) {
            std::printf("ERROR: query failed: %s\n", res.status().to_string().c_str());
            std::exit(1);
        }
        auto ids = entry_ids(res->entries());
        r.hashes.push_back(fnv1a64(ids));
        r.accepted += ids.size();
        r.stats += res->stats();
        if (per_selection) (*per_selection)[pick] += res->stats();
    }
    r.cpu_seconds = static_cast<double>(std::clock() - cpu0) / CLOCKS_PER_SEC;
    r.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - wall0).count();
    return r;
}

json::Value make_service_config(const std::string& backend) {
    json::Value cfg = json::Value::make_object();
    cfg["address"] = "bench-col-" + backend;
    cfg["margo"]["rpc_xstreams"] = 4;
    cfg["query"]["enabled"] = true;
    cfg["columnar"]["enabled"] = true;
    cfg["columnar"]["chunk_rows"] = 128;
    cfg["columnar"]["min_batch"] = 8;
    json::Value dbs = json::Value::make_array();
    auto add = [&](const std::string& name, const std::string& role) {
        json::Value db = json::Value::make_object();
        db["name"] = name;
        db["role"] = role;
        db["type"] = backend;
        if (backend == "lsm") {
            db["path"] = name;
            db["memtable_bytes"] = 256 * 1024;
        }
        dbs.push_back(std::move(db));
    };
    add("ds", "datasets");
    add("r0", "runs");
    add("s0", "subruns");
    add("e0", "events");
    add("e1", "events");
    add("p0", "products");
    add("p1", "products");
    add("p2", "products");
    add("p3", "products");
    json::Value provider = json::Value::make_object();
    provider["type"] = "yokan";
    provider["provider_id"] = 1;
    provider["config"]["databases"] = std::move(dbs);
    cfg["providers"] = json::Value::make_array();
    cfg["providers"].push_back(std::move(provider));
    return cfg;
}

struct BackendReport {
    std::string backend;
    bool hashes_match = false;
    std::uint64_t accepted = 0;
    ModeResult blob, col;
    double headline_ratio = 0;           // energy-window bytes ratio
    double full_ratio = 0;               // full-cuts bytes ratio
    json::Value selections = json::Value::make_array();
};

BackendReport run_backend(const std::string& backend, const fs::path& dir) {
    BackendReport rep;
    rep.backend = backend;

    rpc::Network network;
    auto cfg = make_service_config(backend);
    auto svc = bedrock::ServiceProcess::create(network, cfg, dir.string());
    if (!svc.ok()) {
        std::printf("ERROR: service boot failed: %s\n", svc.status().to_string().c_str());
        std::exit(1);
    }
    auto connection = (*svc)->descriptor();
    auto store = hepnos::DataStore::connect(network, connection);
    json::Value blob_conn = connection;
    blob_conn["columnar"] = json::Value();  // un-advertise: pure blob client
    auto blob_store = hepnos::DataStore::connect(network, blob_conn);

    nova::Generator gen({.num_files = backend == "map" ? 24u : 8u,
                         .events_per_file = 80,
                         .slices_per_event_mean = 8.0});
    mpisim::run_ranks(4, [&](mpisim::Comm& comm) {
        dataloader::ingest_generated(store, comm, gen, kDataset, 1024);
    });

    auto sels = make_selections();
    const auto mix = zipf_sequence(sels.size(), 12);
    std::vector<query::ClientStats> blob_by_sel(sels.size()), col_by_sel(sels.size());
    rep.blob = run_mix(blob_store, sels, mix, &blob_by_sel);
    rep.col = run_mix(store, sels, mix, &col_by_sel);

    rep.hashes_match = rep.blob.hashes == rep.col.hashes;
    rep.accepted = rep.col.accepted;

    for (std::size_t s = 0; s < sels.size(); ++s) {
        const auto& b = blob_by_sel[s];
        const auto& c = col_by_sel[s];
        if (c.entries == 0) continue;
        // "Decompressed" work: the blob scan deserializes every product blob
        // it examines (bytes_scanned); the columnar scan decodes only the
        // referenced columns + chunk directories (bytes_decompressed), plus
        // the raw blobs of uncovered events (already in its bytes_scanned
        // minus the compressed column reads — small, reported as-is).
        const double blob_per_acc = static_cast<double>(b.bytes_scanned) /
                                    static_cast<double>(b.entries);
        const double col_per_acc = static_cast<double>(c.bytes_decompressed) /
                                   static_cast<double>(c.entries);
        const double ratio = col_per_acc > 0 ? blob_per_acc / col_per_acc : 0;
        if (std::string(sels[s].name) == "energy-window") rep.headline_ratio = ratio;
        if (std::string(sels[s].name) == "full-cuts") rep.full_ratio = ratio;

        json::Value row = json::Value::make_object();
        row["selection"] = sels[s].name;
        row["columns_decoded"] = static_cast<std::uint64_t>(sels[s].columns);
        row["accepted_entries"] = c.entries;
        row["blob_bytes_scanned"] = b.bytes_scanned;
        row["columnar_bytes_decompressed"] = c.bytes_decompressed;
        row["blob_bytes_per_accepted"] = blob_per_acc;
        row["columnar_bytes_per_accepted"] = col_per_acc;
        row["bytes_ratio"] = ratio;
        row["chunks_scanned"] = c.chunks_scanned;
        rep.selections.push_back(std::move(row));
    }
    return rep;
}

void print_reproduction() {
    using namespace hep::bench;
    print_header(
        "Ablation — columnar (vectorized, column-pruned) vs blob pushdown\n"
        "zipfian query mix; expect: identical FNV readback per query,\n"
        ">=3x fewer decompressed bytes per accepted event on the headline\n"
        "energy-window selection, on map and lsm backends");

    const auto dir = fs::temp_directory_path() / "abl_columnar";
    fs::remove_all(dir);
    fs::create_directories(dir);

    json::Value doc = json::Value::make_object();
    doc["bench"] = "columnar";
    doc["queries_per_mode"] = 12;
    doc["backends"] = json::Value::make_array();
    bool all_match = true, headline_ok = true;

    for (const std::string backend : {"map", "lsm"}) {
        auto rep = run_backend(backend, dir / backend);
        all_match = all_match && rep.hashes_match;
        headline_ok = headline_ok && rep.headline_ratio >= 3.0;

        std::printf("\n[%s] FNV readback: %s, accepted entries: %llu\n", backend.c_str(),
                    rep.hashes_match ? "identical" : "MISMATCH",
                    static_cast<unsigned long long>(rep.accepted));
        print_row({"selection", "blob B/acc", "col B/acc", "ratio"});
        for (std::size_t i = 0; i < rep.selections.size(); ++i) {
            const json::Value& row = rep.selections.at(i);
            print_row({std::string(row["selection"].as_string()),
                       fmt(row["blob_bytes_per_accepted"].as_double(), 1),
                       fmt(row["columnar_bytes_per_accepted"].as_double(), 1),
                       fmt(row["bytes_ratio"].as_double(), 2) + "x"});
        }
        print_row({"mode", "wall-s", "cpu-us/event", "decompressed-B"});
        const double blob_cpu = rep.blob.stats.events_examined
                                    ? rep.blob.cpu_seconds * 1e6 /
                                          static_cast<double>(rep.blob.stats.events_examined)
                                    : 0;
        const double col_cpu = rep.col.stats.events_examined
                                   ? rep.col.cpu_seconds * 1e6 /
                                         static_cast<double>(rep.col.stats.events_examined)
                                   : 0;
        print_row({"blob", fmt(rep.blob.wall_seconds, 3), fmt(blob_cpu, 2),
                   std::to_string(rep.blob.stats.bytes_scanned)});
        print_row({"columnar", fmt(rep.col.wall_seconds, 3), fmt(col_cpu, 2),
                   std::to_string(rep.col.stats.bytes_decompressed)});

        json::Value b = json::Value::make_object();
        b["backend"] = backend;
        b["fnv_readback_identical"] = rep.hashes_match;
        b["accepted_entries"] = rep.accepted;
        b["headline_bytes_ratio"] = rep.headline_ratio;
        b["full_cuts_bytes_ratio"] = rep.full_ratio;
        b["blob"]["wall_seconds"] = rep.blob.wall_seconds;
        b["blob"]["cpu_seconds"] = rep.blob.cpu_seconds;
        b["blob"]["cpu_us_per_event"] = blob_cpu;
        b["blob"]["events_examined"] = rep.blob.stats.events_examined;
        b["blob"]["bytes_scanned"] = rep.blob.stats.bytes_scanned;
        b["columnar"]["wall_seconds"] = rep.col.wall_seconds;
        b["columnar"]["cpu_seconds"] = rep.col.cpu_seconds;
        b["columnar"]["cpu_us_per_event"] = col_cpu;
        b["columnar"]["events_examined"] = rep.col.stats.events_examined;
        b["columnar"]["bytes_decompressed"] = rep.col.stats.bytes_decompressed;
        b["columnar"]["chunks_scanned"] = rep.col.stats.chunks_scanned;
        b["selections"] = std::move(rep.selections);
        doc["backends"].push_back(std::move(b));
    }

    doc["results_match"] = all_match;
    doc["headline_ratio_at_least_3x"] = headline_ok;
    std::ofstream("BENCH_columnar.json") << doc.dump(2) << "\n";
    std::printf("\nreadback %s, headline >=3x %s — wrote BENCH_columnar.json\n",
                all_match ? "OK" : "FAILED", headline_ok ? "OK" : "FAILED");
    fs::remove_all(dir);
}

// Micro-benchmark: vectorized batch evaluation vs the row-at-a-time
// interpreter over the same program and data.
void BM_MatchesRowLoop(benchmark::State& state) {
    auto program = query::nova_cuts_program({});
    auto slices = nova::Generator({.num_files = 1, .events_per_file = 64})
                      .make_event(1, 1, 1)
                      .slices;
    std::vector<std::array<double, nova::kNumSliceFields>> rows(slices.size());
    for (std::size_t i = 0; i < slices.size(); ++i) {
        nova::slice_fields(slices[i], rows[i].data());
    }
    std::size_t accepted = 0;
    for (auto _ : state) {
        for (const auto& row : rows) {
            accepted += program.matches(row.data(), nova::kNumSliceFields);
        }
    }
    benchmark::DoNotOptimize(accepted);
    state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(rows.size()));
}
BENCHMARK(BM_MatchesRowLoop);

void BM_MatchesBatch(benchmark::State& state) {
    auto program = query::nova_cuts_program({});
    auto slices = nova::Generator({.num_files = 1, .events_per_file = 64})
                      .make_event(1, 1, 1)
                      .slices;
    const std::size_t n = slices.size();
    std::vector<std::vector<double>> cols(nova::kNumSliceFields, std::vector<double>(n));
    for (std::size_t i = 0; i < n; ++i) {
        double fields[nova::kNumSliceFields];
        nova::slice_fields(slices[i], fields);
        for (std::size_t f = 0; f < nova::kNumSliceFields; ++f) cols[f][i] = fields[f];
    }
    std::vector<const double*> ptrs;
    for (auto& c : cols) ptrs.push_back(c.data());
    std::vector<std::uint8_t> accept(n);
    std::vector<double> scratch;
    for (auto _ : state) {
        program.matches_batch(ptrs.data(), nova::kNumSliceFields, n, accept.data(),
                              scratch);
        benchmark::DoNotOptimize(accept.data());
    }
    state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_MatchesBatch);

// Micro-benchmark: column encode+decode round trip at chunk granularity.
void BM_ColumnCodecRoundTrip(benchmark::State& state) {
    std::vector<std::uint32_t> vals(1024);
    std::uint64_t s = 5;
    for (auto& v : vals) {
        s = s * 6364136223846793005ull + 1442695040888963407ull;
        v = static_cast<std::uint32_t>(s >> 40);  // small-ish: varint-friendly
    }
    std::vector<std::uint32_t> out(vals.size());
    for (auto _ : state) {
        auto block = columnar::encode_block(vals.data(), vals.size(), 4,
                                            columnar::CompressionMode::kAuto);
        benchmark::DoNotOptimize(columnar::decode_block(block, out.data()).ok());
    }
    state.SetBytesProcessed(state.iterations() *
                            static_cast<std::int64_t>(vals.size() * 4));
}
BENCHMARK(BM_ColumnCodecRoundTrip);

}  // namespace

HEP_BENCH_MAIN(print_reproduction)

// Ablation G (paper §V): autotuning the service configuration.
//
// The paper's configuration — 16384-event load batches, 64-event share
// batches, 8 event databases per server — was found with ML-based autotuning.
// This bench runs our deterministic tuner against the Theta DES at 128 nodes
// and shows the optimizer landing in the same region, plus how much worse the
// worst probed configurations are.
#include "autotune/tuner.hpp"
#include "bench_table.hpp"
#include "simcluster/theta.hpp"

namespace {

using namespace hep;
using namespace hep::autotune;
using namespace hep::simcluster;

double objective(const Assignment& a) {
    ThetaParams params;
    params.input_batch = static_cast<std::size_t>(a.at("input_batch"));
    params.share_batch = static_cast<std::size_t>(a.at("share_batch"));
    params.event_dbs_per_server = static_cast<std::size_t>(a.at("event_dbs"));
    params.providers_per_server = static_cast<std::size_t>(a.at("providers"));
    const auto r = simulate_hepnos(params, SimDataset::paper_sample(4), 128, Backend::kMap);
    return r.throughput;
}

void print_reproduction() {
    using bench::fmt_throughput;

    bench::print_header(
        "Ablation G — autotuning the HEPnOS configuration at 128 nodes (paper §V)");

    Tuner tuner(
        {
            {"input_batch", {256, 1024, 4096, 16384, 65536}},
            {"share_batch", {8, 64, 512, 4096, 16384}},
            {"event_dbs", {1, 2, 4, 8, 16}},
            {"providers", {2, 4, 8, 16, 32}},
        },
        objective);

    const auto best = tuner.run(12, 3);

    double worst = best.objective;
    for (const auto& s : tuner.history()) worst = std::min(worst, s.objective);

    std::printf("evaluations: %zu (memoized)\n", tuner.evaluations());
    std::printf("best configuration found:\n");
    for (const auto& [name, value] : best.assignment) {
        std::printf("  %-12s = %lld\n", name.c_str(), static_cast<long long>(value));
    }
    std::printf("best throughput:  %s slices/s\n", fmt_throughput(best.objective).c_str());
    std::printf("worst probed:     %s slices/s (%.1fx below best)\n",
                fmt_throughput(worst).c_str(), best.objective / worst);
    std::printf("paper's choice:   input 16384, share 64, 8 event dbs, 16 providers\n");

    Assignment paper{{"input_batch", 16384}, {"share_batch", 64}, {"event_dbs", 8},
                     {"providers", 16}};
    std::printf("paper config:     %s slices/s (%.3fx of tuned best)\n",
                fmt_throughput(objective(paper)).c_str(), objective(paper) / best.objective);
}

void BM_TunerRun(benchmark::State& state) {
    for (auto _ : state) {
        Tuner tuner({{"input_batch", {1024, 16384}}, {"share_batch", {8, 64, 4096}}},
                    objective);
        auto best = tuner.run(3, 1);
        benchmark::DoNotOptimize(best);
    }
}
BENCHMARK(BM_TunerRun)->Unit(benchmark::kSecond);

}  // namespace

HEP_BENCH_MAIN(print_reproduction)

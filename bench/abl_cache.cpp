// Ablation: hot-product read cache tier (src/cache).
//
// A zipfian hot-key analysis workload (a handful of calibration products
// dominate the reads, paper §II-D's shared-product access pattern) is replayed
// against a 2-server service in three configurations:
//   off     — cache disabled, every load is an owner-provider RPC
//   client  — per-DataStore lease cache only (tier off)
//   tier    — client cache + dedicated cache providers fronting the owners
// Several analysis clients read concurrently; with client caches only, each
// client pays its own compulsory misses against the owner, while the tier
// absorbs all but the first fill of every key service-wide.
//
// A second phase verifies freshness under concurrent ingest: an async write
// batch keeps overwriting the hot products while cached reads run — FNV-1a
// hashes of every read must match the deterministically-known current values
// (the lease cache's synchronous invalidation guarantees read-after-write).
//
// Writes BENCH_cache.json (working directory) with all modes and pass bars:
// >=5x lower p99 vs off, >=5x fewer owner reads at >=90% hit rate, and
// bit-identical readback under ingest.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bedrock/service.hpp"
#include "bench_table.hpp"
#include "cache/lease_cache.hpp"
#include "common/rng.hpp"
#include "hepnos/hepnos.hpp"
#include "rpc/network.hpp"

namespace {

using namespace hep;
using namespace hep::hepnos;
using Clock = std::chrono::steady_clock;

constexpr std::size_t kServers = 2;
constexpr std::size_t kDbsPerRole = 2;
constexpr std::size_t kKeys = 256;          // hot product population
constexpr std::size_t kClients = 4;         // concurrent analysis processes
constexpr std::size_t kReadsPerClient = 2500;
constexpr std::size_t kValueWords = 512;    // 4 KiB values
constexpr double kZipfExponent = 1.2;

json::Value server_config(std::size_t index, bool tier) {
    json::Value cfg = json::Value::make_object();
    cfg["address"] = "cache-bench-server-" + std::to_string(index);
    cfg["margo"]["rpc_xstreams"] = std::size_t{2};
    json::Value providers = json::Value::make_array();
    json::Value yp = json::Value::make_object();
    yp["type"] = "yokan";
    yp["provider_id"] = 1;
    json::Value dbs = json::Value::make_array();
    auto add_db = [&](const std::string& role, std::size_t i) {
        json::Value db = json::Value::make_object();
        db["name"] = role + "-" + std::to_string(index) + "-" + std::to_string(i);
        db["role"] = role;
        db["type"] = "map";
        dbs.push_back(std::move(db));
    };
    add_db("datasets", 0);
    for (std::size_t i = 0; i < kDbsPerRole; ++i) add_db("runs", i);
    for (std::size_t i = 0; i < kDbsPerRole; ++i) add_db("subruns", i);
    for (std::size_t i = 0; i < kDbsPerRole; ++i) add_db("events", i);
    for (std::size_t i = 0; i < kDbsPerRole; ++i) add_db("products", i);
    yp["config"]["databases"] = std::move(dbs);
    providers.push_back(std::move(yp));
    if (tier) {
        json::Value cp = json::Value::make_object();
        cp["type"] = "cache";
        cp["provider_id"] = 90;
        providers.push_back(std::move(cp));
    }
    cfg["providers"] = std::move(providers);
    return cfg;
}

struct Service {
    rpc::Network net;
    std::vector<std::unique_ptr<bedrock::ServiceProcess>> servers;
    json::Value connection;
};

std::unique_ptr<Service> make_service(bool tier) {
    auto svc = std::make_unique<Service>();
    std::vector<json::Value> descriptors;
    for (std::size_t s = 0; s < kServers; ++s) {
        auto proc = bedrock::ServiceProcess::create(svc->net, server_config(s, tier), ".");
        if (!proc.ok()) {
            std::printf("ERROR: service boot failed: %s\n", proc.status().to_string().c_str());
            return nullptr;
        }
        descriptors.push_back((*proc)->descriptor());
        svc->servers.push_back(std::move(proc.value()));
    }
    svc->connection = bedrock::merge_descriptors(descriptors);
    return svc;
}

std::vector<std::uint64_t> payload(std::uint64_t k, std::uint64_t version) {
    std::vector<std::uint64_t> v(kValueWords);
    std::uint64_t h = 1469598103934665603ull ^ (k * 1099511628211ull) ^ version;
    for (auto& w : v) {
        h ^= h << 13;
        h ^= h >> 7;
        h ^= h << 17;
        w = h;
    }
    return v;
}

std::uint64_t fnv1a_words(std::uint64_t h, const std::vector<std::uint64_t>& v) {
    for (std::uint64_t w : v) {
        for (int b = 0; b < 8; ++b) {
            h ^= (w >> (8 * b)) & 0xFF;
            h *= 1099511628211ull;
        }
    }
    return h;
}

std::uint64_t owner_product_gets(Service& svc) {
    std::uint64_t gets = 0;
    for (auto& server : svc.servers) {
        auto* provider = server->find_provider(1);
        for (const auto& name : provider->database_names()) {
            if (name.rfind("products", 0) == 0) {
                gets += provider->find_database(name)->stats().gets;
            }
        }
    }
    return gets;
}

enum class Mode { kOff, kClient, kTier };

const char* mode_name(Mode m) {
    switch (m) {
        case Mode::kOff: return "off";
        case Mode::kClient: return "client";
        default: return "client+tier";
    }
}

struct ModeResult {
    double p50_ms = 0, p99_ms = 0, mean_ms = 0, wall_s = 0;
    std::uint64_t reads = 0;
    std::uint64_t owner_reads = 0;
    std::uint64_t hits = 0, misses = 0;
    [[nodiscard]] double hit_rate() const {
        const auto total = hits + misses;
        return total ? static_cast<double>(hits) / static_cast<double>(total) : 0.0;
    }
};

double quantile(std::vector<double> sorted, double q) {
    if (sorted.empty()) return 0.0;
    const auto idx = static_cast<std::size_t>(q * static_cast<double>(sorted.size() - 1));
    return sorted[idx];
}

ModeResult run_mode(Mode mode) {
    auto svc = make_service(mode == Mode::kTier);
    if (!svc) return {};

    json::Value conn = svc->connection;
    switch (mode) {
        case Mode::kOff:
            conn["cache"] = *json::parse(R"({"enabled": false})");
            break;
        case Mode::kClient:
            conn["cache"] = *json::parse(R"({"lease_ms": 60000, "tier": false})");
            break;
        case Mode::kTier:
            conn["cache"] = *json::parse(R"({"lease_ms": 60000})");
            break;
    }

    // Populate the hot products through a dedicated writer connection.
    auto writer = DataStore::connect(svc->net, conn);
    {
        auto sr = writer.createDataSet("cachebench").createRun(1).createSubRun(1);
        WriteBatch batch(writer.impl());
        for (std::size_t k = 0; k < kKeys; ++k) {
            sr.createEvent(static_cast<EventNumber>(k), &batch)
                .store("h", payload(k, 0), &batch);
        }
        batch.flush();
    }

    // Each analysis client is its own connection (own lease cache), with the
    // event handles resolved outside the timed region.
    std::vector<DataStore> clients;
    std::vector<std::vector<Event>> events(kClients);
    for (std::size_t c = 0; c < kClients; ++c) {
        clients.push_back(DataStore::connect(svc->net, conn));
        auto sr = clients.back()["cachebench"][1][1];
        events[c].reserve(kKeys);
        for (std::size_t k = 0; k < kKeys; ++k) {
            events[c].push_back(sr[static_cast<EventNumber>(k)]);
        }
    }

    const std::uint64_t gets_before = owner_product_gets(*svc);
    // Warm pass (untimed, but counted in owner reads and hit rate): every
    // client touches every key once, paying the compulsory misses. The timed
    // loop below then measures steady-state hot-read latency — the number an
    // analysis loop over a long run actually sees.
    for (std::size_t c = 0; c < kClients; ++c) {
        for (std::size_t k = 0; k < kKeys; ++k) {
            std::vector<std::uint64_t> value;
            if (!events[c][k].load("h", value)) {
                std::printf("ERROR: warm load of key %zu failed\n", k);
                return {};
            }
        }
    }
    Rng rng(20260809);
    ZipfSampler zipf(kKeys, kZipfExponent);
    ModeResult r;
    std::vector<double> samples;
    samples.reserve(kClients * kReadsPerClient);
    const auto t0 = Clock::now();
    for (std::size_t i = 0; i < kClients * kReadsPerClient; ++i) {
        const std::size_t c = i % kClients;
        const std::size_t k = zipf.sample(rng);
        std::vector<std::uint64_t> value;
        const auto rt0 = Clock::now();
        const bool ok = events[c][k].load("h", value);
        const double ms = std::chrono::duration<double, std::milli>(Clock::now() - rt0).count();
        if (!ok || value.size() != kValueWords) {
            std::printf("ERROR: load of key %zu failed in mode %s\n", k, mode_name(mode));
            continue;
        }
        samples.push_back(ms);
        ++r.reads;
    }
    r.wall_s = std::chrono::duration<double>(Clock::now() - t0).count();
    r.owner_reads = owner_product_gets(*svc) - gets_before;
    for (auto& client : clients) {
        if (const auto& cache = client.impl()->product_cache()) {
            const auto counters = cache->counters();
            r.hits += counters.hits;
            r.misses += counters.misses;
        }
    }
    std::sort(samples.begin(), samples.end());
    r.p50_ms = quantile(samples, 0.50);
    r.p99_ms = quantile(samples, 0.99);
    double sum = 0;
    for (double s : samples) sum += s;
    r.mean_ms = samples.empty() ? 0 : sum / static_cast<double>(samples.size());
    return r;
}

struct IntegrityResult {
    std::uint64_t rounds = 0;
    std::uint64_t reads = 0;
    std::uint64_t expected_hash = 0;
    std::uint64_t readback_hash = 0;
    [[nodiscard]] bool match() const { return expected_hash == readback_hash; }
};

/// Concurrent-ingest freshness: async batches keep overwriting the hot
/// products while cached reads run; every read must return the value the
/// just-acknowledged batch wrote (lease invalidation, not lease expiry).
IntegrityResult run_integrity() {
    IntegrityResult r;
    auto svc = make_service(/*tier=*/true);
    if (!svc) return r;
    json::Value conn = svc->connection;
    conn["cache"] = *json::parse(R"({"lease_ms": 60000})");
    auto store = DataStore::connect(svc->net, conn);
    auto sr = store.createDataSet("ingest").createRun(1).createSubRun(1);
    constexpr std::size_t kHot = 64;
    std::vector<Event> hot;
    for (std::size_t k = 0; k < kHot; ++k) {
        hot.push_back(sr.createEvent(static_cast<EventNumber>(k)));
        hot.back().store("w", payload(k, 0));
    }

    std::uint64_t expected = 1469598103934665603ull;
    std::uint64_t readback = 1469598103934665603ull;
    constexpr std::size_t kRounds = 40;
    for (std::size_t round = 1; round <= kRounds; ++round) {
        {
            AsyncWriteBatch batch(store.impl());
            for (std::size_t k = 0; k < kHot; ++k) {
                hot[k].store("w", payload(k, round), &batch);
            }
            batch.flush();
            batch.wait();
        }
        // Reads race the NEXT round's ingest only in wall-clock terms; the
        // correctness contract is that after wait() every cached read is the
        // new version, never the (still-leased) old one.
        for (std::size_t k = 0; k < kHot; ++k) {
            std::vector<std::uint64_t> value;
            if (!hot[k].load("w", value)) {
                std::printf("ERROR: integrity load of key %zu failed\n", k);
                return r;
            }
            expected = fnv1a_words(expected, payload(k, round));
            readback = fnv1a_words(readback, value);
            ++r.reads;
        }
        ++r.rounds;
    }
    r.expected_hash = expected;
    r.readback_hash = readback;
    return r;
}

void print_reproduction() {
    using namespace hep::bench;
    print_header(
        "Ablation — hot-product read cache tier: zipfian reads, 4 clients\n"
        "expect: >=5x lower p99 and >=5x fewer owner reads at >=90% hit rate");

    ModeResult off = run_mode(Mode::kOff);
    ModeResult client = run_mode(Mode::kClient);
    ModeResult tier = run_mode(Mode::kTier);

    print_row({"mode", "p50-ms", "p99-ms", "mean-ms", "owner-reads", "hit-rate", "wall-s"});
    for (const auto* m : {&off, &client, &tier}) {
        const char* name = m == &off ? "off" : (m == &client ? "client" : "client+tier");
        print_row({name, fmt(m->p50_ms, 4), fmt(m->p99_ms, 4), fmt(m->mean_ms, 4),
                   std::to_string(m->owner_reads), fmt(m->hit_rate(), 3), fmt(m->wall_s, 2)});
    }

    const double p99_ratio = client.p99_ms > 0 ? off.p99_ms / client.p99_ms : 0;
    const double owner_ratio_client =
        client.owner_reads > 0 ? static_cast<double>(off.owner_reads) /
                                     static_cast<double>(client.owner_reads)
                               : 0;
    const double owner_ratio_tier =
        tier.owner_reads > 0
            ? static_cast<double>(off.owner_reads) / static_cast<double>(tier.owner_reads)
            : 0;
    std::printf("\np99: off=%.4fms client=%.4fms (%.1fx lower)\n", off.p99_ms, client.p99_ms,
                p99_ratio);
    std::printf("owner reads: off=%llu client=%llu (%.1fx fewer) tier=%llu (%.1fx fewer)\n",
                static_cast<unsigned long long>(off.owner_reads),
                static_cast<unsigned long long>(client.owner_reads), owner_ratio_client,
                static_cast<unsigned long long>(tier.owner_reads), owner_ratio_tier);
    std::printf("hit rate: client=%.3f tier=%.3f (want >= 0.9)\n", client.hit_rate(),
                tier.hit_rate());
    if (p99_ratio < 5.0) std::printf("WARNING: p99 improvement below the 5x target\n");
    if (owner_ratio_client < 5.0) std::printf("WARNING: owner-read reduction below 5x\n");
    if (client.hit_rate() < 0.9) std::printf("WARNING: hit rate below the 90%% target\n");

    IntegrityResult integ = run_integrity();
    std::printf("\ningest freshness: %llu rounds, %llu cached reads\n",
                static_cast<unsigned long long>(integ.rounds),
                static_cast<unsigned long long>(integ.reads));
    std::printf("fnv1a: expected=%016llx readback=%016llx -> %s\n",
                static_cast<unsigned long long>(integ.expected_hash),
                static_cast<unsigned long long>(integ.readback_hash),
                integ.match() ? "bit-identical" : "MISMATCH");
    if (!integ.match()) std::printf("ERROR: cached reads went stale under ingest!\n");

    json::Value doc = json::Value::make_object();
    doc["bench"] = "cache";
    doc["config"]["servers"] = kServers;
    doc["config"]["clients"] = kClients;
    doc["config"]["keys"] = kKeys;
    doc["config"]["reads_per_client"] = kReadsPerClient;
    doc["config"]["value_bytes"] = kValueWords * sizeof(std::uint64_t);
    doc["config"]["zipf_exponent"] = kZipfExponent;
    auto fill = [](json::Value& v, const ModeResult& m) {
        v["p50_ms"] = m.p50_ms;
        v["p99_ms"] = m.p99_ms;
        v["mean_ms"] = m.mean_ms;
        v["wall_s"] = m.wall_s;
        v["reads"] = m.reads;
        v["owner_reads"] = m.owner_reads;
        v["hits"] = m.hits;
        v["misses"] = m.misses;
        v["hit_rate"] = m.hit_rate();
    };
    fill(doc["off"], off);
    fill(doc["client"], client);
    fill(doc["tier"], tier);
    doc["p99_ratio"] = p99_ratio;
    doc["owner_read_ratio_client"] = owner_ratio_client;
    doc["owner_read_ratio_tier"] = owner_ratio_tier;
    doc["integrity"]["rounds"] = integ.rounds;
    doc["integrity"]["reads"] = integ.reads;
    doc["integrity"]["expected_fnv1a"] = integ.expected_hash;
    doc["integrity"]["readback_fnv1a"] = integ.readback_hash;
    doc["integrity"]["bit_identical"] = integ.match();
    std::ofstream("BENCH_cache.json") << doc.dump(2) << "\n";
    std::printf("wrote BENCH_cache.json\n");
}

// Micro-benchmarks: cache hot-path costs.

void BM_LeaseCacheHit(benchmark::State& state) {
    cache::LeaseCache c;
    auto t = c.ticket("db", "t");
    c.fill("hot-key", hep::Buffer::adopt(std::string(4096, 'v')).view(0, 4096), 1, t);
    for (auto _ : state) {
        benchmark::DoNotOptimize(c.lookup("hot-key"));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LeaseCacheHit);

void BM_LeaseCacheFillEvict(benchmark::State& state) {
    cache::CacheOptions opts;
    opts.max_entries = 128;
    cache::LeaseCache c(opts);
    auto t = c.ticket("db", "t");
    hep::Buffer value = hep::Buffer::adopt(std::string(4096, 'v'));
    std::uint64_t i = 0;
    for (auto _ : state) {
        c.fill("key-" + std::to_string(i++ % 1024), value.view(0, 4096), i, t);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LeaseCacheFillEvict);

void BM_ZipfSample(benchmark::State& state) {
    Rng rng(7);
    ZipfSampler zipf(4096, 1.1);
    for (auto _ : state) {
        benchmark::DoNotOptimize(zipf.sample(rng));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ZipfSample);

}  // namespace

HEP_BENCH_MAIN(print_reproduction)

// Ablation C (paper §II-C3): parent-key placement vs full-key placement.
//
// "By relying on consistent hashing of the full key for placement, listing
//  the elements of a container would have required interrogating all the
//  servers and merge their results. Instead, HEPnOS carefully places the keys
//  on servers so that iterating over the elements of a container only
//  involves using the iterator functionalities of one database."
//
// We store the same 10k events under both placement policies across 8
// databases and compare full-iteration cost: one cursor vs merge-across-all.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <queue>

#include "bench_table.hpp"
#include "common/endian.hpp"
#include "common/hash.hpp"
#include "common/rng.hpp"
#include "common/uuid.hpp"
#include "yokan/map_backend.hpp"

namespace {

using namespace hep;

constexpr std::size_t kDatabases = 8;
constexpr std::uint64_t kEvents = 10000;

struct Placement {
    std::vector<std::unique_ptr<yokan::Database>> dbs;
    HashRing ring{kDatabases};
    std::string parent;  // subrun key

    explicit Placement(bool parent_hash) {
        for (std::size_t i = 0; i < kDatabases; ++i) {
            dbs.push_back(std::make_unique<yokan::MapBackend>());
        }
        const Uuid ds = Uuid::from_name("placement-bench");
        parent = std::string(ds.bytes());
        append_be64(parent, 1);  // run
        append_be64(parent, 1);  // subrun
        for (std::uint64_t e = 0; e < kEvents; ++e) {
            std::string key = parent;
            append_be64(key, e);
            // HEPnOS policy: hash the PARENT; the alternative hashes the key.
            const std::size_t target =
                parent_hash ? ring.lookup(parent) : ring.lookup(key);
            (void)dbs[target]->put(key, "", true);
        }
    }
};

void BM_IterateParentHash(benchmark::State& state) {
    Placement placement(/*parent_hash=*/true);
    const std::size_t owner = placement.ring.lookup(placement.parent);
    for (auto _ : state) {
        // One cursor on one database — the HEPnOS fast path.
        std::uint64_t count = 0;
        std::string after = placement.parent;
        while (true) {
            auto page = placement.dbs[owner]->list_keys(after, placement.parent, 512);
            if (!page.ok() || page->empty()) break;
            count += page->size();
            after = page->back();
        }
        if (count != kEvents) state.SkipWithError("missing events");
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * kEvents);
}
BENCHMARK(BM_IterateParentHash)->Unit(benchmark::kMillisecond);

void BM_IterateFullKeyHash(benchmark::State& state) {
    Placement placement(/*parent_hash=*/false);
    for (auto _ : state) {
        // Interrogate every database, then k-way merge to restore order.
        std::vector<std::vector<std::string>> per_db(kDatabases);
        for (std::size_t d = 0; d < kDatabases; ++d) {
            std::string after = placement.parent;
            while (true) {
                auto page = placement.dbs[d]->list_keys(after, placement.parent, 512);
                if (!page.ok() || page->empty()) break;
                per_db[d].insert(per_db[d].end(), page->begin(), page->end());
                after = page->back();
            }
        }
        using HeapItem = std::pair<std::string_view, std::size_t>;
        std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>> heap;
        std::vector<std::size_t> cursor(kDatabases, 0);
        for (std::size_t d = 0; d < kDatabases; ++d) {
            if (!per_db[d].empty()) heap.emplace(per_db[d][0], d);
        }
        std::uint64_t count = 0;
        while (!heap.empty()) {
            auto [key, d] = heap.top();
            heap.pop();
            ++count;
            if (++cursor[d] < per_db[d].size()) heap.emplace(per_db[d][cursor[d]], d);
        }
        if (count != kEvents) state.SkipWithError("missing events");
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * kEvents);
}
BENCHMARK(BM_IterateFullKeyHash)->Unit(benchmark::kMillisecond);

void BM_PointLookupEitherPlacement(benchmark::State& state) {
    // Point access cost is the same under both policies (one hash, one get) —
    // the design gives up nothing to gain single-cursor iteration.
    Placement placement(/*parent_hash=*/true);
    const std::size_t owner = placement.ring.lookup(placement.parent);
    Rng rng(3);
    for (auto _ : state) {
        std::string key = placement.parent;
        append_be64(key, rng.uniform(0, kEvents - 1));
        auto v = placement.dbs[owner]->exists(key);
        benchmark::DoNotOptimize(v);
    }
}
BENCHMARK(BM_PointLookupEitherPlacement);

void print_reproduction() {
    hep::bench::print_header(
        "Ablation C — container-key placement (paper §II-C3)\n"
        "expect: parent-hash iteration (one cursor) beats full-key placement\n"
        "(interrogate all databases + merge), at equal point-lookup cost");
}

}  // namespace

HEP_BENCH_MAIN(print_reproduction)

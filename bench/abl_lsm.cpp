// Ablation F: rockslite (RocksDB-substitute) internals — the mechanisms
// behind the Fig. 2 backend gap: memtable flushes, compaction, bloom
// filters, block cache, and read amplification as data accumulates.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "bench_table.hpp"
#include "common/json.hpp"
#include "common/rng.hpp"
#include "yokan/lsm/lsm_db.hpp"

namespace {

using namespace hep;
using namespace hep::yokan;
namespace fs = std::filesystem;

std::unique_ptr<lsm::LsmDb> make_db(const std::string& tag, std::size_t memtable_bytes) {
    lsm::LsmOptions opts;
    const auto dir = fs::temp_directory_path() / ("bench_lsm_" + tag);
    fs::remove_all(dir);
    opts.path = dir.string();
    opts.memtable_bytes = memtable_bytes;
    return lsm::LsmDb::open(std::move(opts)).value();
}

std::string key_of(std::uint64_t i) {
    char buf[24];
    std::snprintf(buf, sizeof(buf), "k%012llu", static_cast<unsigned long long>(i));
    return buf;
}

void BM_PutWithMemtableSize(benchmark::State& state) {
    // Smaller memtables flush (and compact) more often — write amplification.
    auto db = make_db("memtable" + std::to_string(state.range(0)),
                      static_cast<std::size_t>(state.range(0)));
    const std::string value(256, 'v');
    std::uint64_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(db->put(key_of(i++), value, true));
    }
    const auto stats = db->lsm_stats();
    state.counters["flushes"] = static_cast<double>(stats.flushes);
    state.counters["compactions"] = static_cast<double>(stats.compactions);
    state.counters["sst_files"] = static_cast<double>(stats.sst_files_written);
}
BENCHMARK(BM_PutWithMemtableSize)->Arg(64 << 10)->Arg(1 << 20)->Arg(16 << 20);

void BM_GetColdVsDatasetSize(benchmark::State& state) {
    // Read amplification: point gets against a growing number of levels.
    const auto keys = static_cast<std::uint64_t>(state.range(0));
    auto db = make_db("reads" + std::to_string(keys), 256 << 10);
    const std::string value(256, 'v');
    for (std::uint64_t i = 0; i < keys; ++i) {
        (void)db->put(key_of(i), value, true);
    }
    (void)db->flush();
    Rng rng(11);
    for (auto _ : state) {
        auto v = db->get(key_of(rng.uniform(0, keys - 1)));
        benchmark::DoNotOptimize(v);
    }
    const auto stats = db->lsm_stats();
    state.counters["cache_hit_pct"] =
        100.0 * static_cast<double>(stats.cache_hits) /
        static_cast<double>(std::max<std::uint64_t>(1, stats.cache_hits + stats.cache_misses));
    state.counters["levels_with_files"] = [&] {
        double levels = 0;
        for (auto n : stats.files_per_level) levels += n > 0 ? 1 : 0;
        return levels;
    }();
}
BENCHMARK(BM_GetColdVsDatasetSize)->Arg(5000)->Arg(50000)->Arg(200000);

void BM_BloomNegativeLookups(benchmark::State& state) {
    auto db = make_db("bloomneg", 256 << 10);
    for (std::uint64_t i = 0; i < 50000; ++i) {
        (void)db->put(key_of(i), "v", true);
    }
    (void)db->flush();
    std::uint64_t i = 0;
    for (auto _ : state) {
        auto v = db->get("missing" + std::to_string(i++));
        benchmark::DoNotOptimize(v);
    }
}
BENCHMARK(BM_BloomNegativeLookups);

void BM_FullScan(benchmark::State& state) {
    auto db = make_db("scan", 256 << 10);
    constexpr std::uint64_t kKeys = 50000;
    for (std::uint64_t i = 0; i < kKeys; ++i) {
        (void)db->put(key_of(i), std::string(64, 'v'), true);
    }
    (void)db->flush();
    for (auto _ : state) {
        std::uint64_t n = 0;
        (void)db->scan("", "", true, [&](std::string_view, std::string_view) {
            ++n;
            return true;
        });
        if (n != kKeys) state.SkipWithError("scan lost keys");
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * kKeys);
}
BENCHMARK(BM_FullScan)->Unit(benchmark::kMillisecond);

void BM_WalAppend(benchmark::State& state) {
    const auto dir = fs::temp_directory_path() / "bench_lsm_wal";
    fs::remove_all(dir);
    fs::create_directories(dir);
    lsm::Wal wal;
    if (!wal.open((dir / "wal.log").string()).ok()) {
        state.SkipWithError("cannot open wal");
        return;
    }
    const std::string value(static_cast<std::size_t>(state.range(0)), 'v');
    std::uint64_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(wal.append_put(key_of(i++), value));
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_WalAppend)->Arg(64)->Arg(1024);

// ---------------------------------------------------------------------------
// Foreground-vs-background compaction ablation (BENCH_lsm_bg.json).
//
// Same ingest (kBgKeys puts of 1 KiB values into a 64 KiB memtable, so every
// ~60th put used to eat a full flush — and periodically a multi-level
// compaction — inline) run twice: once with background_compaction off
// (seed behaviour: flush+compaction on the writer's critical path) and once
// with the pipelined write path (seal + handoff to the compaction ULT).
//
// The ingest is open-loop: a fixed sleep between puts (not counted in put
// latency) models a producer with arrival-rate headroom — the regime
// pipelining targets. The sleep must be a real yield, not a spin: the
// compaction worker drains during producer idle time (on a single core that
// is the ONLY time it can run), exactly like a PEP that computes between
// stores. At sustained max rate both modes are bound by the same
// flush+compaction work — background just trades inline flushes for
// backpressure stalls — so there the p99s converge by design.
// Pass bar: p99 put latency >= 5x lower with background compaction, and a
// bit-identical readback (same keys, same bytes, in the same order).
// ---------------------------------------------------------------------------

constexpr std::uint64_t kBgKeys = 20000;
constexpr std::chrono::microseconds kBgThinkTime{200};

std::string bg_value_of(std::uint64_t i) {
    std::string v(1024, static_cast<char>('a' + i % 26));
    // Stamp the key into the value so corruption cannot hash-collide away.
    const std::string k = key_of(i);
    v.replace(8, k.size(), k);
    return v;
}

std::uint64_t fnv1a(std::uint64_t h, std::string_view s) {
    for (unsigned char c : s) {
        h ^= c;
        h *= 1099511628211ULL;
    }
    return h;
}

struct BgRun {
    double p50_us = 0, p99_us = 0, max_us = 0, wall_s = 0;
    std::uint64_t count = 0, hash = 0;
    lsm::LsmStats stats;
};

// tmpfs when available: the ablation isolates what pipelining can actually
// hide (flush/compaction work off the put path). On a single shared spindle
// the writer's WAL appends contend with the worker's SST writes in the
// kernel writeback path — interference no scheduling can remove.
fs::path bg_scratch_dir() {
    std::error_code ec;
    if (fs::is_directory("/dev/shm", ec)) return "/dev/shm";
    return fs::temp_directory_path();
}

BgRun run_bg_ingest(const std::string& tag, bool background) {
    lsm::LsmOptions opts;
    const auto dir = bg_scratch_dir() / ("bench_lsm_bg_" + tag);
    fs::remove_all(dir);
    opts.path = dir.string();
    opts.memtable_bytes = 64 << 10;
    opts.background_compaction = background;
    // Generous backpressure budget: the ablation measures pipelining, not
    // stall tuning, so give the worker room before writers are throttled.
    opts.max_immutable_memtables = 8;
    opts.l0_slowdown_trigger = 32;
    opts.l0_stop_trigger = 64;
    auto db = lsm::LsmDb::open(std::move(opts)).value();

    std::vector<std::uint64_t> lat_ns(kBgKeys);
    const auto wall0 = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < kBgKeys; ++i) {
        const std::string key = key_of(i);
        const std::string value = bg_value_of(i);
        const auto t0 = std::chrono::steady_clock::now();
        (void)db->put(key, value, true);
        const auto t1 = std::chrono::steady_clock::now();
        lat_ns[i] = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
        std::this_thread::sleep_for(kBgThinkTime);  // producer think time
    }
    BgRun r;
    r.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() - wall0).count();

    // Drain all pending flush/compaction work, then hash the full readback.
    (void)db->flush();
    r.hash = 14695981039346656037ULL;
    (void)db->scan("", "", true, [&](std::string_view k, std::string_view v) {
        r.hash = fnv1a(fnv1a(r.hash, k), v);
        ++r.count;
        return true;
    });
    r.stats = db->lsm_stats();

    std::sort(lat_ns.begin(), lat_ns.end());
    r.p50_us = static_cast<double>(lat_ns[kBgKeys / 2]) / 1e3;
    r.p99_us = static_cast<double>(lat_ns[kBgKeys * 99 / 100]) / 1e3;
    r.max_us = static_cast<double>(lat_ns.back()) / 1e3;
    db.reset();
    fs::remove_all(dir);
    return r;
}

void run_bg_ablation() {
    const BgRun fg = run_bg_ingest("foreground", false);
    const BgRun bg = run_bg_ingest("background", true);

    const double ratio = bg.p99_us > 0 ? fg.p99_us / bg.p99_us : 0;
    const bool identical =
        fg.hash == bg.hash && fg.count == bg.count && fg.count == kBgKeys;

    json::Value doc = json::Value::make_object();
    doc["bench"] = std::string("lsm_background_compaction");
    doc["keys"] = static_cast<std::int64_t>(kBgKeys);
    doc["value_bytes"] = static_cast<std::int64_t>(1024);
    doc["memtable_bytes"] = static_cast<std::int64_t>(64 << 10);
    doc["think_time_us"] = static_cast<std::int64_t>(kBgThinkTime.count());
    auto fill = [](json::Value& out, const BgRun& r) {
        out["p50_put_us"] = r.p50_us;
        out["p99_put_us"] = r.p99_us;
        out["max_put_us"] = r.max_us;
        out["ingest_mb_per_s"] = static_cast<double>(kBgKeys) * 1024 / 1e6 / r.wall_s;
        out["flushes"] = static_cast<std::int64_t>(r.stats.flushes);
        out["compactions"] = static_cast<std::int64_t>(r.stats.compactions);
        out["compactions_background"] =
            static_cast<std::int64_t>(r.stats.compactions_background);
        out["compactions_inline"] = static_cast<std::int64_t>(r.stats.compactions_inline);
        out["write_stalls"] = static_cast<std::int64_t>(r.stats.write_stalls);
        out["write_stall_micros"] = static_cast<std::int64_t>(r.stats.write_stall_micros);
        out["readback_keys"] = static_cast<std::int64_t>(r.count);
        out["readback_fnv1a"] = static_cast<std::int64_t>(r.hash);
    };
    fill(doc["foreground"], fg);
    fill(doc["background"], bg);
    doc["p99_ratio"] = ratio;
    doc["readback_identical"] = identical;
    doc["pass"] = ratio >= 5.0 && identical;
    std::ofstream("BENCH_lsm_bg.json") << doc.dump(2) << "\n";

    std::printf(
        "\nforeground-vs-background compaction (%llu puts x 1KiB):\n"
        "  foreground: p50 %.1fus  p99 %.1fus  max %.1fus\n"
        "  background: p50 %.1fus  p99 %.1fus  max %.1fus  (stalls=%llu)\n"
        "  p99 ratio %.1fx (bar >=5x)  readback %s  -> %s (BENCH_lsm_bg.json)\n\n",
        static_cast<unsigned long long>(kBgKeys), fg.p50_us, fg.p99_us, fg.max_us, bg.p50_us,
        bg.p99_us, bg.max_us, static_cast<unsigned long long>(bg.stats.write_stalls), ratio,
        identical ? "bit-identical" : "MISMATCH", (ratio >= 5.0 && identical) ? "PASS" : "FAIL");
}

// ---------------------------------------------------------------------------
// LSM-internals ablation (BENCH_lsm_internals.json).
//
// Two controlled experiments on tmpfs, isolating this round of internals
// work:
//   1. memtable representation — the same single-writer put workload (no
//      seals: the memtable budget exceeds the ingest) against the legacy
//      std::map rep and the arena-backed concurrent skiplist. Everything
//      else (WAL append, stamping, stats) is identical, so the ratio is the
//      rep swap alone. The headline run ingests in acquisition (event)
//      order — HEPnOS producers write events in order, and the skiplist's
//      splice cache turns that into O(1) inserts; a shuffled run is
//      reported as the adversarial bound. Bar: skiplist >= 1.5x puts/s on
//      the ordered workload.
//   2. block compression — identical datasets written with
//      block_compression none vs auto, then uniform random cold gets with
//      BOTH cache tiers disabled so every get pays one full block fetch
//      (and decode). Bar: >= 1.3x gets/s OR >= 2x fewer disk bytes per get.
// ---------------------------------------------------------------------------

constexpr std::uint64_t kMemKeys = 200000;
constexpr std::uint64_t kCompKeys = 20000;
constexpr std::uint64_t kCompGets = 20000;

std::string wide_key_of(std::uint64_t i) {
    // 40-byte keys: long enough that the map rep's per-key std::string pays a
    // heap allocation, as HEP product keys (run/subrun/event/label) do. The
    // fixed-width fields make lexicographic order equal event order, so
    // iterating i ascending reproduces acquisition-order ingest (the HEPnOS
    // write pattern: producers append events run by run, in order).
    char buf[48];
    std::snprintf(buf, sizeof buf, "run%08llu.sub%08llu.evt%012llu",
                  static_cast<unsigned long long>(i / 100000),
                  static_cast<unsigned long long>(i / 10000),
                  static_cast<unsigned long long>(i));
    return buf;
}

struct MemRun {
    double puts_per_s = 0;
    std::uint64_t count = 0;
};

MemRun run_memtable_ingest(const std::string& kind, bool ordered) {
    lsm::LsmOptions opts;
    const auto dir = bg_scratch_dir() / ("bench_lsm_mem_" + kind);
    fs::remove_all(dir);
    opts.path = dir.string();
    opts.memtable = kind;
    opts.memtable_bytes = 256 << 20;  // never seals: pure rep ablation
    auto db = lsm::LsmDb::open(std::move(opts)).value();

    std::vector<std::string> keys(kMemKeys);
    for (std::uint64_t i = 0; i < kMemKeys; ++i) keys[i] = wide_key_of(i);
    if (!ordered) {  // adversarial variant: same keys, shuffled ingest order
        Rng rng(41);
        for (std::uint64_t i = kMemKeys - 1; i > 0; --i) {
            std::swap(keys[i], keys[rng.uniform(0, i)]);
        }
    }
    const std::string value(64, 'v');

    const auto t0 = std::chrono::steady_clock::now();
    for (const auto& key : keys) {
        (void)db->put(key, value, true);
    }
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

    MemRun r;
    r.puts_per_s = static_cast<double>(kMemKeys) / secs;
    (void)db->scan("", "", false, [&](std::string_view, std::string_view) {
        ++r.count;
        return true;
    });
    db.reset();
    fs::remove_all(dir);
    return r;
}

std::string comp_value_of(std::uint64_t i) {
    // Compressible the way HEP product payloads are: long runs with a little
    // per-record variation.
    std::string v(512, static_cast<char>('a' + i % 26));
    const std::string k = key_of(i);
    v.replace(16, k.size(), k);
    return v;
}

struct CompRun {
    double gets_per_s = 0;
    double bytes_per_get = 0;
    std::uint64_t misses = 0;
    std::uint64_t table_bytes = 0;
};

CompRun run_compression_reads(const std::string& compression) {
    lsm::LsmOptions opts;
    const auto dir = bg_scratch_dir() / ("bench_lsm_comp_" + compression);
    fs::remove_all(dir);
    opts.path = dir.string();
    opts.memtable_bytes = 256 << 10;
    opts.block_compression = compression;
    opts.block_cache_bytes = 0;       // every get is a cold block fetch
    opts.compressed_cache_bytes = 0;
    auto db = lsm::LsmDb::open(std::move(opts)).value();

    for (std::uint64_t i = 0; i < kCompKeys; ++i) {
        (void)db->put(key_of(i), comp_value_of(i), true);
    }
    (void)db->flush();

    CompRun r;
    for (const auto& e : fs::directory_iterator(dir)) {
        if (e.path().extension() == ".sst") r.table_bytes += fs::file_size(e.path());
    }

    const auto before = db->lsm_stats();
    Rng rng(7);
    std::uint64_t bad = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t g = 0; g < kCompGets; ++g) {
        const std::uint64_t i = rng.uniform(0, kCompKeys - 1);
        auto v = db->get(key_of(i));
        if (!v.ok() || *v != comp_value_of(i)) ++bad;
    }
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    const auto after = db->lsm_stats();

    r.gets_per_s = static_cast<double>(kCompGets) / secs;
    r.bytes_per_get =
        static_cast<double>(after.cache_disk_bytes_read - before.cache_disk_bytes_read) /
        static_cast<double>(kCompGets);
    r.misses = bad;
    db.reset();
    fs::remove_all(dir);
    return r;
}

void run_internals_ablation() {
    // Headline workload is acquisition-order ingest — the write pattern the
    // skiplist's splice cache is built for; the shuffled variant is reported
    // alongside as the adversarial bound.
    const MemRun map_run = run_memtable_ingest("map", /*ordered=*/true);
    const MemRun skip_run = run_memtable_ingest("skiplist", /*ordered=*/true);
    const MemRun map_rnd = run_memtable_ingest("map", /*ordered=*/false);
    const MemRun skip_rnd = run_memtable_ingest("skiplist", /*ordered=*/false);
    const double put_ratio =
        map_run.puts_per_s > 0 ? skip_run.puts_per_s / map_run.puts_per_s : 0;
    const double random_put_ratio =
        map_rnd.puts_per_s > 0 ? skip_rnd.puts_per_s / map_rnd.puts_per_s : 0;
    const bool mem_intact = map_run.count == kMemKeys && skip_run.count == kMemKeys &&
                            map_rnd.count == kMemKeys && skip_rnd.count == kMemKeys;

    const CompRun raw = run_compression_reads("none");
    const CompRun comp = run_compression_reads("auto");
    const double get_ratio = raw.gets_per_s > 0 ? comp.gets_per_s / raw.gets_per_s : 0;
    const double bytes_ratio =
        comp.bytes_per_get > 0 ? raw.bytes_per_get / comp.bytes_per_get : 0;
    const bool reads_intact = raw.misses == 0 && comp.misses == 0;

    const bool put_pass = put_ratio >= 1.5;
    const bool read_pass = get_ratio >= 1.3 || bytes_ratio >= 2.0;
    const bool pass = put_pass && read_pass && mem_intact && reads_intact;

    json::Value doc = json::Value::make_object();
    doc["bench"] = std::string("lsm_internals");
    doc["memtable_keys"] = static_cast<std::int64_t>(kMemKeys);
    doc["memtable_value_bytes"] = static_cast<std::int64_t>(64);
    doc["compression_keys"] = static_cast<std::int64_t>(kCompKeys);
    doc["compression_value_bytes"] = static_cast<std::int64_t>(512);
    doc["put_workload"] = std::string("event-ordered ingest (acquisition order)");
    doc["map_puts_per_s"] = map_run.puts_per_s;
    doc["skiplist_puts_per_s"] = skip_run.puts_per_s;
    doc["put_throughput_ratio"] = put_ratio;
    doc["put_bar"] = 1.5;
    doc["map_random_puts_per_s"] = map_rnd.puts_per_s;
    doc["skiplist_random_puts_per_s"] = skip_rnd.puts_per_s;
    doc["random_put_throughput_ratio"] = random_put_ratio;
    doc["raw_gets_per_s"] = raw.gets_per_s;
    doc["compressed_gets_per_s"] = comp.gets_per_s;
    doc["cold_get_throughput_ratio"] = get_ratio;
    doc["cold_get_bar"] = 1.3;
    doc["raw_bytes_per_get"] = raw.bytes_per_get;
    doc["compressed_bytes_per_get"] = comp.bytes_per_get;
    doc["bytes_per_get_ratio"] = bytes_ratio;
    doc["bytes_per_get_bar"] = 2.0;
    doc["raw_table_bytes"] = static_cast<std::int64_t>(raw.table_bytes);
    doc["compressed_table_bytes"] = static_cast<std::int64_t>(comp.table_bytes);
    doc["readback_intact"] = mem_intact && reads_intact;
    doc["pass"] = pass;
    std::ofstream("BENCH_lsm_internals.json") << doc.dump(2) << "\n";

    std::printf(
        "\nLSM internals (memtable rep + block compression):\n"
        "  puts/s (event-ordered): map %.0f  skiplist %.0f  -> %.2fx (bar >=1.5x) %s\n"
        "  puts/s (shuffled):      map %.0f  skiplist %.0f  -> %.2fx (informational)\n"
        "  cold gets/s: raw %.0f  compressed %.0f  -> %.2fx (bar >=1.3x)\n"
        "  disk bytes/get: raw %.0f  compressed %.0f  -> %.2fx (bar >=2x)\n"
        "  tables: raw %.1f MB  compressed %.1f MB  readback %s  -> %s "
        "(BENCH_lsm_internals.json)\n\n",
        map_run.puts_per_s, skip_run.puts_per_s, put_ratio, put_pass ? "PASS" : "FAIL",
        map_rnd.puts_per_s, skip_rnd.puts_per_s, random_put_ratio,
        raw.gets_per_s, comp.gets_per_s, get_ratio, raw.bytes_per_get, comp.bytes_per_get,
        bytes_ratio, static_cast<double>(raw.table_bytes) / 1e6,
        static_cast<double>(comp.table_bytes) / 1e6,
        (mem_intact && reads_intact) ? "intact" : "CORRUPT", pass ? "PASS" : "FAIL");
}

void print_reproduction() {
    hep::bench::print_header(
        "Ablation F — rockslite internals (flush/compaction/bloom/cache)\n"
        "expect: smaller memtables => more flush+compaction work per put;\n"
        "cold gets slow down as levels deepen; bloom keeps misses cheap;\n"
        "background compaction takes flush+compaction off the put path;\n"
        "skiplist memtable beats std::map on puts; block compression cuts\n"
        "bytes read per cold get");
    run_bg_ablation();
    run_internals_ablation();
}

}  // namespace

HEP_BENCH_MAIN(print_reproduction)

// Ablation F: rockslite (RocksDB-substitute) internals — the mechanisms
// behind the Fig. 2 backend gap: memtable flushes, compaction, bloom
// filters, block cache, and read amplification as data accumulates.
#include <benchmark/benchmark.h>

#include <filesystem>

#include "bench_table.hpp"
#include "common/rng.hpp"
#include "yokan/lsm/lsm_db.hpp"

namespace {

using namespace hep;
using namespace hep::yokan;
namespace fs = std::filesystem;

std::unique_ptr<lsm::LsmDb> make_db(const std::string& tag, std::size_t memtable_bytes) {
    lsm::LsmOptions opts;
    const auto dir = fs::temp_directory_path() / ("bench_lsm_" + tag);
    fs::remove_all(dir);
    opts.path = dir.string();
    opts.memtable_bytes = memtable_bytes;
    return lsm::LsmDb::open(std::move(opts)).value();
}

std::string key_of(std::uint64_t i) {
    char buf[24];
    std::snprintf(buf, sizeof(buf), "k%012llu", static_cast<unsigned long long>(i));
    return buf;
}

void BM_PutWithMemtableSize(benchmark::State& state) {
    // Smaller memtables flush (and compact) more often — write amplification.
    auto db = make_db("memtable" + std::to_string(state.range(0)),
                      static_cast<std::size_t>(state.range(0)));
    const std::string value(256, 'v');
    std::uint64_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(db->put(key_of(i++), value, true));
    }
    const auto stats = db->lsm_stats();
    state.counters["flushes"] = static_cast<double>(stats.flushes);
    state.counters["compactions"] = static_cast<double>(stats.compactions);
    state.counters["sst_files"] = static_cast<double>(stats.sst_files_written);
}
BENCHMARK(BM_PutWithMemtableSize)->Arg(64 << 10)->Arg(1 << 20)->Arg(16 << 20);

void BM_GetColdVsDatasetSize(benchmark::State& state) {
    // Read amplification: point gets against a growing number of levels.
    const auto keys = static_cast<std::uint64_t>(state.range(0));
    auto db = make_db("reads" + std::to_string(keys), 256 << 10);
    const std::string value(256, 'v');
    for (std::uint64_t i = 0; i < keys; ++i) {
        (void)db->put(key_of(i), value, true);
    }
    (void)db->flush();
    Rng rng(11);
    for (auto _ : state) {
        auto v = db->get(key_of(rng.uniform(0, keys - 1)));
        benchmark::DoNotOptimize(v);
    }
    const auto stats = db->lsm_stats();
    state.counters["cache_hit_pct"] =
        100.0 * static_cast<double>(stats.cache_hits) /
        static_cast<double>(std::max<std::uint64_t>(1, stats.cache_hits + stats.cache_misses));
    state.counters["levels_with_files"] = [&] {
        double levels = 0;
        for (auto n : stats.files_per_level) levels += n > 0 ? 1 : 0;
        return levels;
    }();
}
BENCHMARK(BM_GetColdVsDatasetSize)->Arg(5000)->Arg(50000)->Arg(200000);

void BM_BloomNegativeLookups(benchmark::State& state) {
    auto db = make_db("bloomneg", 256 << 10);
    for (std::uint64_t i = 0; i < 50000; ++i) {
        (void)db->put(key_of(i), "v", true);
    }
    (void)db->flush();
    std::uint64_t i = 0;
    for (auto _ : state) {
        auto v = db->get("missing" + std::to_string(i++));
        benchmark::DoNotOptimize(v);
    }
}
BENCHMARK(BM_BloomNegativeLookups);

void BM_FullScan(benchmark::State& state) {
    auto db = make_db("scan", 256 << 10);
    constexpr std::uint64_t kKeys = 50000;
    for (std::uint64_t i = 0; i < kKeys; ++i) {
        (void)db->put(key_of(i), std::string(64, 'v'), true);
    }
    (void)db->flush();
    for (auto _ : state) {
        std::uint64_t n = 0;
        (void)db->scan("", "", true, [&](std::string_view, std::string_view) {
            ++n;
            return true;
        });
        if (n != kKeys) state.SkipWithError("scan lost keys");
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * kKeys);
}
BENCHMARK(BM_FullScan)->Unit(benchmark::kMillisecond);

void BM_WalAppend(benchmark::State& state) {
    const auto dir = fs::temp_directory_path() / "bench_lsm_wal";
    fs::remove_all(dir);
    fs::create_directories(dir);
    lsm::Wal wal;
    if (!wal.open((dir / "wal.log").string()).ok()) {
        state.SkipWithError("cannot open wal");
        return;
    }
    const std::string value(static_cast<std::size_t>(state.range(0)), 'v');
    std::uint64_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(wal.append_put(key_of(i++), value));
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_WalAppend)->Arg(64)->Arg(1024);

void print_reproduction() {
    hep::bench::print_header(
        "Ablation F — rockslite internals (flush/compaction/bloom/cache)\n"
        "expect: smaller memtables => more flush+compaction work per put;\n"
        "cold gets slow down as levels deepen; bloom keeps misses cheap");
}

}  // namespace

HEP_BENCH_MAIN(print_reproduction)

// Ablation: MVCC snapshot reads and cross-database atomic publish.
//
// Three phases against a query-enabled 2-server service:
//   anomalies — an open-loop ingest of selection-passing slices runs
//               concurrently with repeated snapshot-pinned pushdown
//               selections; every pinned run must return the pre-ingest
//               result bit for bit (reader-observed anomalies must be 0,
//               and a latest run afterwards must see the new data).
//   publish   — epoch begin -> batched writes -> DataStore::publish();
//               the publish latency distribution is the cost of making an
//               ingest round visible atomically across every database.
//   overhead  — the same quiesced selection through a pinned snapshot vs
//               latest reads, interleaved; pinning adds per-value stamp
//               filtering and must stay within 10% of latest.
//
// Writes BENCH_mvcc.json (working directory) with all three phases and the
// pass bars: anomalies == 0 and snapshot overhead <= 10%.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <thread>

#include "bedrock/service.hpp"
#include "bench_table.hpp"
#include "dataloader/loader.hpp"
#include "hepnos/hepnos.hpp"
#include "query/evaluator.hpp"
#include "yokan/backend.hpp"

namespace {

using namespace hep;
using Clock = std::chrono::steady_clock;

constexpr const char* kDataset = "nova/mvcc";
constexpr std::size_t kServers = 2;
constexpr std::size_t kDbsPerRole = 2;
constexpr std::size_t kIngestEvents = 200;     // open-loop writer volume
constexpr std::size_t kPinnedRuns = 12;        // pinned selections racing it
constexpr std::size_t kPublishRounds = 40;
constexpr std::size_t kOverheadRuns = 30;      // per mode, interleaved

json::Value server_config(std::size_t index) {
    json::Value cfg = json::Value::make_object();
    cfg["address"] = "mvcc-bench-server-" + std::to_string(index);
    cfg["margo"]["rpc_xstreams"] = std::size_t{2};
    cfg["query"]["enabled"] = true;
    json::Value yp = json::Value::make_object();
    yp["type"] = "yokan";
    yp["provider_id"] = 1;
    json::Value dbs = json::Value::make_array();
    auto add_db = [&](const std::string& role, std::size_t i) {
        json::Value db = json::Value::make_object();
        db["name"] = role + "-" + std::to_string(index) + "-" + std::to_string(i);
        db["role"] = role;
        db["type"] = "map";
        dbs.push_back(std::move(db));
    };
    add_db("datasets", 0);
    for (std::size_t i = 0; i < kDbsPerRole; ++i) add_db("runs", i);
    for (std::size_t i = 0; i < kDbsPerRole; ++i) add_db("subruns", i);
    for (std::size_t i = 0; i < kDbsPerRole; ++i) add_db("events", i);
    for (std::size_t i = 0; i < kDbsPerRole; ++i) add_db("products", i);
    yp["config"]["databases"] = std::move(dbs);
    cfg["providers"] = json::Value::make_array();
    cfg["providers"].push_back(std::move(yp));
    return cfg;
}

struct Service {
    rpc::Network net;
    std::vector<std::unique_ptr<bedrock::ServiceProcess>> servers;
    json::Value connection;
};

std::unique_ptr<Service> make_service() {
    auto svc = std::make_unique<Service>();
    std::vector<json::Value> descriptors;
    for (std::size_t s = 0; s < kServers; ++s) {
        auto proc = bedrock::ServiceProcess::create(svc->net, server_config(s), ".");
        if (!proc.ok()) {
            std::printf("ERROR: service boot failed: %s\n", proc.status().to_string().c_str());
            return nullptr;
        }
        descriptors.push_back((*proc)->descriptor());
        svc->servers.push_back(std::move(proc.value()));
    }
    svc->connection = bedrock::merge_descriptors(descriptors);
    return svc;
}

nova::Slice passing_slice(std::uint32_t index) {
    nova::Slice s;
    s.index = index;
    s.nhits = 60;
    s.cal_e = 2.0f;
    s.epi0_score = 0.95f;
    s.muon_score = 0.05f;
    s.cosmic_score = 0.05f;
    s.contained = 1;
    return s;
}

query::proto::QuerySpec selection_spec() {
    return query::nova_selection_spec(
        nova::SelectionCuts{},
        std::string(hepnos::product_type_name<std::vector<nova::Slice>>()));
}

double quantile(const std::vector<double>& sorted, double q) {
    if (sorted.empty()) return 0.0;
    const auto idx = static_cast<std::size_t>(q * static_cast<double>(sorted.size() - 1));
    return sorted[idx];
}

double mean_of(const std::vector<double>& v) {
    double sum = 0;
    for (double x : v) sum += x;
    return v.empty() ? 0.0 : sum / static_cast<double>(v.size());
}

struct AnomalyResult {
    std::uint64_t pinned_runs = 0;
    std::uint64_t anomalies = 0;       // pinned runs differing from reference
    std::uint64_t reference_entries = 0;
    std::uint64_t latest_entries = 0;  // after the writer finished
    std::uint64_t ingested_events = 0;
};

AnomalyResult run_anomaly_phase(Service& svc, hepnos::DataStore& store) {
    AnomalyResult r;
    hepnos::DataSet ds = store[kDataset];
    const auto spec = selection_spec();

    auto reference = hepnos::run_query(store, ds, spec);
    if (!reference.ok()) {
        std::printf("ERROR: reference query failed: %s\n",
                    reference.status().to_string().c_str());
        return r;
    }
    r.reference_entries = reference->entries().size();
    auto snap = store.snapshot();
    if (!snap.ok()) {
        std::printf("ERROR: snapshot failed: %s\n", snap.status().to_string().c_str());
        return r;
    }

    std::thread writer([&] {
        for (std::size_t i = 0; i < kIngestEvents; ++i) {
            hepnos::WriteBatch batch(store.impl(), 64);
            auto ev = ds.createRun(static_cast<hepnos::RunNumber>(9000 + i), &batch)
                          .createSubRun(0, &batch)
                          .createEvent(0, &batch);
            ev.store(batch, nova::kSliceLabel,
                     std::vector<nova::Slice>{passing_slice(0), passing_slice(1)});
            batch.flush();
            ++r.ingested_events;
        }
    });
    for (std::size_t i = 0; i < kPinnedRuns; ++i) {
        auto pinned = hepnos::run_query(store, ds, spec, *snap);
        ++r.pinned_runs;
        if (!pinned.ok() || pinned->entries() != reference->entries()) ++r.anomalies;
    }
    writer.join();

    // One more pinned run against the fully-landed ingest, then latest.
    auto pinned = hepnos::run_query(store, ds, spec, *snap);
    ++r.pinned_runs;
    if (!pinned.ok() || pinned->entries() != reference->entries()) ++r.anomalies;
    auto latest = hepnos::run_query(store, ds, spec);
    if (latest.ok()) r.latest_entries = latest->entries().size();
    return r;
}

struct PublishResult {
    std::uint64_t rounds = 0;
    double p50_ms = 0, p99_ms = 0, mean_ms = 0;
    std::uint64_t unpublished_visible = 0;  // staged events seen early (must be 0)
};

PublishResult run_publish_phase(hepnos::DataStore& store) {
    PublishResult r;
    auto sr = store.createDataSet("mvcc/publish").createRun(1).createSubRun(1);
    std::vector<double> samples;
    for (std::size_t round = 0; round < kPublishRounds; ++round) {
        auto epoch = store.begin_ingest();
        if (!epoch.ok()) {
            std::printf("ERROR: begin_ingest: %s\n", epoch.status().to_string().c_str());
            return r;
        }
        {
            hepnos::WriteBatch batch(store.impl(), 64);
            for (std::size_t k = 0; k < 16; ++k) {
                sr.createEvent(static_cast<hepnos::EventNumber>(round * 16 + k), &batch)
                    .store(batch, nova::kSliceLabel,
                           std::vector<nova::Slice>{passing_slice(0)});
            }
            batch.flush();
        }
        // Everything of the epoch is flushed but must still be invisible.
        std::size_t visible = 0;
        for (const auto& ev : sr) {
            (void)ev;
            ++visible;
        }
        if (visible != round * 16) ++r.unpublished_visible;

        const auto t0 = Clock::now();
        auto st = store.publish(*epoch);
        const double ms =
            std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
        if (!st.ok()) {
            std::printf("ERROR: publish: %s\n", st.to_string().c_str());
            return r;
        }
        samples.push_back(ms);
        ++r.rounds;
    }
    std::sort(samples.begin(), samples.end());
    r.p50_ms = quantile(samples, 0.50);
    r.p99_ms = quantile(samples, 0.99);
    r.mean_ms = mean_of(samples);
    return r;
}

struct OverheadResult {
    double latest_mean_ms = 0, pinned_mean_ms = 0;
    double overhead_pct = 0;
    std::uint64_t runs_per_mode = 0;
    bool identical = true;
};

OverheadResult run_overhead_phase(hepnos::DataStore& store) {
    OverheadResult r;
    hepnos::DataSet ds = store[kDataset];
    const auto spec = selection_spec();
    auto snap = store.snapshot();
    if (!snap.ok()) return r;
    auto reference = hepnos::run_query(store, ds, spec);
    if (!reference.ok()) return r;

    // Interleave the two modes so drift (cache warmth, allocator state) hits
    // both equally; the store is quiesced, so results must be identical.
    std::vector<double> latest_ms, pinned_ms;
    for (std::size_t i = 0; i < kOverheadRuns; ++i) {
        const auto t0 = Clock::now();
        auto latest = hepnos::run_query(store, ds, spec);
        const auto t1 = Clock::now();
        auto pinned = hepnos::run_query(store, ds, spec, *snap);
        const auto t2 = Clock::now();
        latest_ms.push_back(std::chrono::duration<double, std::milli>(t1 - t0).count());
        pinned_ms.push_back(std::chrono::duration<double, std::milli>(t2 - t1).count());
        if (!latest.ok() || !pinned.ok() ||
            latest->entries() != reference->entries() ||
            pinned->entries() != reference->entries()) {
            r.identical = false;
        }
        ++r.runs_per_mode;
    }
    r.latest_mean_ms = mean_of(latest_ms);
    r.pinned_mean_ms = mean_of(pinned_ms);
    r.overhead_pct = r.latest_mean_ms > 0
                         ? 100.0 * (r.pinned_mean_ms / r.latest_mean_ms - 1.0)
                         : 0.0;
    return r;
}

void print_reproduction() {
    using namespace hep::bench;
    print_header(
        "Ablation — MVCC snapshot reads + atomic publish\n"
        "expect: 0 reader-observed anomalies under ingest; snapshot overhead <= 10%");

    auto svc = make_service();
    if (!svc) return;
    auto store = hepnos::DataStore::connect(svc->net, svc->connection);
    auto gen = nova::Generator({.num_files = 16, .events_per_file = 60});
    mpisim::run_ranks(2, [&](mpisim::Comm& comm) {
        dataloader::ingest_generated(store, comm, gen, kDataset, 512);
    });

    AnomalyResult anom = run_anomaly_phase(*svc, store);
    print_row({"phase", "metric", "value"});
    print_row({"anomalies", "pinned-runs", std::to_string(anom.pinned_runs)});
    print_row({"anomalies", "anomalies", std::to_string(anom.anomalies)});
    print_row({"anomalies", "ref-entries", std::to_string(anom.reference_entries)});
    print_row({"anomalies", "latest-entries", std::to_string(anom.latest_entries)});
    if (anom.anomalies != 0) {
        std::printf("ERROR: pinned selections observed concurrent ingest!\n");
    }
    if (anom.latest_entries <= anom.reference_entries) {
        std::printf("WARNING: open-loop ingest did not grow the latest result\n");
    }

    PublishResult pub = run_publish_phase(store);
    print_row({"publish", "rounds", std::to_string(pub.rounds)});
    print_row({"publish", "p50-ms", fmt(pub.p50_ms, 4)});
    print_row({"publish", "p99-ms", fmt(pub.p99_ms, 4)});
    print_row({"publish", "mean-ms", fmt(pub.mean_ms, 4)});
    if (pub.unpublished_visible != 0) {
        std::printf("ERROR: staged epoch was visible before publish!\n");
    }

    OverheadResult ovh = run_overhead_phase(store);
    print_row({"overhead", "latest-mean-ms", fmt(ovh.latest_mean_ms, 4)});
    print_row({"overhead", "pinned-mean-ms", fmt(ovh.pinned_mean_ms, 4)});
    print_row({"overhead", "overhead-pct", fmt(ovh.overhead_pct, 2)});
    if (!ovh.identical) std::printf("ERROR: quiesced latest/pinned results diverged!\n");
    if (ovh.overhead_pct > 10.0) {
        std::printf("WARNING: snapshot-read overhead above the 10%% target\n");
    }

    json::Value doc = json::Value::make_object();
    doc["bench"] = "mvcc";
    doc["config"]["servers"] = kServers;
    doc["config"]["dbs_per_role"] = kDbsPerRole;
    doc["config"]["ingest_events"] = kIngestEvents;
    doc["config"]["publish_rounds"] = kPublishRounds;
    doc["config"]["overhead_runs"] = kOverheadRuns;
    doc["anomalies"]["pinned_runs"] = anom.pinned_runs;
    doc["anomalies"]["anomalies"] = anom.anomalies;
    doc["anomalies"]["reference_entries"] = anom.reference_entries;
    doc["anomalies"]["latest_entries"] = anom.latest_entries;
    doc["anomalies"]["ingested_events"] = anom.ingested_events;
    doc["publish"]["rounds"] = pub.rounds;
    doc["publish"]["p50_ms"] = pub.p50_ms;
    doc["publish"]["p99_ms"] = pub.p99_ms;
    doc["publish"]["mean_ms"] = pub.mean_ms;
    doc["publish"]["unpublished_visible"] = pub.unpublished_visible;
    doc["overhead"]["latest_mean_ms"] = ovh.latest_mean_ms;
    doc["overhead"]["pinned_mean_ms"] = ovh.pinned_mean_ms;
    doc["overhead"]["overhead_pct"] = ovh.overhead_pct;
    doc["overhead"]["identical"] = ovh.identical;
    doc["pass"]["zero_anomalies"] = anom.anomalies == 0;
    doc["pass"]["publish_atomic"] = pub.unpublished_visible == 0;
    doc["pass"]["overhead_within_10pct"] = ovh.overhead_pct <= 10.0;
    std::ofstream("BENCH_mvcc.json") << doc.dump(2) << "\n";
    std::printf("wrote BENCH_mvcc.json\n");
}

// Micro-benchmarks: the per-read cost MVCC adds at the backend.

void BM_MapPutStamped(benchmark::State& state) {
    auto db = yokan::create_database(*json::parse(R"({"type": "map"})")).value();
    hep::Buffer value = hep::Buffer::adopt(std::string(512, 'v'));
    std::uint64_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            db->put_stamped("key-" + std::to_string(i++ % 4096), value.view(0, 512), true, 0));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MapPutStamped);

void BM_MapGetLatestView(benchmark::State& state) {
    auto db = yokan::create_database(*json::parse(R"({"type": "map"})")).value();
    for (int k = 0; k < 4096; ++k) (void)db->put("key-" + std::to_string(k), "value");
    const yokan::ReadView latest;
    std::uint64_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(db->get_view_at("key-" + std::to_string(i++ % 4096), latest));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MapGetLatestView);

void BM_MapGetPinnedView(benchmark::State& state) {
    auto db = yokan::create_database(*json::parse(R"({"type": "map"})")).value();
    for (int k = 0; k < 4096; ++k) (void)db->put("key-" + std::to_string(k), "value");
    const yokan::ReadView pinned = db->snapshot_at(0);
    std::uint64_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(db->get_view_at("key-" + std::to_string(i++ % 4096), pinned));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MapGetPinnedView);

}  // namespace

HEP_BENCH_MAIN(print_reproduction)

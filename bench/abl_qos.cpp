// Ablation: multi-tenant QoS & admission control (src/qos).
//
// A saturating bulk ingest (tenant "loader", class bulk) floods a 2-xstream
// server while an interactive tenant ("analysis") issues point gets. With
// QoS off (plain FIFO handler pool, no admission) every get waits out the
// whole queued bulk backlog; with QoS on the weighted-fair PriorityPool lets
// interactive handlers overtake queued bulk work, collapsing the
// high-priority tail while total throughput stays unchanged — the DRR pool
// reorders work, it does not drop or slow it.
//
// A second phase verifies the shed/retry path end to end: a token-bucketed
// tenant pushes a known key set through the retrying client against a
// deliberately tight bucket, then reads everything back and compares FNV-1a
// content hashes — sheds must delay requests, never lose them.
//
// Writes BENCH_qos.json (working directory) with both phases' numbers.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_table.hpp"
#include "common/hash.hpp"
#include "margo/engine.hpp"
#include "qos/admission.hpp"
#include "qos/client.hpp"
#include "yokan/client.hpp"
#include "yokan/provider.hpp"

namespace {

using namespace hep;
using Clock = std::chrono::steady_clock;

constexpr std::size_t kRounds = 10;
constexpr std::size_t kOutstanding = 64;   // async bulk RPCs per round
constexpr std::size_t kBatch = 64;         // items per bulk RPC
constexpr std::size_t kValueBytes = 16384; // heavy enough that the backlog outlives issue
constexpr std::size_t kHotKeys = 256;
constexpr std::size_t kGetsPerRound = 40;

double quantile(std::vector<double> sorted, double q) {
    if (sorted.empty()) return 0.0;
    const auto idx = static_cast<std::size_t>(q * static_cast<double>(sorted.size() - 1));
    return sorted[idx];
}

struct ModeResult {
    double p50_ms = 0, p99_ms = 0, mean_ms = 0;
    double wall_s = 0;
    std::uint64_t bulk_items = 0;
    std::uint64_t gets = 0;
    [[nodiscard]] double items_per_s() const {
        return wall_s > 0 ? static_cast<double>(bulk_items + gets) / wall_s : 0;
    }
};

/// One contention run: bulk flood + interactive probes, with or without QoS.
ModeResult run_mode(bool qos_on) {
    rpc::Network net;
    margo::EngineConfig cfg;
    // One handler xstream: the contention is pure queueing, so the scheduler
    // alone decides how long an interactive get waits behind queued bulk.
    cfg.rpc_xstreams = 1;
    qos::AdmissionOptions aopts;
    // This phase measures pure scheduling: thresholds high enough that the
    // two-tier overload control never engages.
    aopts.slowdown_inflight = 1u << 30;
    aopts.shed_inflight = 1u << 30;
    if (qos_on) cfg.qos_weights = aopts.weights;
    margo::Engine server(net, "qos-bench-server", cfg);
    std::shared_ptr<qos::AdmissionController> ctrl;
    if (qos_on) {
        ctrl = std::make_shared<qos::AdmissionController>(aopts);
        server.enable_qos(ctrl);
    }
    auto dbcfg = json::parse(R"({"databases": [{"name": "bench", "type": "map"}]})");
    auto provider = yokan::Provider::create(server, 1, *dbcfg).value();
    margo::Engine client(net, "qos-bench-client");

    qos::QosPolicy analysis;
    analysis.tenant = "analysis";
    yokan::DatabaseHandle point_db(client, "qos-bench-server", 1, "bench");
    point_db.set_qos(std::make_shared<qos::ClientQos>(analysis));
    const qos::QosTag bulk_tag{"loader", qos::kClassBulk};

    // Pre-populate the hot keys the interactive tenant reads.
    const std::string value(kValueBytes, 'v');
    {
        std::vector<yokan::KeyValue> hot;
        for (std::size_t i = 0; i < kHotKeys; ++i) {
            hot.push_back({"hot-" + std::to_string(i), value});
        }
        auto stored = point_db.put_multi(hot, true);
        if (!stored.ok()) {
            std::printf("ERROR: prepopulate failed: %s\n", stored.status().to_string().c_str());
            return {};
        }
    }

    // Pre-build every bulk request chain OUTSIDE the timed region: firing the
    // flood must be kOutstanding cheap enqueues, not kOutstanding 1MB builds,
    // or (on a small machine) the server drains as fast as the client packs
    // and no backlog ever forms. Chains share immutable buffers, so the same
    // chain is reusable every round (overwrite=true keeps the map bounded).
    std::vector<std::vector<yokan::BatchItem>> batches;
    std::vector<hep::BufferChain> chains;
    batches.reserve(kOutstanding);
    chains.reserve(kOutstanding);
    for (std::size_t o = 0; o < kOutstanding; ++o) {
        std::vector<yokan::BatchItem> items;
        items.reserve(kBatch);
        for (std::size_t i = 0; i < kBatch; ++i) {
            items.push_back({"bulk-" + std::to_string(o) + "-" + std::to_string(i),
                             hep::Buffer::copy_of(value)});
        }
        batches.push_back(std::move(items));
        yokan::proto::PutPackedReq req{"bench", kBatch, true, /*epoch=*/0,
                                       yokan::proto::pack_items(batches.back())};
        chains.push_back(serial::to_chain(req));
    }

    ModeResult r;
    std::vector<double> samples;
    const auto t0 = Clock::now();
    for (std::size_t round = 0; round < kRounds; ++round) {
        std::vector<std::shared_ptr<abt::Eventual<Result<hep::BufferChain>>>> pending;
        pending.reserve(kOutstanding);
        for (std::size_t o = 0; o < kOutstanding; ++o) {
            pending.push_back(client.endpoint().call_async_chain(
                "qos-bench-server", "yokan_put_packed", 1, chains[o],
                std::chrono::milliseconds{0}, bulk_tag));
        }

        // Interactive probes race the backlog.
        for (std::size_t g = 0; g < kGetsPerRound; ++g) {
            const auto gt0 = Clock::now();
            auto got = point_db.get("hot-" + std::to_string(g % kHotKeys));
            const double ms =
                std::chrono::duration<double, std::milli>(Clock::now() - gt0).count();
            if (!got.ok()) {
                std::printf("ERROR: interactive get failed: %s\n",
                            got.status().to_string().c_str());
                continue;
            }
            samples.push_back(ms);
            ++r.gets;
        }

        for (auto& ev : pending) {
            auto& result = ev->wait();
            if (!result.ok()) {
                std::printf("ERROR: bulk rpc failed: %s\n",
                            result.status().to_string().c_str());
            } else {
                r.bulk_items += kBatch;
            }
        }
    }
    r.wall_s = std::chrono::duration<double>(Clock::now() - t0).count();

    std::sort(samples.begin(), samples.end());
    r.p50_ms = quantile(samples, 0.50);
    r.p99_ms = quantile(samples, 0.99);
    double sum = 0;
    for (double s : samples) sum += s;
    r.mean_ms = samples.empty() ? 0 : sum / static_cast<double>(samples.size());
    return r;
}

struct IntegrityResult {
    std::uint64_t items = 0;
    std::uint64_t readback = 0;
    std::uint64_t sheds = 0;
    std::uint64_t client_overloads = 0;
    std::uint64_t retry_successes = 0;
    std::uint64_t local_hash = 0;
    std::uint64_t readback_hash = 0;
    [[nodiscard]] bool match() const {
        return items == readback && local_hash == readback_hash;
    }
};

std::uint64_t fnv1a_chain(std::uint64_t h, std::string_view s) {
    for (unsigned char c : s) {
        h ^= c;
        h *= 1099511628211ull;
    }
    return h;
}

/// Shed-integrity phase: a tight token bucket sheds the loader tenant hard;
/// the retrying client must still land every item, bit-identically.
IntegrityResult run_integrity() {
    rpc::Network net;
    margo::EngineConfig cfg;
    cfg.rpc_xstreams = 2;
    qos::AdmissionOptions aopts;
    aopts.slowdown_inflight = 1u << 30;
    aopts.shed_inflight = 1u << 30;
    aopts.tenant_limits["loader"] = qos::TenantLimit{300.0, 10.0};
    cfg.qos_weights = aopts.weights;
    margo::Engine server(net, "qos-int-server", cfg);
    auto ctrl = std::make_shared<qos::AdmissionController>(aopts);
    server.enable_qos(ctrl);
    auto dbcfg = json::parse(R"({"databases": [{"name": "bench", "type": "map"}]})");
    auto provider = yokan::Provider::create(server, 1, *dbcfg).value();
    margo::Engine client(net, "qos-int-client");

    qos::QosPolicy loader;
    loader.tenant = "loader";
    auto cq = std::make_shared<qos::ClientQos>(loader);
    yokan::DatabaseHandle db(client, "qos-int-server", 1, "bench");
    db.set_qos(cq);

    IntegrityResult r;
    constexpr std::size_t kBatches = 60;
    constexpr std::size_t kPerBatch = 32;
    std::uint64_t local = 1469598103934665603ull;  // FNV offset basis
    char keybuf[32];
    for (std::size_t b = 0; b < kBatches; ++b) {
        std::vector<yokan::KeyValue> batch;
        for (std::size_t i = 0; i < kPerBatch; ++i) {
            std::snprintf(keybuf, sizeof(keybuf), "item-%05zu", b * kPerBatch + i);
            batch.push_back({keybuf, "value-of-" + std::string(keybuf)});
        }
        auto stored = db.put_multi(batch, true);
        if (!stored.ok()) {
            std::printf("ERROR: integrity batch %zu failed: %s\n", b,
                        stored.status().to_string().c_str());
            return r;
        }
        r.items += kPerBatch;
    }
    // Keys were generated in ascending order; hash them the same way the
    // sorted readback scan will see them.
    for (std::size_t i = 0; i < kBatches * kPerBatch; ++i) {
        std::snprintf(keybuf, sizeof(keybuf), "item-%05zu", i);
        local = fnv1a_chain(local, keybuf);
        local = fnv1a_chain(local, "value-of-" + std::string(keybuf));
    }
    r.local_hash = local;

    std::uint64_t scanned = 1469598103934665603ull;
    std::string after;
    while (true) {
        auto page = db.list_keyvals(after, "item-", 128);
        if (!page.ok()) {
            std::printf("ERROR: readback failed: %s\n", page.status().to_string().c_str());
            return r;
        }
        if (page->empty()) break;
        for (const auto& kv : *page) {
            scanned = fnv1a_chain(scanned, kv.key);
            scanned = fnv1a_chain(scanned, kv.value);
            ++r.readback;
        }
        after = page->back().key;
        if (page->size() < 128) break;
    }
    r.readback_hash = scanned;
    r.sheds = ctrl->shed();
    r.client_overloads = cq->overloaded_seen();
    r.retry_successes = cq->retry_successes();
    return r;
}

void print_reproduction() {
    using namespace hep::bench;
    print_header(
        "Ablation — QoS admission control: interactive p99 under bulk flood\n"
        "expect: >=5x lower interactive p99 with qos on, throughput within 10%");

    ModeResult fifo = run_mode(/*qos_on=*/false);
    ModeResult prio = run_mode(/*qos_on=*/true);

    print_row({"mode", "p50-ms", "p99-ms", "mean-ms", "wall-s", "items/s"});
    print_row({"fifo", fmt(fifo.p50_ms, 3), fmt(fifo.p99_ms, 3), fmt(fifo.mean_ms, 3),
               fmt(fifo.wall_s, 2), fmt(fifo.items_per_s(), 0)});
    print_row({"qos", fmt(prio.p50_ms, 3), fmt(prio.p99_ms, 3), fmt(prio.mean_ms, 3),
               fmt(prio.wall_s, 2), fmt(prio.items_per_s(), 0)});

    const double p99_ratio = prio.p99_ms > 0 ? fifo.p99_ms / prio.p99_ms : 0;
    const double tput_ratio =
        fifo.items_per_s() > 0 ? prio.items_per_s() / fifo.items_per_s() : 0;
    std::printf("\ninteractive p99: fifo=%.3fms qos=%.3fms (%.1fx lower)\n", fifo.p99_ms,
                prio.p99_ms, p99_ratio);
    std::printf("throughput: qos/fifo = %.3f (want >= 0.9: QoS must not cost throughput)\n",
                tput_ratio);
    if (p99_ratio < 5.0) std::printf("WARNING: p99 improvement below the 5x target\n");
    if (tput_ratio < 0.9) std::printf("WARNING: QoS cost more than 10%% throughput\n");

    IntegrityResult integ = run_integrity();
    std::printf("\nshed integrity: %llu items shipped, %llu shed server-side, "
                "%llu client retries-after-shed, readback %llu items\n",
                static_cast<unsigned long long>(integ.items),
                static_cast<unsigned long long>(integ.sheds),
                static_cast<unsigned long long>(integ.retry_successes),
                static_cast<unsigned long long>(integ.readback));
    std::printf("fnv1a: local=%016llx readback=%016llx -> %s\n",
                static_cast<unsigned long long>(integ.local_hash),
                static_cast<unsigned long long>(integ.readback_hash),
                integ.match() ? "bit-identical" : "MISMATCH");
    if (integ.sheds == 0) std::printf("WARNING: bucket never shed; tighten the limit\n");
    if (!integ.match()) std::printf("ERROR: shed/retry lost or corrupted data!\n");

    json::Value doc = json::Value::make_object();
    doc["bench"] = "qos";
    doc["config"]["rounds"] = static_cast<std::uint64_t>(kRounds);
    doc["config"]["outstanding"] = static_cast<std::uint64_t>(kOutstanding);
    doc["config"]["batch"] = static_cast<std::uint64_t>(kBatch);
    doc["config"]["value_bytes"] = static_cast<std::uint64_t>(kValueBytes);
    auto fill = [](json::Value& v, const ModeResult& m) {
        v["p50_ms"] = m.p50_ms;
        v["p99_ms"] = m.p99_ms;
        v["mean_ms"] = m.mean_ms;
        v["wall_s"] = m.wall_s;
        v["bulk_items"] = m.bulk_items;
        v["gets"] = m.gets;
        v["items_per_s"] = m.items_per_s();
    };
    fill(doc["fifo"], fifo);
    fill(doc["qos"], prio);
    doc["p99_ratio"] = p99_ratio;
    doc["throughput_ratio"] = tput_ratio;
    doc["integrity"]["items"] = integ.items;
    doc["integrity"]["readback"] = integ.readback;
    doc["integrity"]["server_sheds"] = integ.sheds;
    doc["integrity"]["client_overloads"] = integ.client_overloads;
    doc["integrity"]["retry_successes"] = integ.retry_successes;
    doc["integrity"]["local_fnv1a"] = integ.local_hash;
    doc["integrity"]["readback_fnv1a"] = integ.readback_hash;
    doc["integrity"]["bit_identical"] = integ.match();
    std::ofstream("BENCH_qos.json") << doc.dump(2) << "\n";
    std::printf("wrote BENCH_qos.json\n");
}

// Micro-benchmarks: scheduler and admission hot-path costs.

void BM_FifoPoolPushPop(benchmark::State& state) {
    auto pool = abt::Pool::create("bm-fifo");
    for (auto _ : state) {
        pool->push([] {});
        benchmark::DoNotOptimize(pool->try_pop());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FifoPoolPushPop);

void BM_PriorityPoolPushPop(benchmark::State& state) {
    auto pool = abt::PriorityPool::create({32, 16, 4, 1}, "bm-prio");
    for (auto _ : state) {
        pool->push([] {});
        benchmark::DoNotOptimize(pool->try_pop());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PriorityPoolPushPop);

void BM_AdmissionCycle(benchmark::State& state) {
    qos::AdmissionOptions opts;
    opts.slowdown_inflight = 1u << 30;
    opts.shed_inflight = 1u << 30;
    qos::AdmissionController ctrl(opts);
    for (auto _ : state) {
        const auto now = qos::Clock::now();
        benchmark::DoNotOptimize(ctrl.admit(1, "bench", qos::kClassInteractive, 0, now));
        benchmark::DoNotOptimize(ctrl.on_start(1, qos::kClassInteractive, 0, now, now));
        ctrl.on_complete(qos::kClassInteractive, 10.0);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AdmissionCycle);

}  // namespace

HEP_BENCH_MAIN(print_reproduction)

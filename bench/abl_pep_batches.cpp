// Ablation D (paper §IV-D): ParallelEventProcessor batch-size tuning.
//
// "the ParallelEventProcessor application was configured so that events are
//  loaded from HEPnOS by a subset of processes in batches of 16384 events
//  (to produce fewer RPCs but with a large data transfer payload), then
//  shared among processes in batches of 64 events (to enable fine-grain
//  load-balancing once events are loaded into worker memory)."
//
// Sweeps both knobs on the Theta model at 128 nodes (where the paper tuned),
// showing the throughput surface around the chosen (16384, 64) point.
#include "bench_table.hpp"
#include "simcluster/theta.hpp"

namespace {

using namespace hep;
using namespace hep::simcluster;

void print_reproduction() {
    using bench::fmt_throughput;

    const SimDataset dataset = SimDataset::paper_sample(4);
    constexpr std::size_t kNodes = 128;

    bench::print_header(
        "Ablation D — PEP batch tuning at 128 nodes (paper picks 16384 / 64)");

    std::printf("\n-- input (load) batch sweep, share batch fixed at 64 --\n");
    bench::print_row({"input_batch", "hepnos-map", "hepnos-lsm"});
    for (std::size_t input : {256, 1024, 4096, 16384, 65536}) {
        ThetaParams params;
        params.input_batch = input;
        const auto map = simulate_hepnos(params, dataset, kNodes, Backend::kMap);
        const auto lsm = simulate_hepnos(params, dataset, kNodes, Backend::kLsm);
        bench::print_row({std::to_string(input), fmt_throughput(map.throughput),
                          fmt_throughput(lsm.throughput)});
    }

    std::printf("\n-- share batch sweep, input batch fixed at 16384 --\n");
    bench::print_row({"share_batch", "hepnos-map", "core busy"});
    for (std::size_t share : {8, 64, 512, 4096, 16384}) {
        ThetaParams params;
        params.share_batch = share;
        const auto map = simulate_hepnos(params, dataset, kNodes, Backend::kMap);
        bench::print_row({std::to_string(share), fmt_throughput(map.throughput),
                          bench::fmt(map.core_busy_fraction, 3)});
    }
    std::printf(
        "\nexpect: small input batches pay per-RPC overhead; huge share batches\n"
        "coarsen load balancing (idle cores at the drain tail); the paper's\n"
        "(16384, 64) sits on the plateau.\n");
}

void BM_PepSweepPoint(benchmark::State& state) {
    ThetaParams params;
    params.input_batch = static_cast<std::size_t>(state.range(0));
    params.share_batch = static_cast<std::size_t>(state.range(1));
    const SimDataset dataset = SimDataset::paper_sample(4);
    for (auto _ : state) {
        auto r = simulate_hepnos(params, dataset, 128, Backend::kMap);
        benchmark::DoNotOptimize(r);
        state.counters["sim_throughput_slices_s"] = r.throughput;
    }
}
BENCHMARK(BM_PepSweepPoint)
    ->Args({16384, 64})
    ->Args({256, 64})
    ->Args({16384, 16384})
    ->Unit(benchmark::kMillisecond);

}  // namespace

HEP_BENCH_MAIN(print_reproduction)

file(REMOVE_RECURSE
  "CMakeFiles/hepnos_test.dir/hepnos_test.cpp.o"
  "CMakeFiles/hepnos_test.dir/hepnos_test.cpp.o.d"
  "hepnos_test"
  "hepnos_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hepnos_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

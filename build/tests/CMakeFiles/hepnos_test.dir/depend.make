# Empty dependencies file for hepnos_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/htf_test.dir/htf_test.cpp.o"
  "CMakeFiles/htf_test.dir/htf_test.cpp.o.d"
  "htf_test"
  "htf_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/htf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for htf_test.
# This may be replaced when dependencies are built.

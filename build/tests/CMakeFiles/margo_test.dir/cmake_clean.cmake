file(REMOVE_RECURSE
  "CMakeFiles/margo_test.dir/margo_test.cpp.o"
  "CMakeFiles/margo_test.dir/margo_test.cpp.o.d"
  "margo_test"
  "margo_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/margo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for margo_test.
# This may be replaced when dependencies are built.

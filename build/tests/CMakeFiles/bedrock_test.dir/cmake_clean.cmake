file(REMOVE_RECURSE
  "CMakeFiles/bedrock_test.dir/bedrock_test.cpp.o"
  "CMakeFiles/bedrock_test.dir/bedrock_test.cpp.o.d"
  "bedrock_test"
  "bedrock_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bedrock_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bedrock_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/abt_test.dir/abt_test.cpp.o"
  "CMakeFiles/abt_test.dir/abt_test.cpp.o.d"
  "abt_test"
  "abt_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

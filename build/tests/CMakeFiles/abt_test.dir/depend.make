# Empty dependencies file for abt_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/hepnos_edge_test.dir/hepnos_edge_test.cpp.o"
  "CMakeFiles/hepnos_edge_test.dir/hepnos_edge_test.cpp.o.d"
  "hepnos_edge_test"
  "hepnos_edge_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hepnos_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

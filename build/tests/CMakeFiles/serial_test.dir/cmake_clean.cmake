file(REMOVE_RECURSE
  "CMakeFiles/serial_test.dir/serial_test.cpp.o"
  "CMakeFiles/serial_test.dir/serial_test.cpp.o.d"
  "serial_test"
  "serial_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serial_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

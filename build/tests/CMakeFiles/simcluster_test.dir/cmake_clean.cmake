file(REMOVE_RECURSE
  "CMakeFiles/simcluster_test.dir/simcluster_test.cpp.o"
  "CMakeFiles/simcluster_test.dir/simcluster_test.cpp.o.d"
  "simcluster_test"
  "simcluster_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simcluster_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for symbio_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/symbio_test.dir/symbio_test.cpp.o"
  "CMakeFiles/symbio_test.dir/symbio_test.cpp.o.d"
  "symbio_test"
  "symbio_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/symbio_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

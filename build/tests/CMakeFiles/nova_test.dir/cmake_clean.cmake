file(REMOVE_RECURSE
  "CMakeFiles/nova_test.dir/nova_test.cpp.o"
  "CMakeFiles/nova_test.dir/nova_test.cpp.o.d"
  "nova_test"
  "nova_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nova_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

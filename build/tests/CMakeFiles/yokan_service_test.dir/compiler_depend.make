# Empty compiler generated dependencies file for yokan_service_test.
# This may be replaced when dependencies are built.

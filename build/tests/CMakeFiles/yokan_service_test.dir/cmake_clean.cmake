file(REMOVE_RECURSE
  "CMakeFiles/yokan_service_test.dir/yokan_service_test.cpp.o"
  "CMakeFiles/yokan_service_test.dir/yokan_service_test.cpp.o.d"
  "yokan_service_test"
  "yokan_service_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/yokan_service_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/rescale_test.dir/rescale_test.cpp.o"
  "CMakeFiles/rescale_test.dir/rescale_test.cpp.o.d"
  "rescale_test"
  "rescale_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rescale_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

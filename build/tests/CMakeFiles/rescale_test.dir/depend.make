# Empty dependencies file for rescale_test.
# This may be replaced when dependencies are built.

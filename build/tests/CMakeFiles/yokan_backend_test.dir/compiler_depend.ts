# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for yokan_backend_test.

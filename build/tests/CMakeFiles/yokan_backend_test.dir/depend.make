# Empty dependencies file for yokan_backend_test.
# This may be replaced when dependencies are built.

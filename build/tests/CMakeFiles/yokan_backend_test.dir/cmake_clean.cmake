file(REMOVE_RECURSE
  "CMakeFiles/yokan_backend_test.dir/yokan_backend_test.cpp.o"
  "CMakeFiles/yokan_backend_test.dir/yokan_backend_test.cpp.o.d"
  "yokan_backend_test"
  "yokan_backend_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/yokan_backend_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/dataloader_test.dir/dataloader_test.cpp.o"
  "CMakeFiles/dataloader_test.dir/dataloader_test.cpp.o.d"
  "dataloader_test"
  "dataloader_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dataloader_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for nova_selection.
# This may be replaced when dependencies are built.

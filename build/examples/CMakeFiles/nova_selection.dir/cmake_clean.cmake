file(REMOVE_RECURSE
  "CMakeFiles/nova_selection.dir/nova_selection.cpp.o"
  "CMakeFiles/nova_selection.dir/nova_selection.cpp.o.d"
  "nova_selection"
  "nova_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nova_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bedrock_service.dir/bedrock_service.cpp.o"
  "CMakeFiles/bedrock_service.dir/bedrock_service.cpp.o.d"
  "bedrock_service"
  "bedrock_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bedrock_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

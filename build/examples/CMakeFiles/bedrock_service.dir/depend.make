# Empty dependencies file for bedrock_service.
# This may be replaced when dependencies are built.

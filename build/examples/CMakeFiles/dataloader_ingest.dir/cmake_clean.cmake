file(REMOVE_RECURSE
  "CMakeFiles/dataloader_ingest.dir/dataloader_ingest.cpp.o"
  "CMakeFiles/dataloader_ingest.dir/dataloader_ingest.cpp.o.d"
  "dataloader_ingest"
  "dataloader_ingest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dataloader_ingest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

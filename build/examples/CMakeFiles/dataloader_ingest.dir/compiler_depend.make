# Empty compiler generated dependencies file for dataloader_ingest.
# This may be replaced when dependencies are built.

# Empty dependencies file for hep_abt.
# This may be replaced when dependencies are built.

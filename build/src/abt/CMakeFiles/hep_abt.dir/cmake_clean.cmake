file(REMOVE_RECURSE
  "CMakeFiles/hep_abt.dir/pool.cpp.o"
  "CMakeFiles/hep_abt.dir/pool.cpp.o.d"
  "CMakeFiles/hep_abt.dir/sync.cpp.o"
  "CMakeFiles/hep_abt.dir/sync.cpp.o.d"
  "CMakeFiles/hep_abt.dir/ult.cpp.o"
  "CMakeFiles/hep_abt.dir/ult.cpp.o.d"
  "CMakeFiles/hep_abt.dir/xstream.cpp.o"
  "CMakeFiles/hep_abt.dir/xstream.cpp.o.d"
  "libhep_abt.a"
  "libhep_abt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hep_abt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libhep_abt.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/abt/pool.cpp" "src/abt/CMakeFiles/hep_abt.dir/pool.cpp.o" "gcc" "src/abt/CMakeFiles/hep_abt.dir/pool.cpp.o.d"
  "/root/repo/src/abt/sync.cpp" "src/abt/CMakeFiles/hep_abt.dir/sync.cpp.o" "gcc" "src/abt/CMakeFiles/hep_abt.dir/sync.cpp.o.d"
  "/root/repo/src/abt/ult.cpp" "src/abt/CMakeFiles/hep_abt.dir/ult.cpp.o" "gcc" "src/abt/CMakeFiles/hep_abt.dir/ult.cpp.o.d"
  "/root/repo/src/abt/xstream.cpp" "src/abt/CMakeFiles/hep_abt.dir/xstream.cpp.o" "gcc" "src/abt/CMakeFiles/hep_abt.dir/xstream.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hep_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

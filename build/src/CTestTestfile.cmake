# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("serial")
subdirs("abt")
subdirs("rpc")
subdirs("margo")
subdirs("yokan")
subdirs("bedrock")
subdirs("mpisim")
subdirs("hepnos")
subdirs("htf")
subdirs("nova")
subdirs("dataloader")
subdirs("workflow")
subdirs("simcluster")
subdirs("symbio")
subdirs("autotune")

file(REMOVE_RECURSE
  "libhep_mpisim.a"
)

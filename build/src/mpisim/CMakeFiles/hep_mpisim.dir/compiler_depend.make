# Empty compiler generated dependencies file for hep_mpisim.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/hep_mpisim.dir/comm.cpp.o"
  "CMakeFiles/hep_mpisim.dir/comm.cpp.o.d"
  "libhep_mpisim.a"
  "libhep_mpisim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hep_mpisim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libhep_workflow.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/hep_workflow.dir/hepnos_app.cpp.o"
  "CMakeFiles/hep_workflow.dir/hepnos_app.cpp.o.d"
  "CMakeFiles/hep_workflow.dir/traditional.cpp.o"
  "CMakeFiles/hep_workflow.dir/traditional.cpp.o.d"
  "libhep_workflow.a"
  "libhep_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hep_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

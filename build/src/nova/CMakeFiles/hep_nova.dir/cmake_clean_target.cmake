file(REMOVE_RECURSE
  "libhep_nova.a"
)

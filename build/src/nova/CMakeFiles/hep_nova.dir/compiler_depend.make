# Empty compiler generated dependencies file for hep_nova.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/hep_nova.dir/generator.cpp.o"
  "CMakeFiles/hep_nova.dir/generator.cpp.o.d"
  "CMakeFiles/hep_nova.dir/selection.cpp.o"
  "CMakeFiles/hep_nova.dir/selection.cpp.o.d"
  "libhep_nova.a"
  "libhep_nova.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hep_nova.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nova/generator.cpp" "src/nova/CMakeFiles/hep_nova.dir/generator.cpp.o" "gcc" "src/nova/CMakeFiles/hep_nova.dir/generator.cpp.o.d"
  "/root/repo/src/nova/selection.cpp" "src/nova/CMakeFiles/hep_nova.dir/selection.cpp.o" "gcc" "src/nova/CMakeFiles/hep_nova.dir/selection.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/htf/CMakeFiles/hep_htf.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hep_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libhep_yokan.a"
)

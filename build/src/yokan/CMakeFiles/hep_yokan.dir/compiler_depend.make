# Empty compiler generated dependencies file for hep_yokan.
# This may be replaced when dependencies are built.

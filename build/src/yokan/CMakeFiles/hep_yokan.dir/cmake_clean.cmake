file(REMOVE_RECURSE
  "CMakeFiles/hep_yokan.dir/backend.cpp.o"
  "CMakeFiles/hep_yokan.dir/backend.cpp.o.d"
  "CMakeFiles/hep_yokan.dir/client.cpp.o"
  "CMakeFiles/hep_yokan.dir/client.cpp.o.d"
  "CMakeFiles/hep_yokan.dir/lsm/bloom.cpp.o"
  "CMakeFiles/hep_yokan.dir/lsm/bloom.cpp.o.d"
  "CMakeFiles/hep_yokan.dir/lsm/lsm_db.cpp.o"
  "CMakeFiles/hep_yokan.dir/lsm/lsm_db.cpp.o.d"
  "CMakeFiles/hep_yokan.dir/lsm/sstable.cpp.o"
  "CMakeFiles/hep_yokan.dir/lsm/sstable.cpp.o.d"
  "CMakeFiles/hep_yokan.dir/lsm/wal.cpp.o"
  "CMakeFiles/hep_yokan.dir/lsm/wal.cpp.o.d"
  "CMakeFiles/hep_yokan.dir/map_backend.cpp.o"
  "CMakeFiles/hep_yokan.dir/map_backend.cpp.o.d"
  "CMakeFiles/hep_yokan.dir/provider.cpp.o"
  "CMakeFiles/hep_yokan.dir/provider.cpp.o.d"
  "libhep_yokan.a"
  "libhep_yokan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hep_yokan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

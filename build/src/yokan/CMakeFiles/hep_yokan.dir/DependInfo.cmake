
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/yokan/backend.cpp" "src/yokan/CMakeFiles/hep_yokan.dir/backend.cpp.o" "gcc" "src/yokan/CMakeFiles/hep_yokan.dir/backend.cpp.o.d"
  "/root/repo/src/yokan/client.cpp" "src/yokan/CMakeFiles/hep_yokan.dir/client.cpp.o" "gcc" "src/yokan/CMakeFiles/hep_yokan.dir/client.cpp.o.d"
  "/root/repo/src/yokan/lsm/bloom.cpp" "src/yokan/CMakeFiles/hep_yokan.dir/lsm/bloom.cpp.o" "gcc" "src/yokan/CMakeFiles/hep_yokan.dir/lsm/bloom.cpp.o.d"
  "/root/repo/src/yokan/lsm/lsm_db.cpp" "src/yokan/CMakeFiles/hep_yokan.dir/lsm/lsm_db.cpp.o" "gcc" "src/yokan/CMakeFiles/hep_yokan.dir/lsm/lsm_db.cpp.o.d"
  "/root/repo/src/yokan/lsm/sstable.cpp" "src/yokan/CMakeFiles/hep_yokan.dir/lsm/sstable.cpp.o" "gcc" "src/yokan/CMakeFiles/hep_yokan.dir/lsm/sstable.cpp.o.d"
  "/root/repo/src/yokan/lsm/wal.cpp" "src/yokan/CMakeFiles/hep_yokan.dir/lsm/wal.cpp.o" "gcc" "src/yokan/CMakeFiles/hep_yokan.dir/lsm/wal.cpp.o.d"
  "/root/repo/src/yokan/map_backend.cpp" "src/yokan/CMakeFiles/hep_yokan.dir/map_backend.cpp.o" "gcc" "src/yokan/CMakeFiles/hep_yokan.dir/map_backend.cpp.o.d"
  "/root/repo/src/yokan/provider.cpp" "src/yokan/CMakeFiles/hep_yokan.dir/provider.cpp.o" "gcc" "src/yokan/CMakeFiles/hep_yokan.dir/provider.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/margo/CMakeFiles/hep_margo.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hep_common.dir/DependInfo.cmake"
  "/root/repo/build/src/rpc/CMakeFiles/hep_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/abt/CMakeFiles/hep_abt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libhep_bedrock.a"
)

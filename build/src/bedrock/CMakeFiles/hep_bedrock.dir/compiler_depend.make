# Empty compiler generated dependencies file for hep_bedrock.
# This may be replaced when dependencies are built.

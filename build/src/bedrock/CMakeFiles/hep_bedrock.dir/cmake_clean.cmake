file(REMOVE_RECURSE
  "CMakeFiles/hep_bedrock.dir/service.cpp.o"
  "CMakeFiles/hep_bedrock.dir/service.cpp.o.d"
  "libhep_bedrock.a"
  "libhep_bedrock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hep_bedrock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

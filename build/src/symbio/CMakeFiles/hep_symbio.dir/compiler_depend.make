# Empty compiler generated dependencies file for hep_symbio.
# This may be replaced when dependencies are built.

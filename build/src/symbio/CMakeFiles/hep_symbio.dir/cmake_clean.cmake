file(REMOVE_RECURSE
  "CMakeFiles/hep_symbio.dir/metrics.cpp.o"
  "CMakeFiles/hep_symbio.dir/metrics.cpp.o.d"
  "libhep_symbio.a"
  "libhep_symbio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hep_symbio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libhep_symbio.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/hep_htf.dir/htf.cpp.o"
  "CMakeFiles/hep_htf.dir/htf.cpp.o.d"
  "libhep_htf.a"
  "libhep_htf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hep_htf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for hep_htf.
# This may be replaced when dependencies are built.

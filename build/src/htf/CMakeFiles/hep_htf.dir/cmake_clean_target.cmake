file(REMOVE_RECURSE
  "libhep_htf.a"
)

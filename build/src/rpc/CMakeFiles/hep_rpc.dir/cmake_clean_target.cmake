file(REMOVE_RECURSE
  "libhep_rpc.a"
)

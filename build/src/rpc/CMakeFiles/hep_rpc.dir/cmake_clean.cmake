file(REMOVE_RECURSE
  "CMakeFiles/hep_rpc.dir/endpoint.cpp.o"
  "CMakeFiles/hep_rpc.dir/endpoint.cpp.o.d"
  "CMakeFiles/hep_rpc.dir/network.cpp.o"
  "CMakeFiles/hep_rpc.dir/network.cpp.o.d"
  "CMakeFiles/hep_rpc.dir/tcp_fabric.cpp.o"
  "CMakeFiles/hep_rpc.dir/tcp_fabric.cpp.o.d"
  "libhep_rpc.a"
  "libhep_rpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hep_rpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rpc/endpoint.cpp" "src/rpc/CMakeFiles/hep_rpc.dir/endpoint.cpp.o" "gcc" "src/rpc/CMakeFiles/hep_rpc.dir/endpoint.cpp.o.d"
  "/root/repo/src/rpc/network.cpp" "src/rpc/CMakeFiles/hep_rpc.dir/network.cpp.o" "gcc" "src/rpc/CMakeFiles/hep_rpc.dir/network.cpp.o.d"
  "/root/repo/src/rpc/tcp_fabric.cpp" "src/rpc/CMakeFiles/hep_rpc.dir/tcp_fabric.cpp.o" "gcc" "src/rpc/CMakeFiles/hep_rpc.dir/tcp_fabric.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hep_common.dir/DependInfo.cmake"
  "/root/repo/build/src/abt/CMakeFiles/hep_abt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for hep_rpc.
# This may be replaced when dependencies are built.

# Empty dependencies file for hep_simcluster.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libhep_simcluster.a"
)

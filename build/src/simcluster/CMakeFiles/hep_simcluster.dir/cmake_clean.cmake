file(REMOVE_RECURSE
  "CMakeFiles/hep_simcluster.dir/models.cpp.o"
  "CMakeFiles/hep_simcluster.dir/models.cpp.o.d"
  "libhep_simcluster.a"
  "libhep_simcluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hep_simcluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for hep_margo.
# This may be replaced when dependencies are built.

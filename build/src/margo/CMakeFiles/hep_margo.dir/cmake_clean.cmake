file(REMOVE_RECURSE
  "CMakeFiles/hep_margo.dir/engine.cpp.o"
  "CMakeFiles/hep_margo.dir/engine.cpp.o.d"
  "libhep_margo.a"
  "libhep_margo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hep_margo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libhep_margo.a"
)

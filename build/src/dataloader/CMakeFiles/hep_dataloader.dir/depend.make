# Empty dependencies file for hep_dataloader.
# This may be replaced when dependencies are built.

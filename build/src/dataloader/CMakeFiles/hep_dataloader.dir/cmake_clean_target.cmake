file(REMOVE_RECURSE
  "libhep_dataloader.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/hep_dataloader.dir/loader.cpp.o"
  "CMakeFiles/hep_dataloader.dir/loader.cpp.o.d"
  "CMakeFiles/hep_dataloader.dir/schema_gen.cpp.o"
  "CMakeFiles/hep_dataloader.dir/schema_gen.cpp.o.d"
  "libhep_dataloader.a"
  "libhep_dataloader.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hep_dataloader.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

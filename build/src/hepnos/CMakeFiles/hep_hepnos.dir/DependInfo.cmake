
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hepnos/containers.cpp" "src/hepnos/CMakeFiles/hep_hepnos.dir/containers.cpp.o" "gcc" "src/hepnos/CMakeFiles/hep_hepnos.dir/containers.cpp.o.d"
  "/root/repo/src/hepnos/datastore.cpp" "src/hepnos/CMakeFiles/hep_hepnos.dir/datastore.cpp.o" "gcc" "src/hepnos/CMakeFiles/hep_hepnos.dir/datastore.cpp.o.d"
  "/root/repo/src/hepnos/datastore_impl.cpp" "src/hepnos/CMakeFiles/hep_hepnos.dir/datastore_impl.cpp.o" "gcc" "src/hepnos/CMakeFiles/hep_hepnos.dir/datastore_impl.cpp.o.d"
  "/root/repo/src/hepnos/keys.cpp" "src/hepnos/CMakeFiles/hep_hepnos.dir/keys.cpp.o" "gcc" "src/hepnos/CMakeFiles/hep_hepnos.dir/keys.cpp.o.d"
  "/root/repo/src/hepnos/parallel_event_processor.cpp" "src/hepnos/CMakeFiles/hep_hepnos.dir/parallel_event_processor.cpp.o" "gcc" "src/hepnos/CMakeFiles/hep_hepnos.dir/parallel_event_processor.cpp.o.d"
  "/root/repo/src/hepnos/prefetcher.cpp" "src/hepnos/CMakeFiles/hep_hepnos.dir/prefetcher.cpp.o" "gcc" "src/hepnos/CMakeFiles/hep_hepnos.dir/prefetcher.cpp.o.d"
  "/root/repo/src/hepnos/rescale.cpp" "src/hepnos/CMakeFiles/hep_hepnos.dir/rescale.cpp.o" "gcc" "src/hepnos/CMakeFiles/hep_hepnos.dir/rescale.cpp.o.d"
  "/root/repo/src/hepnos/write_batch.cpp" "src/hepnos/CMakeFiles/hep_hepnos.dir/write_batch.cpp.o" "gcc" "src/hepnos/CMakeFiles/hep_hepnos.dir/write_batch.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/yokan/CMakeFiles/hep_yokan.dir/DependInfo.cmake"
  "/root/repo/build/src/mpisim/CMakeFiles/hep_mpisim.dir/DependInfo.cmake"
  "/root/repo/build/src/margo/CMakeFiles/hep_margo.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hep_common.dir/DependInfo.cmake"
  "/root/repo/build/src/rpc/CMakeFiles/hep_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/abt/CMakeFiles/hep_abt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libhep_hepnos.a"
)

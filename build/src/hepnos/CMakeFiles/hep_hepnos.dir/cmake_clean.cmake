file(REMOVE_RECURSE
  "CMakeFiles/hep_hepnos.dir/containers.cpp.o"
  "CMakeFiles/hep_hepnos.dir/containers.cpp.o.d"
  "CMakeFiles/hep_hepnos.dir/datastore.cpp.o"
  "CMakeFiles/hep_hepnos.dir/datastore.cpp.o.d"
  "CMakeFiles/hep_hepnos.dir/datastore_impl.cpp.o"
  "CMakeFiles/hep_hepnos.dir/datastore_impl.cpp.o.d"
  "CMakeFiles/hep_hepnos.dir/keys.cpp.o"
  "CMakeFiles/hep_hepnos.dir/keys.cpp.o.d"
  "CMakeFiles/hep_hepnos.dir/parallel_event_processor.cpp.o"
  "CMakeFiles/hep_hepnos.dir/parallel_event_processor.cpp.o.d"
  "CMakeFiles/hep_hepnos.dir/prefetcher.cpp.o"
  "CMakeFiles/hep_hepnos.dir/prefetcher.cpp.o.d"
  "CMakeFiles/hep_hepnos.dir/rescale.cpp.o"
  "CMakeFiles/hep_hepnos.dir/rescale.cpp.o.d"
  "CMakeFiles/hep_hepnos.dir/write_batch.cpp.o"
  "CMakeFiles/hep_hepnos.dir/write_batch.cpp.o.d"
  "libhep_hepnos.a"
  "libhep_hepnos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hep_hepnos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for hep_hepnos.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/hep_common.dir/json.cpp.o"
  "CMakeFiles/hep_common.dir/json.cpp.o.d"
  "CMakeFiles/hep_common.dir/logging.cpp.o"
  "CMakeFiles/hep_common.dir/logging.cpp.o.d"
  "CMakeFiles/hep_common.dir/rng.cpp.o"
  "CMakeFiles/hep_common.dir/rng.cpp.o.d"
  "CMakeFiles/hep_common.dir/status.cpp.o"
  "CMakeFiles/hep_common.dir/status.cpp.o.d"
  "CMakeFiles/hep_common.dir/uuid.cpp.o"
  "CMakeFiles/hep_common.dir/uuid.cpp.o.d"
  "libhep_common.a"
  "libhep_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hep_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

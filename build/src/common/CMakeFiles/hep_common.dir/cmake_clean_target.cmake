file(REMOVE_RECURSE
  "libhep_common.a"
)

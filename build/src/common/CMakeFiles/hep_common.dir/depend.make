# Empty dependencies file for hep_common.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/hep_autotune.dir/tuner.cpp.o"
  "CMakeFiles/hep_autotune.dir/tuner.cpp.o.d"
  "libhep_autotune.a"
  "libhep_autotune.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hep_autotune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

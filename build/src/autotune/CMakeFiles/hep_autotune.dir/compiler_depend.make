# Empty compiler generated dependencies file for hep_autotune.
# This may be replaced when dependencies are built.

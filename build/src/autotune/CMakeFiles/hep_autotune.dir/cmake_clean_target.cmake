file(REMOVE_RECURSE
  "libhep_autotune.a"
)

# Empty dependencies file for abl_ingest.
# This may be replaced when dependencies are built.

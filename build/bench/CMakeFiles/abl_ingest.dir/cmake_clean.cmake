file(REMOVE_RECURSE
  "CMakeFiles/abl_ingest.dir/abl_ingest.cpp.o"
  "CMakeFiles/abl_ingest.dir/abl_ingest.cpp.o.d"
  "abl_ingest"
  "abl_ingest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_ingest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for abl_fabrics.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/abl_fabrics.dir/abl_fabrics.cpp.o"
  "CMakeFiles/abl_fabrics.dir/abl_fabrics.cpp.o.d"
  "abl_fabrics"
  "abl_fabrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_fabrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/abl_pep_batches.dir/abl_pep_batches.cpp.o"
  "CMakeFiles/abl_pep_batches.dir/abl_pep_batches.cpp.o.d"
  "abl_pep_batches"
  "abl_pep_batches.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_pep_batches.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for abl_pep_batches.
# This may be replaced when dependencies are built.

# Empty dependencies file for abl_yokan_backends.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/abl_yokan_backends.dir/abl_yokan_backends.cpp.o"
  "CMakeFiles/abl_yokan_backends.dir/abl_yokan_backends.cpp.o.d"
  "abl_yokan_backends"
  "abl_yokan_backends.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_yokan_backends.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for abl_serialization.
# This may be replaced when dependencies are built.

# Empty dependencies file for abl_placement.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/abl_write_batch.dir/abl_write_batch.cpp.o"
  "CMakeFiles/abl_write_batch.dir/abl_write_batch.cpp.o.d"
  "abl_write_batch"
  "abl_write_batch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_write_batch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

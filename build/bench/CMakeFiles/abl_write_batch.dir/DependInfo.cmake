
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/abl_write_batch.cpp" "bench/CMakeFiles/abl_write_batch.dir/abl_write_batch.cpp.o" "gcc" "bench/CMakeFiles/abl_write_batch.dir/abl_write_batch.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hepnos/CMakeFiles/hep_hepnos.dir/DependInfo.cmake"
  "/root/repo/build/src/bedrock/CMakeFiles/hep_bedrock.dir/DependInfo.cmake"
  "/root/repo/build/src/mpisim/CMakeFiles/hep_mpisim.dir/DependInfo.cmake"
  "/root/repo/build/src/yokan/CMakeFiles/hep_yokan.dir/DependInfo.cmake"
  "/root/repo/build/src/symbio/CMakeFiles/hep_symbio.dir/DependInfo.cmake"
  "/root/repo/build/src/margo/CMakeFiles/hep_margo.dir/DependInfo.cmake"
  "/root/repo/build/src/rpc/CMakeFiles/hep_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/abt/CMakeFiles/hep_abt.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hep_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

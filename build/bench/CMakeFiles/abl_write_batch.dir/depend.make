# Empty dependencies file for abl_write_batch.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for fig2_strong_scaling.
# This may be replaced when dependencies are built.

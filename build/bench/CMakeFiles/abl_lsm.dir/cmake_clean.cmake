file(REMOVE_RECURSE
  "CMakeFiles/abl_lsm.dir/abl_lsm.cpp.o"
  "CMakeFiles/abl_lsm.dir/abl_lsm.cpp.o.d"
  "abl_lsm"
  "abl_lsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_lsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for abl_lsm.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/hepnos_ingest.dir/hepnos_ingest.cpp.o"
  "CMakeFiles/hepnos_ingest.dir/hepnos_ingest.cpp.o.d"
  "hepnos_ingest"
  "hepnos_ingest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hepnos_ingest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for hepnos_ingest.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/hepnos_ls.dir/hepnos_ls.cpp.o"
  "CMakeFiles/hepnos_ls.dir/hepnos_ls.cpp.o.d"
  "hepnos_ls"
  "hepnos_ls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hepnos_ls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for hepnos_ls.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for hepnos_select.
# This may be replaced when dependencies are built.

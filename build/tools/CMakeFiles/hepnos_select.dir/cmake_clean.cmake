file(REMOVE_RECURSE
  "CMakeFiles/hepnos_select.dir/hepnos_select.cpp.o"
  "CMakeFiles/hepnos_select.dir/hepnos_select.cpp.o.d"
  "hepnos_select"
  "hepnos_select.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hepnos_select.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

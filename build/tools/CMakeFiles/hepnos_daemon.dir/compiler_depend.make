# Empty compiler generated dependencies file for hepnos_daemon.
# This may be replaced when dependencies are built.

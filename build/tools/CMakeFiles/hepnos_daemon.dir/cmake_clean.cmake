file(REMOVE_RECURSE
  "CMakeFiles/hepnos_daemon.dir/hepnos_daemon.cpp.o"
  "CMakeFiles/hepnos_daemon.dir/hepnos_daemon.cpp.o.d"
  "hepnos_daemon"
  "hepnos_daemon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hepnos_daemon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

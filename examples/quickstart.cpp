// Quickstart — the paper's Listing 1, end to end.
//
// Boots a one-node HEPnOS service in-process (Bedrock + Margo + Yokan),
// connects a DataStore, and walks through exactly the API sequence the paper
// presents: nested datasets, runs, subruns, events, storing and loading a
// std::vector<Particle>, and iterating the subruns of a run.
//
//   ./examples/quickstart
#include <cstdio>
#include <vector>

#include "bedrock/service.hpp"
#include "hepnos/hepnos.hpp"

// The example structure from Listing 1.
struct Particle {
    float x = 0, y = 0, z = 0;  // data members
    // serialization function (Boost-style) for the archives to use
    template <typename A>
    void serialize(A& ar, unsigned /*version*/) {
        ar & x & y & z;
    }
    bool operator==(const Particle&) const = default;
};

int main() {
    using namespace hep;

    // --- service side: one Bedrock-described process --------------------------
    rpc::Network network;
    auto config = json::parse(R"({
      "address": "hepnos-server-0",
      "margo": { "rpc_xstreams": 2 },
      "providers": [
        { "type": "yokan", "provider_id": 1,
          "pool": { "name": "db-pool", "xstreams": 1 },
          "config": { "databases": [
            { "name": "datasets-0", "type": "map", "role": "datasets" },
            { "name": "runs-0",     "type": "map", "role": "runs" },
            { "name": "subruns-0",  "type": "map", "role": "subruns" },
            { "name": "events-0",   "type": "map", "role": "events" },
            { "name": "products-0", "type": "map", "role": "products" } ] } }
      ]
    })");
    auto service = bedrock::ServiceProcess::create(network, *config).value();
    std::printf("service up at '%s' with %zu databases\n", service->address().c_str(),
                service->databases().size());

    // --- client side: Listing 1 ----------------------------------------------
    // initialize a handle to the HEPnOS datastore (the descriptor document is
    // what "config.json" holds in the paper)
    auto datastore = hepnos::DataStore::connect(network, service->descriptor());

    // create + access a nested dataset
    datastore.createDataSet("path/to/dataset");
    hepnos::DataSet ds = datastore["path/to/dataset"];
    std::printf("dataset %s  (uuid %s)\n", ds.fullname().c_str(),
                ds.uuid().to_string().c_str());

    // access run 43 in the dataset
    ds.createRun(43);
    hepnos::Run run = ds[43];

    // create subrun 56 within this run
    hepnos::SubRun subrun = run.createSubRun(56);

    // create event 25 within this subrun
    hepnos::Event ev = subrun.createEvent(25);

    // store data (an std::vector of Particle)
    std::vector<Particle> vp1{{1.0f, 2.0f, 3.0f}, {4.0f, 5.0f, 6.0f}};
    ev.store(vp1);

    // load data
    std::vector<Particle> vp2;
    ev.load(vp2);
    std::printf("stored %zu particles, loaded %zu back, equal: %s\n", vp1.size(), vp2.size(),
                vp1 == vp2 ? "yes" : "NO");

    // iterate over the subruns in a run
    run.createSubRun(3);
    run.createSubRun(99);
    std::printf("subruns of run %llu:", static_cast<unsigned long long>(run.number()));
    for (const auto& sr : run) {
        std::printf(" %llu", static_cast<unsigned long long>(sr.number()));
    }
    std::printf("\n");
    return vp1 == vp2 ? 0 : 1;
}

// The HDF2HEPnOS path (paper §III-B), file-by-file:
//
//   1. write a few HTF (HDF5-substitute) files with the synthetic generator,
//   2. introspect one file's schema (group names, column names/types),
//   3. run the code generator — printing the C++ class + load/store glue it
//      deduces from the schema, exactly what HDF2HEPnOS emits,
//   4. ingest the files into HEPnOS in parallel and verify a spot record.
//
//   ./examples/dataloader_ingest [num_files]
#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "bedrock/service.hpp"
#include "dataloader/loader.hpp"
#include "dataloader/schema_gen.hpp"

namespace fs = std::filesystem;

int main(int argc, char** argv) {
    using namespace hep;

    const std::uint64_t num_files = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 4;
    nova::DatasetConfig cfg;
    cfg.num_files = num_files;
    cfg.events_per_file = 50;
    nova::Generator generator(cfg);

    // --- 1. materialize HTF files ---------------------------------------------
    const auto dir = fs::temp_directory_path() / "hepnos_ingest_example";
    fs::remove_all(dir);
    fs::create_directories(dir);
    std::vector<std::string> files;
    for (std::uint64_t f = 0; f < num_files; ++f) {
        files.push_back((dir / ("nova_" + std::to_string(f) + ".htf")).string());
        if (auto st = generator.write_htf_file(f, files.back()); !st.ok()) {
            std::fprintf(stderr, "write failed: %s\n", st.to_string().c_str());
            return 1;
        }
    }
    std::printf("wrote %zu HTF files under %s\n", files.size(), dir.c_str());

    // --- 2. schema introspection ------------------------------------------------
    auto schema = htf::File::read_schema(files[0]);
    if (!schema.ok()) {
        std::fprintf(stderr, "schema read failed: %s\n", schema.status().to_string().c_str());
        return 1;
    }
    for (const auto& [group, columns] : *schema) {
        std::printf("leaf group \"%s\": %zu columns x %llu rows\n", group.c_str(),
                    columns.size(),
                    static_cast<unsigned long long>(columns.empty() ? 0 : columns[0].rows));
        for (const auto& col : columns) {
            std::printf("    %-14s %s\n", col.name.c_str(),
                        std::string(htf::to_string(col.type)).c_str());
        }
    }

    // --- 3. code generation ------------------------------------------------------
    auto code = dataloader::generate_class(*schema, "nova::Slice",
                                           {"generated", nova::kSliceLabel});
    if (!code.ok()) {
        std::fprintf(stderr, "codegen failed: %s\n", code.status().to_string().c_str());
        return 1;
    }
    std::printf("\n----- generated header (HDF2HEPnOS output) -----\n%s", code->c_str());
    std::printf("----- end generated header -----\n\n");

    // --- 4. parallel ingestion ----------------------------------------------------
    rpc::Network network;
    auto svc_cfg = json::parse(R"({
      "address": "server", "margo": {"rpc_xstreams": 2},
      "providers": [{"type": "yokan", "provider_id": 1, "config": {"databases": [
        {"name": "d0", "type": "map", "role": "datasets"},
        {"name": "r0", "type": "map", "role": "runs"},
        {"name": "s0", "type": "map", "role": "subruns"},
        {"name": "e0", "type": "map", "role": "events"},
        {"name": "p0", "type": "map", "role": "products"}]}}]})");
    auto service = bedrock::ServiceProcess::create(network, *svc_cfg).value();
    auto store = hepnos::DataStore::connect(network, service->descriptor());

    dataloader::LoaderStats stats;
    mpisim::run_ranks(2, [&](mpisim::Comm& comm) {
        auto s = dataloader::ingest_files(store, comm, files, "nova/ingested");
        if (comm.rank() == 0) stats = s;
    });
    std::printf("ingested %llu files / %llu events / %llu slices in %.3fs\n",
                static_cast<unsigned long long>(stats.files_loaded),
                static_cast<unsigned long long>(stats.events_stored),
                static_cast<unsigned long long>(stats.slices_stored), stats.seconds);

    // Spot check one record against the generator's ground truth.
    const auto fc = generator.file_coordinates(0);
    std::vector<nova::Slice> slices;
    store["nova/ingested"][fc.run][fc.subrun][0].load(nova::kSliceLabel, slices);
    const bool ok = slices == generator.make_event(fc.run, fc.subrun, 0).slices;
    std::printf("spot-check run %llu subrun %llu event 0: %s\n",
                static_cast<unsigned long long>(fc.run),
                static_cast<unsigned long long>(fc.subrun), ok ? "match" : "MISMATCH");
    fs::remove_all(dir);
    return ok ? 0 : 1;
}

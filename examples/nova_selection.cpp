// The paper's full use case (§III-§IV) at laptop scale:
//
//   1. generate a synthetic NOvA sample (deterministic),
//   2. ingest it into a 2-server HEPnOS deployment with the parallel
//      DataLoader (the HDF2HEPnOS step),
//   3. run the HEPnOS-based candidate-selection application — MPI ranks,
//      ParallelEventProcessor with 16384/64-style batching, product
//      prefetching, MPI reduction of accepted slice IDs to rank 0,
//   4. run the traditional file-based workflow on the same data,
//   5. verify both applications accepted EXACTLY the same slices (the
//      paper's cross-check) and report throughputs.
//
//   ./examples/nova_selection [num_files] [events_per_file] [ranks]
#include <cstdio>
#include <cstdlib>

#include "bedrock/service.hpp"
#include "dataloader/loader.hpp"
#include "workflow/hepnos_app.hpp"
#include "workflow/traditional.hpp"

int main(int argc, char** argv) {
    using namespace hep;

    nova::DatasetConfig dataset_cfg;
    dataset_cfg.num_files = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 24;
    dataset_cfg.events_per_file = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 120;
    const std::size_t ranks = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 4;
    nova::Generator generator(dataset_cfg);

    std::printf("synthetic NOvA sample: %llu files, %llu events, ~%.1f slices/event\n",
                static_cast<unsigned long long>(dataset_cfg.num_files),
                static_cast<unsigned long long>(generator.total_events()),
                dataset_cfg.slices_per_event_mean);

    // --- deploy a 2-server HEPnOS service -------------------------------------
    rpc::Network network;
    std::vector<json::Value> descriptors;
    std::vector<std::unique_ptr<bedrock::ServiceProcess>> servers;
    for (int s = 0; s < 2; ++s) {
        json::Value cfg = json::Value::make_object();
        cfg["address"] = "hepnos-server-" + std::to_string(s);
        cfg["margo"]["rpc_xstreams"] = 2;
        json::Value dbs = json::Value::make_array();
        auto add = [&](const char* role, int i) {
            json::Value db = json::Value::make_object();
            db["name"] = std::string(role) + "-" + std::to_string(s) + "-" + std::to_string(i);
            db["role"] = role;
            db["type"] = "map";
            dbs.push_back(std::move(db));
        };
        add("datasets", 0);
        for (int i = 0; i < 2; ++i) add("runs", i);
        for (int i = 0; i < 2; ++i) add("subruns", i);
        for (int i = 0; i < 2; ++i) add("events", i);
        for (int i = 0; i < 2; ++i) add("products", i);
        json::Value provider = json::Value::make_object();
        provider["type"] = "yokan";
        provider["provider_id"] = 1;
        provider["config"]["databases"] = std::move(dbs);
        cfg["providers"].push_back(std::move(provider));
        auto svc = bedrock::ServiceProcess::create(network, cfg);
        if (!svc.ok()) {
            std::fprintf(stderr, "boot failed: %s\n", svc.status().to_string().c_str());
            return 1;
        }
        descriptors.push_back((*svc)->descriptor());
        servers.push_back(std::move(svc.value()));
    }
    auto store = hepnos::DataStore::connect(network, bedrock::merge_descriptors(descriptors));
    std::printf("HEPnOS service: 2 server processes, 4 event + 4 product databases\n");

    // --- step 1 of the workflow: parallel ingestion (HDF2HEPnOS) --------------
    dataloader::LoaderStats load_stats;
    mpisim::run_ranks(static_cast<int>(ranks), [&](mpisim::Comm& comm) {
        auto s = dataloader::ingest_generated(store, comm, generator, "nova/prod5.1", 2048);
        if (comm.rank() == 0) load_stats = s;
    });
    std::printf("ingested %llu events (%llu slices) with %zu loader ranks in %.3fs\n",
                static_cast<unsigned long long>(load_stats.events_stored),
                static_cast<unsigned long long>(load_stats.slices_stored), ranks,
                load_stats.seconds);

    // --- the HEPnOS-based selection application --------------------------------
    workflow::HepnosAppOptions hopts;
    hopts.num_ranks = ranks;
    hopts.pep.input_batch_size = 2048;  // scaled-down 16384
    hopts.pep.share_batch_size = 64;    // the paper's share batch
    auto hepnos_result = workflow::run_hepnos_selection(store, "nova/prod5.1", hopts);
    std::printf("HEPnOS  workflow: %llu events, %llu slices, %.3fs -> %.0f slices/s\n",
                static_cast<unsigned long long>(hepnos_result.events_processed),
                static_cast<unsigned long long>(hepnos_result.slices_processed),
                hepnos_result.wall_seconds, hepnos_result.throughput_slices_per_s());

    // --- the traditional file-based workflow ----------------------------------
    workflow::TraditionalOptions topts;
    topts.num_workers = ranks;
    auto traditional_result = workflow::run_traditional_generated(generator, topts);
    std::printf("file    workflow: %llu events, %llu slices, %.3fs -> %.0f slices/s\n",
                static_cast<unsigned long long>(traditional_result.events_processed),
                static_cast<unsigned long long>(traditional_result.slices_processed),
                traditional_result.wall_seconds,
                traditional_result.throughput_slices_per_s());

    // --- the paper's cross-check ----------------------------------------------
    const bool identical = hepnos_result.accepted_ids == traditional_result.accepted_ids;
    std::printf("accepted %zu candidate slices; ID sets identical: %s\n",
                hepnos_result.accepted_ids.size(), identical ? "yes" : "NO!");
    return identical ? 0 : 1;
}

// Figure-1 walk-through: the HEPnOS architecture, component by component.
//
// Boots a multi-process HEPnOS deployment the way the paper describes it —
// Bedrock reads a JSON service description, spins up Margo engines (Mercury
// RPC + Argobots pools/xstreams) and Yokan providers with their databases —
// then pokes each architectural layer directly:
//
//   client API  ->  Yokan client (RPC + bulk)  ->  provider  ->  backend
//
//   ./examples/bedrock_service
#include <cstdio>

#include "bedrock/service.hpp"
#include "hepnos/hepnos.hpp"
#include "yokan/client.hpp"

int main() {
    using namespace hep;

    // The paper's per-server shape, scaled down: dedicated pools per provider
    // ("each [provider] mapped to its [own] execution stream"), separate
    // event/product databases, configurable backend per database.
    const char* service_json = R"({
      "address": "theta-nid0",
      "log_level": "warn",
      "margo": { "rpc_xstreams": 4 },
      "providers": [
        { "type": "yokan", "provider_id": 1,
          "pool": { "name": "meta-pool", "xstreams": 1 },
          "config": { "databases": [
            { "name": "datasets", "type": "map", "role": "datasets" },
            { "name": "runs",     "type": "map", "role": "runs" },
            { "name": "subruns",  "type": "map", "role": "subruns" } ] } },
        { "type": "yokan", "provider_id": 2,
          "pool": { "name": "event-pool", "xstreams": 2 },
          "config": { "databases": [
            { "name": "events-0", "type": "map", "role": "events" },
            { "name": "events-1", "type": "map", "role": "events" } ] } },
        { "type": "yokan", "provider_id": 3,
          "pool": { "name": "product-pool", "xstreams": 2 },
          "config": { "databases": [
            { "name": "products-0", "type": "map", "role": "products" },
            { "name": "products-1", "type": "map", "role": "products" } ] } }
      ]
    })";

    rpc::Network network;  // the fabric (libfabric/uGNI substitute)
    auto config = json::parse(service_json);
    if (!config.ok()) {
        std::fprintf(stderr, "bad config: %s\n", config.status().to_string().c_str());
        return 1;
    }
    auto service = bedrock::ServiceProcess::create(network, *config);
    if (!service.ok()) {
        std::fprintf(stderr, "bedrock boot failed: %s\n",
                     service.status().to_string().c_str());
        return 1;
    }
    std::printf("Bedrock booted '%s' from JSON:\n", (*service)->address().c_str());
    for (const auto& db : (*service)->databases()) {
        std::printf("  provider %u  db %-12s role %s\n", db.provider_id, db.name.c_str(),
                    db.role.c_str());
    }

    // --- layer 1: raw Yokan client (what HEPnOS is built on) -------------------
    margo::Engine client(network, "client-nid1");
    yokan::DatabaseHandle events(client, "theta-nid0", 2, "events-0");
    (void)events.put("raw-key", "raw-value");
    std::printf("\nYokan layer: put/get over RPC -> '%s'\n", events.get("raw-key")->c_str());

    std::vector<yokan::KeyValue> batch;
    for (int i = 0; i < 1000; ++i) {
        batch.push_back({"bulk-key-" + std::to_string(i), "v"});
    }
    auto stored = events.put_multi(batch);
    const auto stats = network.stats();
    std::printf("Yokan bulk layer: put_multi stored %llu pairs — %llu RPC messages, "
                "%llu bulk transfer(s), %llu bulk bytes so far\n",
                static_cast<unsigned long long>(*stored),
                static_cast<unsigned long long>(stats.messages),
                static_cast<unsigned long long>(stats.bulk_transfers),
                static_cast<unsigned long long>(stats.bulk_bytes));

    // --- layer 2: the HEPnOS client API on top ---------------------------------
    auto store = hepnos::DataStore::connect(network, (*service)->descriptor());
    auto ds = store.createDataSet("fermilab/nova");
    auto ev = ds.createRun(1).createSubRun(2).createEvent(3);
    ev.store("note", std::string("stored through the full stack"));
    std::string note;
    ev.load("note", note);
    std::printf("HEPnOS layer: /fermilab/nova run 1 subrun 2 event 3 -> \"%s\"\n",
                note.c_str());

    // The descriptor document is what client jobs receive as "config.json".
    std::printf("\nclient connection document:\n%s\n",
                (*service)->descriptor().dump(2).c_str());
    return 0;
}

// Shared helper for the examples: deploy an N-server HEPnOS service on a
// private fabric and return the merged client connection document.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "bedrock/service.hpp"

namespace hep::examples {

struct Deployment {
    std::vector<std::unique_ptr<bedrock::ServiceProcess>> servers;
    json::Value connection;
};

inline Deployment deploy_service(rpc::Network& network, std::size_t num_servers,
                                 std::size_t dbs_per_role,
                                 const std::string& backend = "map",
                                 const std::string& base_dir = ".") {
    Deployment out;
    std::vector<json::Value> descriptors;
    for (std::size_t s = 0; s < num_servers; ++s) {
        json::Value cfg = json::Value::make_object();
        cfg["address"] = "hepnos-server-" + std::to_string(s);
        cfg["margo"]["rpc_xstreams"] = 2;
        json::Value dbs = json::Value::make_array();
        auto add_db = [&](const std::string& role, std::size_t i) {
            json::Value db = json::Value::make_object();
            const std::string name =
                role + "-" + std::to_string(s) + "-" + std::to_string(i);
            db["name"] = name;
            db["role"] = role;
            db["type"] = backend;
            if (backend == "lsm") {
                db["path"] = "s" + std::to_string(s) + "/" + name;
            }
            dbs.push_back(std::move(db));
        };
        add_db("datasets", 0);
        for (const char* role : {"runs", "subruns", "events", "products"}) {
            for (std::size_t i = 0; i < dbs_per_role; ++i) add_db(role, i);
        }
        json::Value provider = json::Value::make_object();
        provider["type"] = "yokan";
        provider["provider_id"] = 1;
        provider["config"]["databases"] = std::move(dbs);
        cfg["providers"].push_back(std::move(provider));
        auto svc = bedrock::ServiceProcess::create(network, cfg, base_dir);
        if (!svc.ok()) throw std::runtime_error(svc.status().to_string());
        descriptors.push_back((*svc)->descriptor());
        out.servers.push_back(std::move(svc.value()));
    }
    out.connection = bedrock::merge_descriptors(descriptors);
    return out;
}

}  // namespace hep::examples

// Iterative analysis tuning (paper §I):
//
// "A common scenario in many HEP analyses is the iterative refinement or
//  tuning of the analysis process, based on the data available. This requires
//  multiple passes through a given dataset. Having the data available in a
//  distributed data service not only makes this more convenient, but also
//  spreads the cost of loading the data over all iterations."
//
// Ingests a sample once, then runs several selection passes with
// progressively tighter cuts through the ParallelEventProcessor, printing how
// the candidate count shrinks while every pass pays only the in-service read
// cost. The file-based workflow re-reads all files every pass for contrast.
//
//   ./examples/iterative_tuning [passes]
#include <cstdio>
#include <cstdlib>

#include "bedrock/service.hpp"
#include "dataloader/loader.hpp"
#include "test_service_example.hpp"
#include "workflow/hepnos_app.hpp"
#include "workflow/traditional.hpp"

int main(int argc, char** argv) {
    using namespace hep;

    const int passes = argc > 1 ? std::atoi(argv[1]) : 4;
    nova::DatasetConfig dataset_cfg;
    dataset_cfg.num_files = 16;
    dataset_cfg.events_per_file = 100;
    nova::Generator generator(dataset_cfg);

    rpc::Network network;
    auto deployment = examples::deploy_service(network, /*servers=*/2, /*dbs_per_role=*/2);
    auto store = hepnos::DataStore::connect(network, deployment.connection);

    // One ingestion, N analysis passes.
    const double t_ingest0 = mpisim::Comm::wtime();
    mpisim::run_ranks(4, [&](mpisim::Comm& comm) {
        dataloader::ingest_generated(store, comm, generator, "nova/tuning", 2048);
    });
    const double ingest_s = mpisim::Comm::wtime() - t_ingest0;
    std::printf("ingested %llu events once in %.3fs\n",
                static_cast<unsigned long long>(generator.total_events()), ingest_s);
    std::printf("\n%-6s %-12s %-12s %-12s %-14s\n", "pass", "epi0 cut", "accepted",
                "hepnos[s]", "file-based[s]");

    for (int pass = 0; pass < passes; ++pass) {
        nova::SelectionCuts cuts;
        cuts.min_epi0_score = 0.70f + 0.06f * static_cast<float>(pass);  // tighten

        workflow::HepnosAppOptions hopts;
        hopts.num_ranks = 4;
        hopts.cuts = cuts;
        hopts.pep.input_batch_size = 1024;
        const double h0 = mpisim::Comm::wtime();
        auto hepnos_result = workflow::run_hepnos_selection(store, "nova/tuning", hopts);
        const double hepnos_s = mpisim::Comm::wtime() - h0;

        // The traditional workflow re-reads (here: regenerates) every file on
        // every pass — the cost HEPnOS amortizes away.
        const double f0 = mpisim::Comm::wtime();
        auto traditional_result =
            workflow::run_traditional_generated(generator, {4, cuts});
        const double traditional_s = mpisim::Comm::wtime() - f0;

        const bool same = hepnos_result.accepted_ids == traditional_result.accepted_ids;
        std::printf("%-6d %-12.2f %-12zu %-12.3f %-14.3f %s\n", pass,
                    static_cast<double>(cuts.min_epi0_score),
                    hepnos_result.accepted_ids.size(), hepnos_s, traditional_s,
                    same ? "" : "  MISMATCH!");
        if (!same) return 1;
    }
    std::printf("\nevery pass agreed with the file-based reference; the dataset was\n"
                "loaded into the service once and re-read %d times in place.\n", passes);
    return 0;
}
